//! The Cloud Monitor: a contract-checking proxy generated from models.
//!
//! Implements the paper's Figure 2 workflow. For each incoming request the
//! monitor resolves the addressed resource against the model-derived route
//! table, looks up the generated contract for the trigger, snapshots the
//! relevant cloud state (the `pre_*` variables of Listing 2), checks the
//! pre-condition, forwards the request, re-probes, interprets the response
//! code, and checks the post-condition.
//!
//! Two modes cover the paper's user stories (Section III-B):
//!
//! * [`Mode::Enforce`] — the deployed-proxy workflow of Figure 2: a failed
//!   pre-condition blocks the request (`412`); a failed post-condition
//!   turns the response into an "invalid response specifying the faulty
//!   behavior".
//! * [`Mode::Observe`] — the *test-oracle* workflow (user story 4): every
//!   request is forwarded and the monitor classifies the cloud's actual
//!   behaviour against the contract, detecting both **wrong acceptances**
//!   (privilege escalation: an unauthorized request succeeded) and **wrong
//!   denials** (an authorized user was blocked). This is the mode that
//!   kills the Section VI-D mutants.

use crate::coverage::CoverageTracker;
use crate::probe::{ProbeTarget, StateProber};
use crate::replica::{DriftEntry, ProjectReplica};
use cm_audit::{
    AuditRecord, AuditRecorder, EnvProvenance, EnvSnapshot, MonitorMode, ReplayContext, VerdictCode,
};
use cm_contracts::{generate_with, CompiledContractSet, ContractSet, GenerateOptions};
use cm_httpkit::ShedDecision;
use cm_model::{BehavioralModel, HttpMethod, ResourceModel, Trigger};
use cm_obs::{
    BrownoutSignal, EventSink, MetricsRegistry, MonitorEvent, OverloadStats, PhaseTimings,
    RingBufferSink, BROWNOUT_MAX_STEP,
};
use cm_ocl::{EnvView, EvalScratch};
use cm_rbac::SecurityRequirementsTable;
use cm_rest::{
    Json, Resolution, RestRequest, RestResponse, RouteTable, SharedRestService, StatusCode,
};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Lock a shard mutex, recovering from poisoning: one panicking request
/// (e.g. a handler bug surfaced mid-`process`) must not wedge every
/// later request that hashes to the same shard. The shard state a
/// panicked request leaves behind is append-only records plus reusable
/// scratch that every evaluation re-initialises, so recovery is safe.
fn plock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Events retained by the default ring-buffer sink.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Log shards. Requests for the same project always land on the same
/// shard (serializing the snapshot→forward→snapshot protocol per
/// resource); requests for different projects almost always land on
/// different shards and proceed in parallel.
const MONITOR_SHARDS: usize = 16;

/// How much step ≥ 2 of the brownout ladder stretches the scheduled
/// anti-entropy cadence: `anti_entropy_every` replica-served requests
/// become `ANTI_ENTROPY_STRETCH ×` as many between reconciliation
/// passes. Drift detection slows under overload; it never stops, and
/// on-demand reconciliation (after an uncertainty) is untouched.
pub const ANTI_ENTROPY_STRETCH: u64 = 4;

/// Accumulates observability facts while a request moves through
/// [`CloudMonitor::process`]; folded into a [`MonitorEvent`] (and, when
/// an audit recorder is attached, an [`AuditRecord`]) at the end.
#[derive(Debug, Default)]
struct ObsScratch {
    timings: PhaseTimings,
    route: Option<String>,
    contract: Option<String>,
    /// Capture replay environments? Set iff an audit recorder is
    /// attached — snapshot serialization is not free.
    audit: bool,
    /// Branch taken, for the non-contract-checked paths.
    ctx: Option<CtxSpecial>,
    /// Serialized pre-state (contract-checked path, audit only).
    pre_env: Option<EnvSnapshot>,
    /// Serialized post-state, when one was observed completely.
    post_env: Option<EnvSnapshot>,
    /// A post snapshot was attempted but came back partial.
    post_partial: bool,
    /// Gated probe denials (post scope filtering).
    probe_denials: Vec<String>,
    /// Whether the request reached the cloud.
    forwarded: bool,
    /// Status the cloud answered, before any enforce-mode rewrite.
    cloud_status: Option<u16>,
    /// Environments were served from the shadow replica (zero probes);
    /// recorded as audit provenance so replay re-judges the trace under
    /// the same trust model.
    replica_env: bool,
    /// An anti-entropy pass piggybacked on this request found the cloud
    /// diverged from the replica; emitted as a second, Drift record.
    drift: Option<DriftReport>,
}

/// The outcome of one anti-entropy reconciliation that found drift.
#[derive(Debug)]
struct DriftReport {
    /// `root.attr` pairs that diverged.
    attributes: Vec<String>,
    /// Human-readable replica-vs-cloud details.
    details: String,
    /// Security requirements whose contracts read a drifted attribute.
    requirements: Vec<String>,
}

/// The non-contract-checked branches of `process_inner`, recorded for
/// replay; the contract-checked path is reconstructed from the
/// environment captures instead.
#[derive(Debug)]
enum CtxSpecial {
    Unmodelled,
    MethodNotAllowed {
        enforced: bool,
    },
    BadTarget,
    DegradedPre {
        forwarded: bool,
        faults: Vec<String>,
    },
    DegradedForward,
}

/// Run `f`, adding its wall-clock duration to `slot`.
fn timed<T>(slot: &mut Duration, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    *slot += start.elapsed();
    out
}

/// How much cloud state each snapshot probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotPolicy {
    /// Probe every context root (project, volumes, volume, quota_sets,
    /// user) on every snapshot. Simplest; default.
    #[default]
    Full,
    /// Probe only the roots the active contract actually navigates — the
    /// paper's "only the values that constitute the guards and
    /// invariants". Saves one REST round-trip per unreferenced root.
    Minimal,
    /// Probe only the individual `(root, attribute)` pairs the compiled
    /// contract's `pre()`/invariant analysis recorded, per phase: the
    /// pre-phase snapshot additionally covers the post-condition's
    /// `pre()` reads, since it doubles as the post's pre-state. Falls
    /// back to whole-root probing when the analysis is inexact (`let`
    /// aliasing).
    Scoped,
    /// Snapshot-free monitoring: bind the evaluation environment from a
    /// model-derived **shadow replica** of the project's state, seeded
    /// by one full probe pass and thereafter advanced purely from the
    /// request/response pairs the monitor observes — zero probe
    /// round-trips per request in steady state. Anti-entropy
    /// reconciliation (periodic via
    /// [`CloudMonitor::anti_entropy_every`], on-demand after any
    /// uncertainty) re-probes, repairs the replica, and surfaces silent
    /// out-of-band cloud mutation as [`Verdict::Drift`]. `Scoped` is
    /// kept as the differential oracle.
    Replica,
}

/// Which contract-evaluation pipeline runs on the wire path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Compiled programs: interned symbols, hash-consed nodes, memoized
    /// invariants, reusable per-shard scratch. Default.
    #[default]
    Compiled,
    /// The tree-walking interpreter — kept as the reference oracle for
    /// differential tests and A/B benchmarks.
    Interpreter,
}

/// Monitoring mode; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Block contract-violating requests (Figure 2 proxy).
    #[default]
    Enforce,
    /// Forward everything and classify (test oracle).
    Observe,
}

/// The monitor's judgement of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Contract satisfied (or correctly denied request).
    Pass,
    /// The URI/method is not part of the behavioural model; forwarded
    /// unchecked.
    NotModelled,
    /// Enforce mode: pre-condition failed, request blocked before the
    /// cloud saw it.
    PreBlocked,
    /// The pre-condition was false yet the cloud accepted — a wrong
    /// authorization (privilege escalation) or missing functional check.
    WrongAcceptance,
    /// The pre-condition was true yet the cloud denied — an authorized
    /// user was prevented from accessing the resource.
    WrongDenial,
    /// Pre passed and the cloud accepted, but the post-condition failed
    /// (state not updated as specified).
    PostViolation,
    /// The cloud answered with an unexpected success code.
    WrongStatus {
        /// Code the uniform interface specifies for this method.
        expected: u16,
        /// Code the cloud actually sent.
        actual: u16,
    },
    /// Contract evaluation itself failed (modelling/environment error).
    ContractError,
    /// The monitor could not *check* the request: the transport to the
    /// cloud failed (snapshot probes undeliverable, or the forward
    /// itself came back as a marked gateway fault). Explicitly not a
    /// violation — the cloud's contract compliance was never observed.
    /// The untestable security-requirement ids travel in the outcome's
    /// `requirements`, preserving Table-I traceability.
    Degraded,
    /// An anti-entropy reconciliation pass found the cloud's state
    /// diverged from the shadow replica: something mutated the cloud
    /// **out of band**, bypassing the monitored path. Not a request
    /// violation (the request it piggybacked on was judged separately)
    /// but a detection the paper's probing monitor cannot make explicit.
    Drift,
}

impl Verdict {
    /// True for verdicts that indicate a fault in the cloud implementation.
    #[must_use]
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            Verdict::WrongAcceptance
                | Verdict::WrongDenial
                | Verdict::PostViolation
                | Verdict::WrongStatus { .. }
        )
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pass => write!(f, "pass"),
            Verdict::NotModelled => write!(f, "not-modelled"),
            Verdict::PreBlocked => write!(f, "pre-blocked"),
            Verdict::WrongAcceptance => write!(f, "wrong-acceptance"),
            Verdict::WrongDenial => write!(f, "wrong-denial"),
            Verdict::PostViolation => write!(f, "post-violation"),
            Verdict::WrongStatus { expected, actual } => {
                write!(f, "wrong-status(expected {expected}, got {actual})")
            }
            Verdict::ContractError => write!(f, "contract-error"),
            Verdict::Degraded => write!(f, "degraded"),
            Verdict::Drift => write!(f, "drift"),
        }
    }
}

impl From<&Verdict> for VerdictCode {
    fn from(verdict: &Verdict) -> VerdictCode {
        match verdict {
            Verdict::Pass => VerdictCode::Pass,
            Verdict::NotModelled => VerdictCode::NotModelled,
            Verdict::PreBlocked => VerdictCode::PreBlocked,
            Verdict::WrongAcceptance => VerdictCode::WrongAcceptance,
            Verdict::WrongDenial => VerdictCode::WrongDenial,
            Verdict::PostViolation => VerdictCode::PostViolation,
            Verdict::WrongStatus { expected, actual } => VerdictCode::WrongStatus {
                expected: *expected,
                actual: *actual,
            },
            Verdict::ContractError => VerdictCode::ContractError,
            Verdict::Degraded => VerdictCode::Degraded,
            Verdict::Drift => VerdictCode::Drift,
        }
    }
}

/// What the monitor does when it cannot take a checked decision because
/// the path to the cloud is sick (pre-snapshot probes undeliverable
/// within budget).
///
/// The policy only matters in [`Mode::Enforce`]: in [`Mode::Observe`]
/// the monitor never blocks, so a degraded request is forwarded and
/// recorded as [`Verdict::Degraded`]. Fail-open passes are counted and
/// surfaced through the `resilience` metrics family (`fail_open_pass`)
/// — the audit trail CloudSec-style engines demand for any unchecked
/// admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedPolicy {
    /// Refuse the request (`503`, marked as a transport fault) rather
    /// than let it through unchecked. The availability-conservative
    /// default: a monitor that silently fails open is a security hole.
    #[default]
    FailClosed,
    /// Forward up to `max_unchecked` requests without a pre-check, then
    /// fail closed. Every such pass increments the `fail_open_pass`
    /// alarm counter visible at `/-/metrics`.
    FailOpen {
        /// Lifetime cap on unchecked forwards.
        max_unchecked: u64,
    },
}

impl DegradedPolicy {
    /// Stable textual form recorded into audit records
    /// (`"fail-closed"`, `"fail-open:N"`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            DegradedPolicy::FailClosed => "fail-closed".to_string(),
            DegradedPolicy::FailOpen { max_unchecked } => format!("fail-open:{max_unchecked}"),
        }
    }
}

/// One line of the monitor's log.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorRecord {
    /// Global sequence number, assigned when the request is admitted to
    /// its log shard (i.e. at snapshot time, while the shard lock is
    /// held) — not when the record is appended. Within a shard, seq order
    /// is processing order, so sorting the merged log by `seq` replays
    /// causally.
    pub seq: u64,
    /// Request method.
    pub method: HttpMethod,
    /// Request path.
    pub path: String,
    /// The trigger the request mapped to, if modelled.
    pub trigger: Option<Trigger>,
    /// The verdict.
    pub verdict: Verdict,
    /// Security requirements exercised by the enabled clauses.
    pub requirements: Vec<String>,
    /// Status code returned to the client.
    pub status: StatusCode,
    /// Free-form diagnostics (evaluation errors, which clause enabled …).
    pub diagnostics: String,
}

/// The outcome handed back by [`CloudMonitor::process`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorOutcome {
    /// The response to give the monitor's client.
    pub response: RestResponse,
    /// The verdict.
    pub verdict: Verdict,
    /// Requirements exercised.
    pub requirements: Vec<String>,
}

/// An error raised while generating a monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorBuildError {
    /// Description.
    pub message: String,
}

impl fmt::Display for MonitorBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "monitor generation error: {}", self.message)
    }
}

impl std::error::Error for MonitorBuildError {}

/// Tuning for the [`BrownoutController`]'s hysteresis.
///
/// The controller samples the transport's [`OverloadStats`] once per
/// [`BrownoutConfig::tick_interval`] and classifies the window:
/// **hot** when the windowed shed fraction reaches `enter_shed_rate`,
/// **cool** when it stays at or below `exit_shed_rate`, and *held*
/// in between (the hysteresis band — neither streak advances, so the
/// ladder neither climbs nor relaxes on noise). `enter_after`
/// consecutive hot windows climb one rung; `exit_after` consecutive
/// cool windows descend one. Asymmetric on purpose: shedding optional
/// work should be quick, restoring it should wait for sustained calm.
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Windowed shed fraction (`shed / (admitted + shed)`) at or above
    /// which a window counts as hot.
    pub enter_shed_rate: f64,
    /// Windowed shed fraction at or below which a window counts cool.
    pub exit_shed_rate: f64,
    /// Consecutive hot windows before climbing one rung.
    pub enter_after: u32,
    /// Consecutive cool windows before descending one rung.
    pub exit_after: u32,
    /// How often the driving loop should call [`BrownoutController::tick`]
    /// (advisory — the controller itself is clockless).
    pub tick_interval: Duration,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enter_shed_rate: 0.05,
            exit_shed_rate: 0.01,
            enter_after: 2,
            exit_after: 8,
            tick_interval: Duration::from_millis(250),
        }
    }
}

/// Moves the brownout ladder ([`cm_obs::BrownoutSignal`]) in response
/// to transport overload, one rung per decision, with hysteresis on
/// both edges. Clockless and side-effect-free apart from the signal and
/// the optional metrics counters: call [`BrownoutController::tick`]
/// from any periodic loop (the `cmcli serve` sampler thread, a test)
/// and each call evaluates exactly one window.
#[derive(Debug)]
pub struct BrownoutController {
    stats: Arc<OverloadStats>,
    signal: Arc<BrownoutSignal>,
    metrics: Option<Arc<MetricsRegistry>>,
    config: BrownoutConfig,
    last_admitted: u64,
    last_shed: u64,
    hot_windows: u32,
    cool_windows: u32,
}

impl BrownoutController {
    /// A controller over the transport's stats and the shared ladder
    /// signal (the same `Arc` the monitor and admin routes hold).
    #[must_use]
    pub fn new(
        stats: Arc<OverloadStats>,
        signal: Arc<BrownoutSignal>,
        config: BrownoutConfig,
    ) -> Self {
        BrownoutController {
            last_admitted: stats.admitted_total(),
            last_shed: stats.shed_total(),
            stats,
            signal,
            metrics: None,
            config,
            hot_windows: 0,
            cool_windows: 0,
        }
    }

    /// Builder: count ladder movements into the registry's `overload`
    /// family (`brownout_step_up` / `brownout_step_down`).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The advisory cadence for the driving loop.
    #[must_use]
    pub fn tick_interval(&self) -> Duration {
        self.config.tick_interval
    }

    /// Evaluate one control window; returns `Some((from, to))` when the
    /// ladder moved. An idle window (no traffic at all) counts as cool:
    /// a node nobody is asking anything of has no business browning out.
    pub fn tick(&mut self) -> Option<(u8, u8)> {
        let admitted = self.stats.admitted_total();
        let shed = self.stats.shed_total();
        let d_admitted = admitted.saturating_sub(self.last_admitted);
        let d_shed = shed.saturating_sub(self.last_shed);
        self.last_admitted = admitted;
        self.last_shed = shed;
        let seen = d_admitted + d_shed;
        #[allow(clippy::cast_precision_loss)]
        let rate = if seen == 0 {
            0.0
        } else {
            d_shed as f64 / seen as f64
        };
        if rate >= self.config.enter_shed_rate {
            self.hot_windows += 1;
            self.cool_windows = 0;
        } else if rate <= self.config.exit_shed_rate {
            self.cool_windows += 1;
            self.hot_windows = 0;
        } else {
            // Hysteresis band: hold the current rung.
            self.hot_windows = 0;
            self.cool_windows = 0;
        }
        let step = self.signal.step();
        if self.hot_windows >= self.config.enter_after && step < BROWNOUT_MAX_STEP {
            self.hot_windows = 0;
            let from = self.signal.set_step(step + 1);
            if let Some(metrics) = &self.metrics {
                metrics.overload.increment("brownout_step_up");
            }
            return Some((from, step + 1));
        }
        if self.cool_windows >= self.config.exit_after && step > 0 {
            self.cool_windows = 0;
            let from = self.signal.set_step(step - 1);
            if let Some(metrics) = &self.metrics {
                metrics.overload.increment("brownout_step_down");
            }
            return Some((from, step - 1));
        }
        None
    }
}

/// The generated cloud monitor, wrapping a cloud service `S`.
///
/// The monitor is built and authenticated through `&mut self` methods,
/// then shared: [`CloudMonitor::process`] takes `&self`, so an
/// `Arc<CloudMonitor<_>>` serves many client threads concurrently. The
/// read side (routes, contracts, compiled OCL, tokens) is immutable
/// after setup; the mutable side (the log) is sharded by resource, and
/// coverage/metrics/events are atomics underneath.
#[derive(Debug)]
pub struct CloudMonitor<S: SharedRestService> {
    cloud: S,
    routes: RouteTable,
    contracts: ContractSet,
    /// The contracts lowered to compiled programs (parallel to
    /// `contracts.contracts`), built once at generate time.
    compiled: CompiledContractSet,
    prober: StateProber,
    mode: Mode,
    eval_strategy: EvalStrategy,
    snapshot_policy: SnapshotPolicy,
    /// Whether passing requests also report which model state the cloud
    /// is in afterwards (the paper's stateful view). State matching
    /// evaluates every state invariant, so under
    /// [`SnapshotPolicy::Scoped`] it forces the snapshots to cover the
    /// invariants' reads; turning it off switches to the contracts'
    /// *lean* scopes — fewer probes per request, identical verdicts.
    report_states: bool,
    /// Forward *safe* (read-only) requests speculatively: pre-probes,
    /// the forward, and post-probes ride in one pipelined backend batch
    /// instead of two sequential rounds. See
    /// [`CloudMonitor::speculative_reads`].
    speculative_reads: bool,
    /// Under [`SnapshotPolicy::Replica`]: run a scheduled anti-entropy
    /// reconciliation after this many replica-served requests per
    /// project (0 = on-demand reconciliation only).
    anti_entropy_every: u64,
    degraded_policy: DegradedPolicy,
    /// Unchecked forwards admitted so far under `FailOpen`.
    fail_open_used: AtomicU64,
    monitor_token: String,
    /// Project the monitor's probe token is scoped to (learned during
    /// [`CloudMonitor::authenticate`]); probe denials outside this scope
    /// are expected, not anomalous.
    monitor_project: Option<u64>,
    /// Additional probe tokens per project, from
    /// [`CloudMonitor::authenticate_scoped`].
    project_tokens: HashMap<u64, String>,
    /// Per-resource log shards; a request locks exactly one for the whole
    /// snapshot→forward→snapshot protocol, giving per-resource atomicity.
    /// Each shard also owns the reusable evaluation scratch for requests
    /// processed under its lock.
    log_shards: Box<[Mutex<LogShard>]>,
    /// Global sequence counter; see [`MonitorRecord::seq`].
    seq: AtomicU64,
    coverage: CoverageTracker,
    metrics: Arc<MetricsRegistry>,
    events: Arc<dyn EventSink>,
    /// Optional durable audit recorder; when attached, every processed
    /// request also emits a replayable [`AuditRecord`].
    audit: Option<Arc<dyn AuditRecorder>>,
    /// Optional brownout ladder signal ([`CloudMonitor::brownout_signal`]).
    /// When attached, steps ≥ 1 disable speculative safe-read
    /// sandwiching and steps ≥ 2 stretch the scheduled anti-entropy
    /// cadence — the monitor sheds its *optional* work before the
    /// transport sheds requests.
    brownout: Option<Arc<BrownoutSignal>>,
}

/// Per-shard mutable state: the log records plus the reusable evaluation
/// scratch (interned locals stack + memo slots). The scratch lives with
/// the shard so steady-state contract checking reuses its allocations
/// request after request instead of reallocating per call.
#[derive(Debug, Default)]
struct LogShard {
    records: Vec<MonitorRecord>,
    scratch: EvalScratch,
    /// Shadow replicas for the projects this shard serves
    /// ([`SnapshotPolicy::Replica`] only). Living under the shard lock
    /// gives the replica the same per-project serialization guarantee
    /// the snapshot protocol already relies on.
    replicas: HashMap<u64, ProjectReplica>,
}

/// Freshly allocated, empty log shards.
fn new_log_shards() -> Box<[Mutex<LogShard>]> {
    (0..MONITOR_SHARDS)
        .map(|_| Mutex::new(LogShard::default()))
        .collect()
}

impl<S: SharedRestService> CloudMonitor<S> {
    /// Generate a monitor from the design models, wrapping `cloud`.
    ///
    /// Routes are derived from the resource model (prefix `/v3`),
    /// contracts from the behavioural model; when a security-requirements
    /// table is supplied its authorization guards are woven into the
    /// contracts (Section VI, step 3) — pass `None` when the model's
    /// guards already carry authorization, as the paper's Figure 3 does.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorBuildError`] when contract generation fails
    /// (e.g. a transition references an undeclared state).
    pub fn generate(
        resources: &ResourceModel,
        behavior: &BehavioralModel,
        security: Option<&SecurityRequirementsTable>,
        cloud: S,
    ) -> Result<Self, MonitorBuildError> {
        let contracts = generate_with(
            behavior,
            &GenerateOptions {
                security,
                simplify: false,
            },
        )
        .map_err(|e| MonitorBuildError { message: e.message })?;
        let coverage = CoverageTracker::new(&contracts.covered_requirements());
        let compiled = CompiledContractSet::compile(&contracts);
        let metrics = Arc::new(MetricsRegistry::new());
        let prober = StateProber::default().identity_counter_handles(
            metrics.identity.counter("hit"),
            metrics.identity.counter("miss"),
        );
        Ok(CloudMonitor {
            cloud,
            routes: RouteTable::derive(resources, "/v3"),
            contracts,
            compiled,
            prober,
            mode: Mode::Enforce,
            eval_strategy: EvalStrategy::Compiled,
            snapshot_policy: SnapshotPolicy::Full,
            report_states: true,
            speculative_reads: false,
            anti_entropy_every: 0,
            degraded_policy: DegradedPolicy::FailClosed,
            fail_open_used: AtomicU64::new(0),
            monitor_token: String::new(),
            monitor_project: None,
            project_tokens: HashMap::new(),
            log_shards: new_log_shards(),
            seq: AtomicU64::new(0),
            coverage,
            metrics,
            events: Arc::new(RingBufferSink::new(DEFAULT_EVENT_CAPACITY)),
            audit: None,
            brownout: None,
        })
    }

    /// Generate a monitor from one resource model and *several*
    /// behavioural state machines (e.g. the volume lifecycle and the
    /// snapshot lifecycle). Contracts are merged; the machines must not
    /// share triggers — a duplicate (method, resource) pair is an error
    /// because the monitor could not tell which contract governs it.
    ///
    /// # Errors
    ///
    /// Contract-generation failures or overlapping triggers.
    pub fn generate_multi(
        resources: &ResourceModel,
        behaviors: &[&BehavioralModel],
        security: Option<&SecurityRequirementsTable>,
        cloud: S,
    ) -> Result<Self, MonitorBuildError> {
        let mut merged = ContractSet::default();
        for behavior in behaviors {
            let set = generate_with(
                behavior,
                &GenerateOptions {
                    security,
                    simplify: false,
                },
            )
            .map_err(|e| MonitorBuildError { message: e.message })?;
            for contract in set.contracts {
                if merged.contract_for(&contract.trigger).is_some() {
                    return Err(MonitorBuildError {
                        message: format!(
                            "trigger {} is modelled by more than one state machine",
                            contract.trigger
                        ),
                    });
                }
                merged.contracts.push(contract);
            }
            merged.states.extend(set.states);
        }
        let coverage = CoverageTracker::new(&merged.covered_requirements());
        let compiled = CompiledContractSet::compile(&merged);
        let metrics = Arc::new(MetricsRegistry::new());
        let prober = StateProber::default().identity_counter_handles(
            metrics.identity.counter("hit"),
            metrics.identity.counter("miss"),
        );
        Ok(CloudMonitor {
            cloud,
            routes: RouteTable::derive(resources, "/v3"),
            contracts: merged,
            compiled,
            prober,
            mode: Mode::Enforce,
            eval_strategy: EvalStrategy::Compiled,
            snapshot_policy: SnapshotPolicy::Full,
            report_states: true,
            speculative_reads: false,
            anti_entropy_every: 0,
            degraded_policy: DegradedPolicy::FailClosed,
            fail_open_used: AtomicU64::new(0),
            monitor_token: String::new(),
            monitor_project: None,
            project_tokens: HashMap::new(),
            log_shards: new_log_shards(),
            seq: AtomicU64::new(0),
            coverage,
            metrics,
            events: Arc::new(RingBufferSink::new(DEFAULT_EVENT_CAPACITY)),
            audit: None,
            brownout: None,
        })
    }

    /// Select the monitoring mode.
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Select the snapshot policy.
    #[must_use]
    pub fn snapshot_policy(mut self, policy: SnapshotPolicy) -> Self {
        self.snapshot_policy = policy;
        self
    }

    /// Select the evaluation strategy (compiled by default; the
    /// interpreter is kept for differential testing and benchmarks).
    #[must_use]
    pub fn eval_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.eval_strategy = strategy;
        self
    }

    /// Enable or disable post-pass state diagnostics (default on).
    /// When off, passing requests carry no `state: …` diagnostics and
    /// [`SnapshotPolicy::Scoped`] snapshots shrink to the contracts'
    /// lean scopes (the state invariants' reads are no longer probed).
    #[must_use]
    pub fn report_states(mut self, report: bool) -> Self {
        self.report_states = report;
        self
    }

    /// Enable speculative forwarding of *safe* methods (RFC 7231
    /// §4.2.1 — GET). When on, a modelled GET's pre-probes, the forward
    /// itself, and its post-probes are issued as ONE pipelined backend
    /// batch ordered `[pre…, forward, post…]`: in-order execution means
    /// each phase still observes exactly the state it would have seen
    /// in the sequential exchange, but two backend round-trips collapse
    /// into one. The semantic shift — and why this is opt-in — is that
    /// the GET reaches the cloud *before* the monitor's pre-verdict: a
    /// request the monitor will deny still executes (harmlessly, being
    /// read-only, and still subject to the cloud's own access control)
    /// and only its response is withheld from the client. Verdicts and
    /// client-visible responses are identical either way; mutating
    /// methods always keep the strict check-then-forward order.
    #[must_use]
    pub fn speculative_reads(mut self, on: bool) -> Self {
        self.speculative_reads = on;
        self
    }

    /// Set the prober's identity-cache TTL: how long one token
    /// introspection answer serves subsequent snapshots (default
    /// [`crate::probe::DEFAULT_IDENTITY_TTL`]). `Duration::ZERO`
    /// disables the cache — every snapshot re-introspects, so a
    /// revocation is observed immediately instead of within the TTL.
    #[must_use]
    pub fn identity_cache_ttl(mut self, ttl: Duration) -> Self {
        self.prober = self.prober.clone().identity_ttl(ttl);
        self
    }

    /// Set the prober's identity-cache capacity: how many distinct
    /// tokens the introspection cache retains before evicting (default
    /// [`crate::probe::DEFAULT_IDENTITY_CAP`]).
    #[must_use]
    pub fn identity_cache_capacity(mut self, capacity: usize) -> Self {
        self.prober = self.prober.clone().identity_capacity(capacity);
        self
    }

    /// Under [`SnapshotPolicy::Replica`]: reconcile replica and cloud
    /// (one full probe pass, diff, repair) after every `n`
    /// replica-served requests per project. `0` (the default) disables
    /// the schedule — reconciliation then happens only on demand, after
    /// an uncertainty (miss, transport fault, unexpected response
    /// shape) marks the replica stale. Out-of-band mutation is only
    /// *reported* as [`Verdict::Drift`] by scheduled passes: an
    /// on-demand pass re-seeds a replica that already knows it may be
    /// wrong, so a diff would not distinguish drift from its own
    /// uncertainty.
    #[must_use]
    pub fn anti_entropy_every(mut self, n: u64) -> Self {
        self.anti_entropy_every = n;
        self
    }

    /// Select what happens when the transport prevents a pre-check
    /// (default [`DegradedPolicy::FailClosed`]).
    #[must_use]
    pub fn degraded_policy(mut self, policy: DegradedPolicy) -> Self {
        self.degraded_policy = policy;
        self
    }

    /// Unchecked forwards admitted so far under
    /// [`DegradedPolicy::FailOpen`].
    #[must_use]
    pub fn fail_open_used(&self) -> u64 {
        self.fail_open_used.load(Ordering::Relaxed)
    }

    /// Replace the event sink (builder style). The default is a
    /// [`RingBufferSink`] retaining the last [`DEFAULT_EVENT_CAPACITY`]
    /// events.
    #[must_use]
    pub fn event_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.events = sink;
        self
    }

    /// Attach a durable audit recorder (builder style). Every processed
    /// request then also emits a self-contained [`AuditRecord`] carrying
    /// the observed pre/post environments, requirement ids, and
    /// degraded-policy context — enough to re-evaluate the trace later
    /// against an updated contract set (`cmcli audit replay`).
    #[must_use]
    pub fn audit_recorder(mut self, recorder: Arc<dyn AuditRecorder>) -> Self {
        self.audit = Some(recorder);
        self
    }

    /// Attach the brownout ladder signal (builder style). Share the same
    /// `Arc` with a [`BrownoutController`] (which moves the step in
    /// response to overload) and the admin routes (which surface it):
    /// at step ≥ 1 the monitor stops speculative safe-read sandwiching,
    /// at step ≥ 2 it stretches the scheduled anti-entropy cadence by
    /// [`ANTI_ENTROPY_STRETCH`]×. Verdicts are never affected — only
    /// how much optional work rides on each request.
    #[must_use]
    pub fn brownout_signal(mut self, signal: Arc<BrownoutSignal>) -> Self {
        self.brownout = Some(signal);
        self
    }

    /// Effective scheduled anti-entropy interval: the configured cadence,
    /// stretched while the brownout ladder sits at step ≥ 2. `0` stays
    /// `0` (on-demand only) — a brownout must not *enable* a schedule.
    fn effective_anti_entropy(&self) -> u64 {
        let every = self.anti_entropy_every;
        if every > 0
            && self
                .brownout
                .as_ref()
                .is_some_and(|b| b.anti_entropy_stretched())
        {
            every.saturating_mul(ANTI_ENTROPY_STRETCH)
        } else {
            every
        }
    }

    /// Whether speculative safe-read sandwiching is currently allowed:
    /// configured on AND not shed by the brownout ladder (step ≥ 1).
    fn speculation_allowed(&self) -> bool {
        self.speculative_reads
            && !self
                .brownout
                .as_ref()
                .is_some_and(|b| b.speculative_disabled())
    }

    /// The metrics registry. The `Arc` is shared with the monitor, so a
    /// clone handed to an admin endpoint sees live counts.
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// The event sink (shared, like [`CloudMonitor::metrics`]).
    #[must_use]
    pub fn events(&self) -> Arc<dyn EventSink> {
        Arc::clone(&self.events)
    }

    /// Authenticate the monitor's own probing identity against the wrapped
    /// cloud (POST `/identity/auth/tokens`).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorBuildError`] when the cloud rejects the
    /// credentials.
    pub fn authenticate(&mut self, user: &str, password: &str) -> Result<(), MonitorBuildError> {
        let resp = self.cloud.call(
            &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![
                (
                    "auth",
                    Json::object(vec![
                        ("user", Json::Str(user.to_string())),
                        ("password", Json::Str(password.to_string())),
                    ]),
                ),
            ])),
        );
        let token = resp
            .body
            .as_ref()
            .and_then(|b| b.get("token"))
            .and_then(|t| t.get("id"))
            .and_then(Json::as_str);
        match token {
            Some(t) if resp.status.is_success() => {
                self.monitor_token = t.to_string();
                self.monitor_project = resp
                    .body
                    .as_ref()
                    .and_then(|b| b.get("token"))
                    .and_then(|tok| tok.get("project_id"))
                    .and_then(Json::as_int)
                    .map(|v| v as u64);
                Ok(())
            }
            _ => Err(MonitorBuildError {
                message: format!("monitor authentication failed: {}", resp.status),
            }),
        }
    }

    /// Authenticate an additional probing identity scoped to `project_id`
    /// (multi-project clouds). Probes against that project then use the
    /// scoped token instead of the default one from
    /// [`CloudMonitor::authenticate`]. Call once per project before
    /// sharing the monitor; like `authenticate`, this is a setup-time
    /// `&mut self` operation.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorBuildError`] when the cloud rejects the
    /// credentials or the scope.
    pub fn authenticate_scoped(
        &mut self,
        user: &str,
        password: &str,
        project_id: u64,
    ) -> Result<(), MonitorBuildError> {
        let resp = self.cloud.call(
            &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![
                (
                    "auth",
                    Json::object(vec![
                        ("user", Json::Str(user.to_string())),
                        ("password", Json::Str(password.to_string())),
                        ("project_id", Json::Int(project_id as i64)),
                    ]),
                ),
            ])),
        );
        let token = resp
            .body
            .as_ref()
            .and_then(|b| b.get("token"))
            .and_then(|t| t.get("id"))
            .and_then(Json::as_str);
        match token {
            Some(t) if resp.status.is_success() => {
                if self.monitor_token.is_empty() {
                    self.monitor_token = t.to_string();
                    self.monitor_project = Some(project_id);
                }
                self.project_tokens.insert(project_id, t.to_string());
                Ok(())
            }
            _ => Err(MonitorBuildError {
                message: format!(
                    "monitor authentication failed for project {project_id}: {}",
                    resp.status
                ),
            }),
        }
    }

    /// The wrapped cloud (read access for assertions in tests).
    #[must_use]
    pub fn cloud(&self) -> &S {
        &self.cloud
    }

    /// Mutable access to the wrapped cloud (scenario setup in tests).
    pub fn cloud_mut(&mut self) -> &mut S {
        &mut self.cloud
    }

    /// The monitor's log: all shards merged, sorted by the global
    /// sequence number — i.e. in causal (per-resource processing) order.
    #[must_use]
    pub fn log(&self) -> Vec<MonitorRecord> {
        let mut all: Vec<MonitorRecord> = self
            .log_shards
            .iter()
            .flat_map(|shard| plock(shard).records.clone())
            .collect();
        all.sort_by_key(|r| r.seq);
        all
    }

    /// Coverage of security requirements observed so far.
    #[must_use]
    pub fn coverage(&self) -> &CoverageTracker {
        &self.coverage
    }

    /// The generated contracts (introspection / listing rendering).
    #[must_use]
    pub fn contracts(&self) -> &ContractSet {
        &self.contracts
    }

    /// The compiled form of the contracts (stats / audit introspection).
    #[must_use]
    pub fn compiled_contracts(&self) -> &CompiledContractSet {
        &self.compiled
    }

    /// The derived route table.
    #[must_use]
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// The log shard responsible for `path`. Modelled paths
    /// (`/v3/{project_id}/…`) shard by project id, so all requests
    /// touching one project's resources serialize on one lock; anything
    /// else (identity, unmodelled paths) shards by path hash.
    fn shard_index(&self, path: &str) -> usize {
        let mut segments = path.split('/').filter(|s| !s.is_empty());
        let project = match (segments.next(), segments.next()) {
            (Some("v3" | "compute"), Some(pid)) => pid.parse::<u64>().ok(),
            _ => None,
        };
        let key = project.unwrap_or_else(|| {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            path.hash(&mut hasher);
            hasher.finish()
        });
        (key as usize) % self.log_shards.len()
    }

    /// Process one request through the Figure 2 workflow.
    ///
    /// Takes `&self`: many threads may call this concurrently on a shared
    /// monitor. The request's resource shard is locked for the whole
    /// pre-snapshot → forward → post-snapshot protocol, so the two
    /// snapshots of one request never interleave with another request for
    /// the same resource (shard-local snapshot isolation); requests for
    /// different resources run in parallel.
    pub fn process(&self, request: &RestRequest) -> MonitorOutcome {
        let started = Instant::now();
        let shard = &self.log_shards[self.shard_index(&request.path)];
        let mut shard = plock(shard);
        // The global sequence number is taken at admission (snapshot
        // time), under the shard lock — not at log-append time — so that
        // sorting the merged log by seq replays per-resource causal order.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut obs = ObsScratch {
            audit: self.audit.is_some(),
            ..ObsScratch::default()
        };
        let LogShard {
            records,
            scratch,
            replicas,
        } = &mut *shard;
        let (outcome, trigger, diagnostics) =
            self.process_inner(request, &mut obs, scratch, replicas);
        obs.timings.total = started.elapsed();
        if let Some(recorder) = &self.audit {
            recorder.record(self.audit_record(
                seq,
                request,
                &mut obs,
                &outcome,
                &trigger,
                &diagnostics,
            ));
        }
        let event = MonitorEvent {
            seq: 0, // assigned by the sink
            method: request.method.as_str().to_string(),
            path: request.path.clone(),
            route: obs.route,
            verdict: outcome.verdict.to_string(),
            violation: outcome.verdict.is_violation(),
            status: outcome.response.status.0,
            requirements: outcome.requirements.clone(),
            contract: obs.contract,
            timings: obs.timings,
            diagnostics: diagnostics.clone(),
        };
        self.metrics.observe(&event);
        self.events.emit(event);
        let record = MonitorRecord {
            seq,
            method: request.method,
            path: request.path.clone(),
            trigger,
            verdict: outcome.verdict.clone(),
            requirements: outcome.requirements.clone(),
            status: outcome.response.status,
            diagnostics,
        };
        self.coverage.record(&record);
        debug_assert!(
            records.last().is_none_or(|prev| prev.seq < seq),
            "per-shard log must stay seq-ordered"
        );
        records.push(record);
        // An anti-entropy pass piggybacked on this request found the
        // cloud diverged from the replica: emit the detection as its own
        // record/event — it is about the *cloud*, not this request,
        // whose own verdict stands above.
        if let Some(drift) = obs.drift.take() {
            let drift_seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let diagnostics = format!("replica drift: {}", drift.details);
            if let Some(recorder) = &self.audit {
                recorder.record(AuditRecord {
                    seq: drift_seq,
                    ts_nanos: SystemTime::now()
                        .duration_since(UNIX_EPOCH)
                        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
                        .unwrap_or(0),
                    method: request.method.as_str().to_string(),
                    path: request.path.clone(),
                    route: None,
                    trigger: None,
                    mode: match self.mode {
                        Mode::Enforce => MonitorMode::Enforce,
                        Mode::Observe => MonitorMode::Observe,
                    },
                    degraded_policy: self.degraded_policy.label(),
                    verdict: VerdictCode::Drift,
                    requirements: drift.requirements.clone(),
                    status: outcome.response.status.0,
                    diagnostics: diagnostics.clone(),
                    context: ReplayContext::Drift {
                        attributes: drift.attributes.clone(),
                    },
                });
            }
            let event = MonitorEvent {
                seq: 0,
                method: request.method.as_str().to_string(),
                path: request.path.clone(),
                route: None,
                verdict: Verdict::Drift.to_string(),
                violation: false,
                status: outcome.response.status.0,
                requirements: drift.requirements.clone(),
                contract: None,
                timings: PhaseTimings::default(),
                diagnostics: diagnostics.clone(),
            };
            self.metrics.observe(&event);
            self.events.emit(event);
            records.push(MonitorRecord {
                seq: drift_seq,
                method: request.method,
                path: request.path.clone(),
                trigger: None,
                verdict: Verdict::Drift,
                requirements: drift.requirements,
                status: outcome.response.status,
                diagnostics,
            });
        }
        outcome
    }

    /// Record a request the transport shed under overload, without
    /// processing it. The shed is written into the same audit trail as
    /// every checked request — verdict [`Verdict::Degraded`] with a
    /// [`ReplayContext::DegradedPre`] carrying the overload provenance
    /// (`forwarded: false`: the cloud never saw the request, exactly as
    /// under a fail-closed transport fault) — so a replay of the trace
    /// sees the request was *refused unjudged*, never a violation and
    /// never a silent drop. Wire this as the transport's shed observer
    /// (`cm_httpkit::ShedObserver`).
    pub fn record_shed(&self, request: &RestRequest, decision: &ShedDecision) {
        let detail = format!(
            "overload shed: lane={} cause={} queue_wait={}ms budget={}ms",
            decision.lane.label(),
            decision.cause.label(),
            decision.queue_wait.as_millis(),
            decision.budget.as_millis(),
        );
        if let Some(recorder) = &self.audit {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            recorder.record(AuditRecord {
                seq,
                ts_nanos: SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
                    .unwrap_or(0),
                method: request.method.as_str().to_string(),
                path: request.path.clone(),
                route: None,
                trigger: None,
                mode: match self.mode {
                    Mode::Enforce => MonitorMode::Enforce,
                    Mode::Observe => MonitorMode::Observe,
                },
                degraded_policy: self.degraded_policy.label(),
                verdict: VerdictCode::Degraded,
                requirements: Vec::new(),
                status: StatusCode::SERVICE_UNAVAILABLE.0,
                diagnostics: detail.clone(),
                context: ReplayContext::DegradedPre {
                    forwarded: false,
                    faults: vec![detail.clone()],
                },
            });
        }
        let event = MonitorEvent {
            seq: 0,
            method: request.method.as_str().to_string(),
            path: request.path.clone(),
            route: None,
            verdict: Verdict::Degraded.to_string(),
            violation: false,
            status: StatusCode::SERVICE_UNAVAILABLE.0,
            requirements: Vec::new(),
            contract: None,
            timings: PhaseTimings::default(),
            diagnostics: detail,
        };
        self.metrics.observe(&event);
        self.metrics.overload.increment("shed_recorded");
        self.events.emit(event);
    }

    /// Fold the observation scratch into a durable, replayable record.
    fn audit_record(
        &self,
        seq: u64,
        request: &RestRequest,
        obs: &mut ObsScratch,
        outcome: &MonitorOutcome,
        trigger: &Option<Trigger>,
        diagnostics: &str,
    ) -> AuditRecord {
        let context = match obs.ctx.take() {
            Some(CtxSpecial::Unmodelled) => ReplayContext::Unmodelled,
            Some(CtxSpecial::MethodNotAllowed { enforced }) => ReplayContext::MethodNotAllowed {
                enforced,
                cloud_status: obs.cloud_status,
            },
            Some(CtxSpecial::BadTarget) => ReplayContext::BadTarget,
            Some(CtxSpecial::DegradedPre { forwarded, faults }) => {
                ReplayContext::DegradedPre { forwarded, faults }
            }
            Some(CtxSpecial::DegradedForward) => ReplayContext::DegradedForward,
            None => match obs.pre_env.take() {
                Some(pre_env) => ReplayContext::Checked {
                    pre_env,
                    post_env: obs.post_env.take(),
                    post_partial: obs.post_partial,
                    probe_denials: std::mem::take(&mut obs.probe_denials),
                    forwarded: obs.forwarded,
                    cloud_status: obs.cloud_status,
                    provenance: if obs.replica_env {
                        EnvProvenance::Replica
                    } else {
                        EnvProvenance::Probe
                    },
                },
                // Every checked branch captures a pre-state; reaching
                // here means an unmapped branch — record the least
                // claiming context rather than invent one.
                None => ReplayContext::Unmodelled,
            },
        };
        AuditRecord {
            seq,
            ts_nanos: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
                .unwrap_or(0),
            method: request.method.as_str().to_string(),
            path: request.path.clone(),
            route: obs.route.clone(),
            trigger: trigger
                .as_ref()
                .map(|t| (t.method.as_str().to_string(), t.resource.clone())),
            mode: match self.mode {
                Mode::Enforce => MonitorMode::Enforce,
                Mode::Observe => MonitorMode::Observe,
            },
            degraded_policy: self.degraded_policy.label(),
            verdict: VerdictCode::from(&outcome.verdict),
            requirements: outcome.requirements.clone(),
            status: outcome.response.status.0,
            diagnostics: diagnostics.to_string(),
            context,
        }
    }

    /// Decide a request whose pre-state could not be observed (transport
    /// faults during the pre-snapshot). Observe mode always forwards;
    /// Enforce mode consults the [`DegradedPolicy`]. All paths return
    /// [`Verdict::Degraded`] carrying the contract's full
    /// security-requirement set — the ids that went untested.
    fn degrade_pre(
        &self,
        request: &RestRequest,
        obs: &mut ObsScratch,
        trigger: &Trigger,
        contract: &cm_contracts::MethodContract,
        faults: &[crate::probe::ProbeFault],
    ) -> (MonitorOutcome, Option<Trigger>, String) {
        self.metrics.resilience.increment("degraded_pre");
        let fault_list = faults
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        let requirements = contract.security_requirements.clone();
        let forward_unchecked = match (self.mode, self.degraded_policy) {
            (Mode::Observe, _) => true,
            (Mode::Enforce, DegradedPolicy::FailClosed) => false,
            (Mode::Enforce, DegradedPolicy::FailOpen { max_unchecked }) => {
                // Reserve a fail-open slot atomically; once the cap is
                // spent the monitor falls back to failing closed.
                let admitted = self
                    .fail_open_used
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                        (used < max_unchecked).then_some(used + 1)
                    })
                    .is_ok();
                if admitted {
                    self.metrics.resilience.increment("fail_open_pass");
                }
                admitted
            }
        };
        obs.ctx = Some(CtxSpecial::DegradedPre {
            forwarded: forward_unchecked,
            faults: faults.iter().map(ToString::to_string).collect(),
        });
        let (response, diagnostics) = if forward_unchecked {
            let response = timed(&mut obs.timings.forward, || self.cloud.call(request));
            obs.forwarded = true;
            (
                response,
                format!("forwarded unchecked (pre-snapshot faults: {fault_list})"),
            )
        } else {
            self.metrics.resilience.increment("fail_closed");
            (
                RestResponse::transport_fault(
                    StatusCode::SERVICE_UNAVAILABLE,
                    format!("monitor degraded, failing closed: {fault_list}"),
                ),
                format!("failed closed (pre-snapshot faults: {fault_list})"),
            )
        };
        (
            MonitorOutcome {
                response,
                verdict: Verdict::Degraded,
                requirements,
            },
            Some(trigger.clone()),
            diagnostics,
        )
    }

    /// Attribute drifted `(root, attr)` pairs to the security
    /// requirements of every contract whose pre/post scope reads one of
    /// them — the Table-I traceability of a drift detection.
    fn drift_report(&self, drift: Vec<DriftEntry>) -> DriftReport {
        let mut requirements: Vec<String> = Vec::new();
        for (idx, compiled) in self.compiled.contracts().iter().enumerate() {
            let touched = drift.iter().any(|d| {
                compiled.pre_scope().contains(&d.root, &d.attr)
                    || compiled.post_scope().contains(&d.root, &d.attr)
            });
            if touched {
                for r in &self.contracts.contracts[idx].security_requirements {
                    if !requirements.contains(r) {
                        requirements.push(r.clone());
                    }
                }
            }
        }
        DriftReport {
            attributes: drift
                .iter()
                .map(|d| format!("{}.{}", d.root, d.attr))
                .collect(),
            details: drift
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; "),
            requirements,
        }
    }

    /// Replica bookkeeping for forwards that bypass the checked path: a
    /// successful non-GET against a project whose replica exists may
    /// have mutated state the transition function never saw, so the
    /// replica can no longer predict — mark it stale (the next request
    /// probes and re-seeds).
    fn note_unmodelled_forward(
        replicas: &mut HashMap<u64, ProjectReplica>,
        path: &str,
        method: HttpMethod,
        response: &RestResponse,
    ) {
        if method == HttpMethod::Get || !response.status.is_success() {
            return;
        }
        let mut segments = path.split('/').filter(|s| !s.is_empty());
        if let (Some("v3" | "compute"), Some(pid)) = (segments.next(), segments.next()) {
            if let Ok(pid) = pid.parse::<u64>() {
                if let Some(replica) = replicas.get_mut(&pid) {
                    replica.mark_stale();
                }
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn process_inner(
        &self,
        request: &RestRequest,
        obs: &mut ObsScratch,
        scratch: &mut EvalScratch,
        replicas: &mut HashMap<u64, ProjectReplica>,
    ) -> (MonitorOutcome, Option<Trigger>, String) {
        // 1. Resolve the URI against the model-derived routes.
        let (route, params) = match self.routes.resolve(request.method, &request.path) {
            Resolution::Matched { route, params } => {
                obs.route = Some(route.template.to_string());
                (route.clone(), params)
            }
            Resolution::MethodNotAllowed { route } => {
                // Listing 2: HttpResponseNotAllowed. `route.allow` is the
                // method list pre-joined at derivation time.
                if self.mode == Mode::Enforce {
                    obs.ctx = Some(CtxSpecial::MethodNotAllowed { enforced: true });
                    let resp = RestResponse::error(
                        StatusCode::METHOD_NOT_ALLOWED,
                        format!("method not allowed; allowed: {}", route.allow),
                    )
                    .header("Allow", route.allow.clone());
                    return (
                        MonitorOutcome {
                            response: resp,
                            verdict: Verdict::PreBlocked,
                            requirements: Vec::new(),
                        },
                        None,
                        "method not in model-derived interface".to_string(),
                    );
                }
                let response = timed(&mut obs.timings.forward, || self.cloud.call(request));
                Self::note_unmodelled_forward(replicas, &request.path, request.method, &response);
                obs.ctx = Some(CtxSpecial::MethodNotAllowed { enforced: false });
                obs.forwarded = true;
                obs.cloud_status = Some(response.status.0);
                let verdict = if response.status.is_success() {
                    Verdict::WrongAcceptance
                } else {
                    Verdict::Pass
                };
                return (
                    MonitorOutcome {
                        response,
                        verdict,
                        requirements: Vec::new(),
                    },
                    None,
                    "method outside the modelled interface".to_string(),
                );
            }
            Resolution::NotFound => {
                // Unknown to the model (e.g. /identity/…): transparent proxy.
                let response = timed(&mut obs.timings.forward, || self.cloud.call(request));
                Self::note_unmodelled_forward(replicas, &request.path, request.method, &response);
                obs.ctx = Some(CtxSpecial::Unmodelled);
                obs.forwarded = true;
                obs.cloud_status = Some(response.status.0);
                return (
                    MonitorOutcome {
                        response,
                        verdict: Verdict::NotModelled,
                        requirements: Vec::new(),
                    },
                    None,
                    String::new(),
                );
            }
        };

        // 2. Map to the behavioural trigger and its contract (borrowed —
        //    the read side is immutable, nothing needs cloning).
        let trigger = Trigger::new(request.method, route.trigger_resource(request.method));
        let Some(contract_idx) = self.compiled.index_for(&trigger) else {
            let response = timed(&mut obs.timings.forward, || self.cloud.call(request));
            Self::note_unmodelled_forward(replicas, &request.path, request.method, &response);
            obs.ctx = Some(CtxSpecial::Unmodelled);
            obs.forwarded = true;
            obs.cloud_status = Some(response.status.0);
            return (
                MonitorOutcome {
                    response,
                    verdict: Verdict::NotModelled,
                    requirements: Vec::new(),
                },
                Some(trigger),
                "no contract for trigger".to_string(),
            );
        };
        let contract = &self.contracts.contracts[contract_idx];
        let compiled = &self.compiled.contracts()[contract_idx];
        let syms = self.compiled.symbols();

        // 3. Identify the probe target from the captured URI parameters.
        let Some(project_id) = params.get("project_id").and_then(|s| s.parse::<u64>().ok()) else {
            obs.ctx = Some(CtxSpecial::BadTarget);
            let response =
                RestResponse::error(StatusCode::BAD_REQUEST, "bad or missing project id");
            return (
                MonitorOutcome {
                    response,
                    verdict: Verdict::ContractError,
                    requirements: Vec::new(),
                },
                Some(trigger),
                "project id did not parse".to_string(),
            );
        };
        let volume_id = params.get("volume_id").and_then(|s| s.parse::<u64>().ok());
        let snapshot_id = params
            .get("snapshot_id")
            .and_then(|s| s.parse::<u64>().ok());
        let target = ProbeTarget {
            project_id,
            volume_id,
            snapshot_id,
            user_token: request.token().unwrap_or("").to_string(),
            monitor_token: self
                .project_tokens
                .get(&project_id)
                .cloned()
                .unwrap_or_else(|| self.monitor_token.clone()),
        };

        // 4. Snapshot the pre-state and check the pre-condition. The
        //    pre-phase attribute scope includes the post-condition's
        //    `pre()` reads — this snapshot doubles as the post's
        //    pre-state.
        let minimal_roots = match self.snapshot_policy {
            SnapshotPolicy::Minimal => contract.referenced_roots(),
            _ => Vec::new(),
        };
        let (pre_scope, post_scope) = if self.report_states {
            (compiled.pre_scope(), compiled.post_scope())
        } else {
            (compiled.pre_scope_lean(), compiled.post_scope_lean())
        };
        // Speculative safe-method pipelining (opt-in): for a GET the
        // pre-probes, the forward, and the post-probes collapse into
        // ONE pipelined backend batch. In-order batch execution keeps
        // what each phase observes identical to the sequential
        // exchange; the forward slot's result is held back until the
        // pre-verdict is in (and discarded on a deny — the GET was
        // side-effect-free). See [`CloudMonitor::speculative_reads`].
        let mut speculated: Option<(RestResponse, crate::probe::Snapshot)> = None;
        let mut replica_identity: Option<Arc<RestResponse>> = None;
        let mut via_replica = false;
        let pre_snapshot = if self.snapshot_policy == SnapshotPolicy::Replica {
            let replica = replicas.entry(project_id).or_default();
            let miss =
                !replica.ready() || volume_id.is_some_and(|vid| !replica.knows_snapshots(vid));
            let due = !miss && replica.note_request(self.effective_anti_entropy());
            if miss || due {
                // Probe path: one full-granularity pass serves this
                // request AND re-seeds the replica. A *scheduled* pass
                // additionally diffs the (still-trusted) replica first:
                // every divergence is an out-of-band mutation, surfaced
                // as a Drift detection.
                self.metrics
                    .replica
                    .increment(if miss { "miss" } else { "reconcile" });
                let reconcile_started = Instant::now();
                let snap = timed(&mut obs.timings.snapshot, || {
                    self.prober.snapshot_checked(&self.cloud, &target)
                });
                if snap.is_partial() {
                    // Transport weather during anti-entropy: the
                    // replica becomes stale (unverified), never wrong,
                    // and the request degrades exactly as a probing
                    // monitor's would.
                    replica.mark_stale();
                    self.metrics.replica.increment("stale");
                    return self.degrade_pre(request, obs, &trigger, contract, &snap.faults);
                }
                if due {
                    let drift = replica.diff(project_id, volume_id, &snap.nav);
                    if !drift.is_empty() {
                        self.metrics.replica.increment("drift");
                        self.metrics.replica.increment("repair");
                        obs.drift = Some(self.drift_report(drift));
                    }
                }
                replica.absorb(project_id, volume_id, &snap.nav);
                self.metrics
                    .reconciliation
                    .record(reconcile_started.elapsed());
                snap
            } else {
                // Steady state: zero probe round-trips. The only
                // possible network touch is the token introspection,
                // and the identity cache serves that.
                self.metrics.replica.increment("hit");
                let mut nav = replica.build_nav(project_id, volume_id, snapshot_id);
                match self.prober.identity(&self.cloud, &target.user_token) {
                    Ok(introspection) => {
                        ProjectReplica::bind_identity(&mut nav, &introspection);
                        replica_identity = Some(introspection);
                    }
                    Err(fault) => {
                        replica.mark_stale();
                        self.metrics.replica.increment("stale");
                        return self.degrade_pre(request, obs, &trigger, contract, &[fault]);
                    }
                }
                via_replica = true;
                if obs.audit {
                    obs.replica_env = true;
                }
                crate::probe::Snapshot {
                    nav,
                    denials: Vec::new(),
                    faults: Vec::new(),
                }
            }
        } else if self.speculation_allowed() && request.method == HttpMethod::Get {
            let (pre, response, post) =
                timed(&mut obs.timings.snapshot, || match self.snapshot_policy {
                    SnapshotPolicy::Full => {
                        self.prober
                            .snapshot_sandwich_checked(&self.cloud, request, &target)
                    }
                    SnapshotPolicy::Minimal => self.prober.snapshot_sandwich_scoped(
                        &self.cloud,
                        request,
                        &target,
                        &minimal_roots,
                    ),
                    SnapshotPolicy::Scoped => self.prober.snapshot_sandwich_attrs(
                        &self.cloud,
                        request,
                        &target,
                        pre_scope,
                        post_scope,
                    ),
                    // Replica mode took the dedicated branch above.
                    SnapshotPolicy::Replica => unreachable!("replica handled in its own arm"),
                });
            speculated = Some((response, post));
            pre
        } else {
            timed(&mut obs.timings.snapshot, || match self.snapshot_policy {
                SnapshotPolicy::Full => self.prober.snapshot_checked(&self.cloud, &target),
                SnapshotPolicy::Minimal => {
                    self.prober
                        .snapshot_scoped(&self.cloud, &target, &minimal_roots)
                }
                SnapshotPolicy::Scoped => {
                    self.prober.snapshot_attrs(&self.cloud, &target, pre_scope)
                }
                // Replica mode took the dedicated branch above.
                SnapshotPolicy::Replica => unreachable!("replica handled in its own arm"),
            })
        };
        // A partial snapshot (transport faults) means the pre-condition
        // is *untestable*: judging the request on half-observed state
        // would attribute transport weather to the cloud's contract.
        // The degraded policy decides what to do instead.
        if pre_snapshot.is_partial() {
            return self.degrade_pre(request, obs, &trigger, contract, &pre_snapshot.faults);
        }
        let pre_state = pre_snapshot.nav;
        // Probe denials are only meaningful where the monitor has probe
        // authority: a request addressed to a foreign project is expected
        // to be unobservable (and its pre-condition correctly fails on the
        // empty view).
        let probe_errors = match self.monitor_project {
            Some(scope_pid)
                if scope_pid != project_id && !self.project_tokens.contains_key(&project_id) =>
            {
                Vec::new()
            }
            _ => pre_snapshot.denials,
        };
        if obs.audit {
            obs.pre_env = Some(EnvSnapshot::capture(&pre_state));
            obs.probe_denials = probe_errors.clone();
        }
        // The interned view of the pre-state snapshot serves the
        // pre-check, requirement attribution, and later the post phase's
        // pre-state environment.
        let pre_view = EnvView::from_navigator(&pre_state, syms);
        let pre_ok = match timed(&mut obs.timings.pre_check, || {
            obs.contract = Some(contract.trigger.to_string());
            match self.eval_strategy {
                EvalStrategy::Compiled => {
                    compiled.begin_pre(scratch);
                    compiled.evaluate_pre(syms, &pre_view, scratch)
                }
                EvalStrategy::Interpreter => contract.evaluate_pre(&pre_state),
            }
        }) {
            Ok(v) => v,
            Err(e) => {
                let diagnostics = format!("pre-condition evaluation failed: {e}");
                let response = if self.mode == Mode::Enforce {
                    RestResponse::error(StatusCode::INTERNAL_SERVER_ERROR, &diagnostics)
                } else {
                    let response = timed(&mut obs.timings.forward, || self.cloud.call(request));
                    obs.forwarded = true;
                    obs.cloud_status = Some(response.status.0);
                    response
                };
                return (
                    MonitorOutcome {
                        response,
                        verdict: Verdict::ContractError,
                        requirements: Vec::new(),
                    },
                    Some(trigger),
                    diagnostics,
                );
            }
        };
        let requirements = timed(&mut obs.timings.pre_check, || match self.eval_strategy {
            // The clause roots are shared subtrees of the combined pre
            // (hash-consing), so with the memo table still warm from
            // `evaluate_pre` this is nearly free.
            EvalStrategy::Compiled => compiled
                .enabled_clause_indices(syms, &pre_view, scratch)
                .map(|idxs| {
                    let mut out: Vec<String> = Vec::new();
                    for i in idxs {
                        for r in &contract.clauses[i].security_requirements {
                            if !out.contains(r) {
                                out.push(r.clone());
                            }
                        }
                    }
                    out
                })
                .unwrap_or_default(),
            EvalStrategy::Interpreter => contract
                .exercised_requirements(&pre_state)
                .unwrap_or_default(),
        });

        if self.mode == Mode::Enforce && !pre_ok {
            let response = RestResponse::error(
                StatusCode::PRECONDITION_FAILED,
                format!("pre-condition of {trigger} violated"),
            );
            return (
                MonitorOutcome {
                    response,
                    verdict: Verdict::PreBlocked,
                    requirements: contract.security_requirements.clone(),
                },
                Some(trigger),
                if speculated.is_some() {
                    // The speculative (read-only) forward did execute;
                    // only its response is withheld from the client.
                    "blocked; speculative read response discarded".to_string()
                } else {
                    "blocked before reaching the cloud".to_string()
                },
            );
        }

        // 5. Forward to the cloud. When the pre-condition passed, the
        //    overwhelmingly likely next step is the post-state snapshot,
        //    so the forward and the post probes ride in ONE pipelined
        //    batch over the backend connection: the backend answers a
        //    batch in order, so the probes still observe the post-call
        //    state, and a full round of backend round-trips disappears
        //    from the pass path. The batch layer re-sends on a stale
        //    pooled connection only before the first response commits,
        //    so the forward keeps its at-most-once delivery. A failed
        //    pre-condition (Verify mode continues here) never consults
        //    the post-state, so it keeps the plain forward.
        let mut merged_post: Option<crate::probe::Snapshot> = None;
        let response = if let Some((response, post)) = speculated.take() {
            // Sandwich batch already carried the forward and the
            // post-probes; nothing further to send. This serves the
            // pre-failed Verify path too — the forward genuinely
            // executed, and the post-state rode along.
            merged_post = Some(post);
            response
        } else if pre_ok && via_replica {
            // Replica steady state: the post-state is *predicted* from
            // the response, so the forward travels alone — no probes.
            timed(&mut obs.timings.forward, || self.cloud.call(request))
        } else if pre_ok {
            let (response, snap) = timed(&mut obs.timings.forward, || match self.snapshot_policy {
                SnapshotPolicy::Full | SnapshotPolicy::Replica => self
                    .prober
                    .snapshot_checked_after(&self.cloud, request, &target),
                SnapshotPolicy::Minimal => {
                    self.prober
                        .snapshot_scoped_after(&self.cloud, request, &target, &minimal_roots)
                }
                SnapshotPolicy::Scoped => {
                    self.prober
                        .snapshot_attrs_after(&self.cloud, request, &target, post_scope)
                }
            });
            merged_post = Some(snap);
            response
        } else {
            timed(&mut obs.timings.forward, || self.cloud.call(request))
        };
        // A *marked* transport fault means the monitor's own client
        // synthesised this response (wire failure, shed, exhausted
        // budget): the backend never answered, so there is no cloud
        // behaviour to classify, only a sick path. The marker is
        // trustworthy because `RemoteService` strips it from everything
        // that actually arrives over the wire. Bare gateway statuses
        // (502/503/504) are NOT taken at face value here — a misbehaving
        // cloud could answer 503 itself to dodge its post-condition
        // check — they fall through to the classification below, which
        // disambiguates against the post-state.
        if response.is_transport_fault() {
            if self.snapshot_policy == SnapshotPolicy::Replica {
                // The forward may or may not have executed: the replica
                // can no longer predict. Stale, not wrong.
                if let Some(replica) = replicas.get_mut(&project_id) {
                    replica.mark_stale();
                    self.metrics.replica.increment("stale");
                }
            }
            self.metrics.resilience.increment("degraded_forward");
            obs.ctx = Some(CtxSpecial::DegradedForward);
            let diagnostics = format!("forward failed in transport: {}", response.status);
            return (
                MonitorOutcome {
                    response,
                    verdict: Verdict::Degraded,
                    requirements: contract.security_requirements.clone(),
                },
                Some(trigger),
                diagnostics,
            );
        }
        obs.forwarded = true;
        obs.cloud_status = Some(response.status.0);
        let success = response.status.is_success();

        // Advance the replica's state machine from the observed
        // request/response pair — for EVERY forwarded response, whatever
        // the pre-verdict: a wrongly-accepted mutation still changed the
        // cloud, and the replica tracks the cloud, not the contract. An
        // unpredictable response (gateway status, unexpected shape)
        // marks the replica stale inside.
        if self.snapshot_policy == SnapshotPolicy::Replica {
            let replica = replicas.entry(project_id).or_default();
            let was_ready = replica.ready();
            let predicted = replica.observe_response(
                &trigger.resource,
                request.method,
                volume_id,
                snapshot_id,
                &response,
            );
            if !predicted && was_ready {
                self.metrics.replica.increment("stale");
            }
        }

        // Both the success arm (post-condition check) and the gateway
        // disambiguation below observe the post-state the same way —
        // normally straight from the merged batch above; the standalone
        // round only runs on the pre-failed (Verify) path and the
        // replica steady state (where it costs zero probes).
        let mut take_post_snapshot = || {
            if let Some(snap) = merged_post.take() {
                // The replica probe path's post snapshot is ground
                // truth after the mutation — absorb it.
                if self.snapshot_policy == SnapshotPolicy::Replica && !snap.is_partial() {
                    replicas
                        .entry(project_id)
                        .or_default()
                        .absorb(project_id, volume_id, &snap.nav);
                }
                return snap;
            }
            match self.snapshot_policy {
                SnapshotPolicy::Full => self.prober.snapshot_checked(&self.cloud, &target),
                SnapshotPolicy::Minimal => {
                    self.prober
                        .snapshot_scoped(&self.cloud, &target, &minimal_roots)
                }
                SnapshotPolicy::Scoped => {
                    self.prober.snapshot_attrs(&self.cloud, &target, post_scope)
                }
                SnapshotPolicy::Replica => {
                    let replica = replicas.entry(project_id).or_default();
                    if replica.ready() {
                        // Post-state predicted by the transition just
                        // applied; identity rides the stashed (cached)
                        // introspection. Zero probes.
                        let mut nav = replica.build_nav(project_id, volume_id, snapshot_id);
                        match &replica_identity {
                            Some(introspection) => {
                                ProjectReplica::bind_identity(&mut nav, introspection);
                            }
                            None => ProjectReplica::bind_no_identity(&mut nav),
                        }
                        crate::probe::Snapshot {
                            nav,
                            denials: Vec::new(),
                            faults: Vec::new(),
                        }
                    } else {
                        // The response was unpredictable: on-demand
                        // reconciliation serves the post-state and
                        // re-seeds the replica.
                        self.metrics.replica.increment("miss");
                        let snap = self.prober.snapshot_checked(&self.cloud, &target);
                        if !snap.is_partial() {
                            replica.absorb(project_id, volume_id, &snap.nav);
                        }
                        snap
                    }
                }
            }
        };

        // 6. Interpret the response code and check the post-condition.
        let (verdict, diagnostics) = if pre_ok && success {
            let expected = expected_success_status(request.method);
            if response.status != expected {
                (
                    Verdict::WrongStatus {
                        expected: expected.0,
                        actual: response.status.0,
                    },
                    format!("expected {expected}, got {}", response.status),
                )
            } else {
                let post_snapshot = timed(&mut obs.timings.snapshot, &mut take_post_snapshot);
                // The call already executed; only its *verification* is
                // lost. Report the post-condition as untestable rather
                // than judging a half-observed post-state.
                if post_snapshot.is_partial() {
                    self.metrics.resilience.increment("degraded_post");
                    obs.post_partial = true;
                    let fault_list = post_snapshot
                        .faults
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("; ");
                    return (
                        MonitorOutcome {
                            response,
                            verdict: Verdict::Degraded,
                            requirements: contract.security_requirements.clone(),
                        },
                        Some(trigger),
                        format!("post-snapshot faults: {fault_list}"),
                    );
                }
                let post_state = post_snapshot.nav;
                if obs.audit {
                    obs.post_env = Some(EnvSnapshot::capture(&post_state));
                }
                let post_view = match self.eval_strategy {
                    EvalStrategy::Compiled => Some(EnvView::from_navigator(&post_state, syms)),
                    EvalStrategy::Interpreter => None,
                };
                match timed(&mut obs.timings.post_check, || {
                    match (self.eval_strategy, &post_view) {
                        (EvalStrategy::Compiled, Some(view)) => {
                            compiled.begin_post(scratch);
                            compiled.evaluate_post(syms, view, &pre_view, scratch)
                        }
                        _ => contract.evaluate_post(&post_state, &pre_state),
                    }
                }) {
                    Ok(true) => {
                        // The paper's stateful view: report which model
                        // state the system is in after the call. Skipped
                        // entirely when state reporting is off — a lean
                        // snapshot does not cover the invariants' reads.
                        let states = if !self.report_states {
                            Vec::new()
                        } else {
                            timed(&mut obs.timings.post_check, || {
                                match (self.eval_strategy, &post_view) {
                                    (EvalStrategy::Compiled, Some(view)) => compiled
                                        .matching_state_indices_post(syms, view, &pre_view, scratch)
                                        .map(|idxs| {
                                            idxs.iter()
                                                .map(|&i| self.compiled.state_names()[i].clone())
                                                .collect::<Vec<_>>()
                                        })
                                        .unwrap_or_default(),
                                    _ => self
                                        .contracts
                                        .states_matching(&post_state)
                                        .unwrap_or_default(),
                                }
                            })
                        };
                        let diagnostics = if states.is_empty() {
                            String::new()
                        } else {
                            format!("state: {}", states.join(", "))
                        };
                        (Verdict::Pass, diagnostics)
                    }
                    Ok(false) => (
                        Verdict::PostViolation,
                        format!("post-condition of {trigger} violated"),
                    ),
                    Err(e) => (
                        Verdict::ContractError,
                        format!("post-condition evaluation failed: {e}"),
                    ),
                }
            }
        } else if pre_ok && response.status.is_gateway_error() {
            // An authorized request came back with a bare 502/503/504
            // from the wire. Two indistinguishable-by-status stories:
            // an intermediary answered for a sick backend (transport
            // weather), or the cloud itself masked an executed call
            // behind a 5xx to dodge its post-condition check. The
            // post-state disambiguates: a post-condition that HOLDS
            // means the call ran — a status-lying cloud, a violation.
            // Anything else is indistinguishable from weather and
            // degrades (counted, never a false violation).
            let post_snapshot = timed(&mut obs.timings.snapshot, &mut take_post_snapshot);
            let executed = if post_snapshot.is_partial() {
                obs.post_partial = true;
                None
            } else {
                let post_state = post_snapshot.nav;
                if obs.audit {
                    obs.post_env = Some(EnvSnapshot::capture(&post_state));
                }
                let holds = timed(&mut obs.timings.post_check, || match self.eval_strategy {
                    EvalStrategy::Compiled => {
                        let post_view = EnvView::from_navigator(&post_state, syms);
                        compiled.begin_post(scratch);
                        compiled.evaluate_post(syms, &post_view, &pre_view, scratch)
                    }
                    EvalStrategy::Interpreter => contract.evaluate_post(&post_state, &pre_state),
                });
                // An evaluation error cannot convict the cloud: treat
                // it as not-proven-executed and degrade below.
                Some(holds.unwrap_or(false))
            };
            if executed == Some(true) {
                (
                    Verdict::WrongStatus {
                        expected: expected_success_status(request.method).0,
                        actual: response.status.0,
                    },
                    format!(
                        "cloud answered {} yet the post-condition holds: \
                         an executed call behind a masking gateway status",
                        response.status
                    ),
                )
            } else {
                self.metrics.resilience.increment("degraded_forward");
                let diagnostics = if executed.is_none() {
                    format!(
                        "forward answered {} and the post-state is unobservable",
                        response.status
                    )
                } else {
                    format!(
                        "forward answered gateway status {}; post-state consistent with no execution",
                        response.status
                    )
                };
                return (
                    MonitorOutcome {
                        response,
                        verdict: Verdict::Degraded,
                        requirements: contract.security_requirements.clone(),
                    },
                    Some(trigger),
                    diagnostics,
                );
            }
        } else if pre_ok {
            (
                Verdict::WrongDenial,
                format!("authorized request denied with {}", response.status),
            )
        } else if success {
            (
                Verdict::WrongAcceptance,
                format!(
                    "unauthorized/disallowed request succeeded with {}",
                    response.status
                ),
            )
        } else {
            (Verdict::Pass, "correctly denied".to_string())
        };

        // A denied monitor probe means the cloud refused admin-authority
        // reads — report it even when the request itself looked correctly
        // handled (otherwise a read-denying mutant hides from the oracle).
        let (verdict, diagnostics) = if verdict == Verdict::Pass && !probe_errors.is_empty() {
            (
                Verdict::WrongDenial,
                format!("monitor probes denied: {}", probe_errors.join("; ")),
            )
        } else {
            (verdict, diagnostics)
        };

        // A violation with no enabled pre clause (e.g. WrongAcceptance:
        // the request should have been denied outright) would otherwise
        // carry no requirement ids at all. Attribute the trigger
        // contract's requirements so the verdict stays traceable to
        // Table I — the kill matrix keys its cells on exactly this.
        let requirements = if verdict.is_violation() && requirements.is_empty() {
            contract.security_requirements.clone()
        } else {
            requirements
        };

        // 7. In enforce mode, violations become an invalid response that
        //    names the faulty behaviour (Figure 2).
        let response = if self.mode == Mode::Enforce && verdict.is_violation() {
            RestResponse::error(
                StatusCode::BAD_GATEWAY,
                format!("cloud monitor verdict for {trigger}: {verdict}"),
            )
        } else {
            response
        };

        (
            MonitorOutcome {
                response,
                verdict,
                requirements,
            },
            Some(trigger),
            diagnostics,
        )
    }
}

impl<S: SharedRestService> SharedRestService for CloudMonitor<S> {
    fn call(&self, request: &RestRequest) -> RestResponse {
        self.process(request).response
    }
}

/// The success status the uniform interface specifies per method
/// (Listing 2 checks `response.code == 204` for DELETE).
#[must_use]
pub fn expected_success_status(method: HttpMethod) -> StatusCode {
    match method {
        HttpMethod::Get | HttpMethod::Put => StatusCode::OK,
        HttpMethod::Post => StatusCode::CREATED,
        HttpMethod::Delete => StatusCode::NO_CONTENT,
    }
}

/// Convenience: generate the monitor for the paper's Cinder scenario
/// (Figure 3 models, Figure 3 guards carrying Table I authorization).
///
/// # Errors
///
/// Propagates [`MonitorBuildError`] from [`CloudMonitor::generate`].
pub fn cinder_monitor<S: SharedRestService>(
    cloud: S,
) -> Result<CloudMonitor<S>, MonitorBuildError> {
    CloudMonitor::generate(
        &cm_model::cinder::resource_model(),
        &cm_model::cinder::behavioral_model(),
        None,
        cloud,
    )
}

/// Convenience: the extended Cinder scenario — volumes *and* snapshots,
/// two behavioural state machines over one resource model.
///
/// # Errors
///
/// Propagates [`MonitorBuildError`] from [`CloudMonitor::generate_multi`].
pub fn cinder_monitor_extended<S: SharedRestService>(
    cloud: S,
) -> Result<CloudMonitor<S>, MonitorBuildError> {
    CloudMonitor::generate_multi(
        &cm_model::cinder::extended_resource_model(),
        &[
            &cm_model::cinder::extended_behavioral_model(),
            &cm_model::cinder::snapshot_behavioral_model(),
        ],
        None,
        cloud,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_cloudsim::{Fault, FaultPlan, PrivateCloud};
    use cm_rbac::Rule;
    use std::collections::HashMap;

    struct Harness {
        monitor: CloudMonitor<PrivateCloud>,
        pid: u64,
        tokens: HashMap<&'static str, String>,
    }

    fn harness(mode: Mode, faults: FaultPlan) -> Harness {
        let cloud = PrivateCloud::my_project().with_faults(faults);
        let pid = cloud.project_id();
        let mut tokens = HashMap::new();
        for user in ["alice", "bob", "carol"] {
            let t = cloud.issue_token(user, &format!("{user}-pw")).unwrap();
            tokens.insert(user, t.token);
        }
        let mut monitor = cinder_monitor(cloud).unwrap().mode(mode);
        monitor.authenticate("alice", "alice-pw").unwrap();
        Harness {
            monitor,
            pid,
            tokens,
        }
    }

    fn volume_body() -> Json {
        Json::object(vec![(
            "volume",
            Json::object(vec![
                ("name", Json::Str("v".into())),
                ("size", Json::Int(1)),
            ]),
        )])
    }

    impl Harness {
        fn seed_volume(&mut self) -> u64 {
            let pid = self.pid;
            self.monitor
                .cloud_mut()
                .state_mut()
                .create_volume(pid, "seed", 5, false)
                .unwrap()
                .id
        }

        fn send(&mut self, user: &str, method: HttpMethod, path: String) -> MonitorOutcome {
            let req = RestRequest::new(method, path).auth_token(&self.tokens[user]);
            let req = if method == HttpMethod::Post || method == HttpMethod::Put {
                req.json(volume_body())
            } else {
                req
            };
            self.monitor.process(&req)
        }
    }

    #[test]
    fn enforce_blocks_unauthorized_delete_before_cloud() {
        let mut h = harness(Mode::Enforce, FaultPlan::none());
        let vid = h.seed_volume();
        let pid = h.pid;
        let outcome = h.send(
            "carol",
            HttpMethod::Delete,
            format!("/v3/{pid}/volumes/{vid}"),
        );
        assert_eq!(outcome.verdict, Verdict::PreBlocked);
        assert_eq!(outcome.response.status, StatusCode::PRECONDITION_FAILED);
        // The volume is still there: the cloud never saw the request.
        assert_eq!(
            h.monitor
                .cloud()
                .state()
                .project(pid)
                .unwrap()
                .volumes
                .len(),
            1
        );
        // Requirement 1.4 was the one at stake.
        assert!(outcome.requirements.contains(&"1.4".to_string()));
    }

    #[test]
    fn enforce_passes_authorized_delete() {
        let mut h = harness(Mode::Enforce, FaultPlan::none());
        let vid = h.seed_volume();
        let pid = h.pid;
        let outcome = h.send(
            "alice",
            HttpMethod::Delete,
            format!("/v3/{pid}/volumes/{vid}"),
        );
        assert_eq!(outcome.verdict, Verdict::Pass);
        assert_eq!(outcome.response.status, StatusCode::NO_CONTENT);
        assert!(h
            .monitor
            .cloud()
            .state()
            .project(pid)
            .unwrap()
            .volumes
            .is_empty());
    }

    #[test]
    fn authorized_post_and_get_pass() {
        let mut h = harness(Mode::Enforce, FaultPlan::none());
        let pid = h.pid;
        let post = h.send("bob", HttpMethod::Post, format!("/v3/{pid}/volumes"));
        assert_eq!(post.verdict, Verdict::Pass, "{:?}", h.monitor.log().last());
        assert_eq!(post.response.status, StatusCode::CREATED);
        let get = h.send("carol", HttpMethod::Get, format!("/v3/{pid}/volumes/1"));
        assert_eq!(get.verdict, Verdict::Pass, "{:?}", h.monitor.log().last());
        let put = h.send("bob", HttpMethod::Put, format!("/v3/{pid}/volumes/1"));
        assert_eq!(put.verdict, Verdict::Pass, "{:?}", h.monitor.log().last());
    }

    #[test]
    fn observe_detects_wrong_acceptance_on_policy_mutant() {
        let plan = FaultPlan::single(Fault::PolicyOverride {
            action: "volume:delete".into(),
            rule: Rule::any_role(["admin", "member"]),
        });
        let mut h = harness(Mode::Observe, plan);
        let vid = h.seed_volume();
        let pid = h.pid;
        let outcome = h.send(
            "bob",
            HttpMethod::Delete,
            format!("/v3/{pid}/volumes/{vid}"),
        );
        assert_eq!(outcome.verdict, Verdict::WrongAcceptance);
    }

    #[test]
    fn observe_detects_wrong_denial_on_inverted_auth() {
        let plan = FaultPlan::single(Fault::InvertAuthCheck {
            action: "volume:get".into(),
        });
        let mut h = harness(Mode::Observe, plan);
        let vid = h.seed_volume();
        let pid = h.pid;
        let outcome = h.send("alice", HttpMethod::Get, format!("/v3/{pid}/volumes/{vid}"));
        assert_eq!(outcome.verdict, Verdict::WrongDenial);
    }

    #[test]
    fn observe_detects_post_violation_on_lost_update() {
        let plan = FaultPlan::single(Fault::DropStateChange {
            action: "volume:post".into(),
        });
        let mut h = harness(Mode::Observe, plan);
        let pid = h.pid;
        let outcome = h.send("alice", HttpMethod::Post, format!("/v3/{pid}/volumes"));
        assert_eq!(outcome.verdict, Verdict::PostViolation);
    }

    #[test]
    fn observe_detects_wrong_status_code() {
        let plan = FaultPlan::single(Fault::WrongStatusCode {
            action: "volume:delete".into(),
            code: 200,
        });
        let mut h = harness(Mode::Observe, plan);
        let vid = h.seed_volume();
        let pid = h.pid;
        let outcome = h.send(
            "alice",
            HttpMethod::Delete,
            format!("/v3/{pid}/volumes/{vid}"),
        );
        assert_eq!(
            outcome.verdict,
            Verdict::WrongStatus {
                expected: 204,
                actual: 200
            }
        );
    }

    #[test]
    fn status_masking_gateway_code_is_a_violation_when_the_call_executed() {
        // The evasion header-scrubbing alone cannot stop: the cloud
        // *executes* the DELETE but answers a bare 503, hoping to be
        // written off as transport weather. The post-snapshot betrays
        // it — the volume is gone, so the post-condition holds and the
        // verdict is a WrongStatus violation, never Degraded.
        let plan = FaultPlan::single(Fault::WrongStatusCode {
            action: "volume:delete".into(),
            code: 503,
        });
        let mut h = harness(Mode::Observe, plan);
        let vid = h.seed_volume();
        let pid = h.pid;
        let outcome = h.send(
            "alice",
            HttpMethod::Delete,
            format!("/v3/{pid}/volumes/{vid}"),
        );
        assert_eq!(
            outcome.verdict,
            Verdict::WrongStatus {
                expected: 204,
                actual: 503
            }
        );
        assert!(outcome.verdict.is_violation());
    }

    #[test]
    fn enforce_wraps_violations_in_invalid_response() {
        let plan = FaultPlan::single(Fault::DropStateChange {
            action: "volume:post".into(),
        });
        let mut h = harness(Mode::Enforce, plan);
        let pid = h.pid;
        let outcome = h.send("alice", HttpMethod::Post, format!("/v3/{pid}/volumes"));
        assert_eq!(outcome.verdict, Verdict::PostViolation);
        assert_eq!(outcome.response.status, StatusCode::BAD_GATEWAY);
        assert!(outcome
            .response
            .error_message()
            .unwrap()
            .contains("post-violation"));
    }

    #[test]
    fn identity_api_passes_through_unmodelled() {
        let h = harness(Mode::Enforce, FaultPlan::none());
        let outcome = h.monitor.process(
            &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![
                (
                    "auth",
                    Json::object(vec![
                        ("user", Json::Str("carol".into())),
                        ("password", Json::Str("carol-pw".into())),
                    ]),
                ),
            ])),
        );
        assert_eq!(outcome.verdict, Verdict::NotModelled);
        assert_eq!(outcome.response.status, StatusCode::CREATED);
    }

    #[test]
    fn method_not_in_interface_is_405_in_enforce() {
        let mut h = harness(Mode::Enforce, FaultPlan::none());
        let pid = h.pid;
        // POST on a volume item is not part of the derived interface.
        let outcome = h.send("alice", HttpMethod::Post, format!("/v3/{pid}/volumes/1"));
        assert_eq!(outcome.response.status, StatusCode::METHOD_NOT_ALLOWED);
        assert!(outcome.response.header_value("Allow").is_some());
    }

    #[test]
    fn log_and_coverage_accumulate() {
        let mut h = harness(Mode::Enforce, FaultPlan::none());
        let vid = h.seed_volume();
        let pid = h.pid;
        h.send("alice", HttpMethod::Get, format!("/v3/{pid}/volumes/{vid}"));
        h.send(
            "carol",
            HttpMethod::Delete,
            format!("/v3/{pid}/volumes/{vid}"),
        );
        assert_eq!(h.monitor.log().len(), 2);
        let cov = h.monitor.coverage();
        assert_eq!(cov.total_requests(), 2);
        assert!(cov.requirement("1.1").unwrap().exercised >= 1);
        // 1.2 and 1.3 not yet exercised.
        assert!(cov.unexercised().iter().any(|r| r == "1.2"));
    }

    #[test]
    fn missing_token_is_blocked_in_enforce() {
        let mut h = harness(Mode::Enforce, FaultPlan::none());
        let vid = h.seed_volume();
        let pid = h.pid;
        let outcome = h.monitor.process(&RestRequest::new(
            HttpMethod::Delete,
            format!("/v3/{pid}/volumes/{vid}"),
        ));
        assert_eq!(outcome.verdict, Verdict::PreBlocked);
    }

    #[test]
    fn expected_status_per_method() {
        assert_eq!(expected_success_status(HttpMethod::Get), StatusCode::OK);
        assert_eq!(expected_success_status(HttpMethod::Put), StatusCode::OK);
        assert_eq!(
            expected_success_status(HttpMethod::Post),
            StatusCode::CREATED
        );
        assert_eq!(
            expected_success_status(HttpMethod::Delete),
            StatusCode::NO_CONTENT
        );
    }

    #[test]
    fn quota_overflow_attempt_is_blocked() {
        let mut h = harness(Mode::Enforce, FaultPlan::none());
        let pid = h.pid;
        for _ in 0..cm_cloudsim::DEFAULT_VOLUME_QUOTA {
            let ok = h.send("alice", HttpMethod::Post, format!("/v3/{pid}/volumes"));
            assert_eq!(ok.verdict, Verdict::Pass, "{:?}", h.monitor.log().last());
        }
        let over = h.send("alice", HttpMethod::Post, format!("/v3/{pid}/volumes"));
        assert_eq!(over.verdict, Verdict::PreBlocked);
    }

    /// Build a monitor over a freshly seeded fixture cloud with the
    /// speculative-read sandwich toggled, plus tokens for every fixture
    /// user (including the unauthorized `mallory`).
    fn speculative_fixture(mode: Mode, speculative: bool) -> Harness {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let mut tokens = HashMap::new();
        for user in ["alice", "bob", "carol", "mallory"] {
            let t = cloud.issue_token(user, &format!("{user}-pw")).unwrap();
            tokens.insert(user, t.token);
        }
        let mut monitor = cinder_monitor(cloud)
            .unwrap()
            .mode(mode)
            .speculative_reads(speculative);
        monitor.authenticate("alice", "alice-pw").unwrap();
        let mut h = Harness {
            monitor,
            pid,
            tokens,
        };
        h.seed_volume();
        h
    }

    /// The speculative sandwich must be invisible to clients: for every
    /// request class in the bench mix, verdict, status, and body match
    /// the strict check-then-forward exchange exactly.
    #[test]
    fn speculative_reads_match_sequential_outcomes() {
        for mode in [Mode::Enforce, Mode::Observe] {
            let mut seq = speculative_fixture(mode, false);
            let mut spec = speculative_fixture(mode, true);
            let pid = seq.pid;
            let probes = [
                ("alice", HttpMethod::Get, format!("/v3/{pid}/volumes/1")),
                ("carol", HttpMethod::Get, format!("/v3/{pid}/volumes/1")),
                ("mallory", HttpMethod::Get, format!("/v3/{pid}/volumes/1")),
                ("carol", HttpMethod::Delete, format!("/v3/{pid}/volumes/1")),
                ("alice", HttpMethod::Get, format!("/v3/{pid}/volumes")),
                ("carol", HttpMethod::Get, "/unmodelled/x".to_string()),
            ];
            for (user, method, path) in probes {
                let a = seq.send(user, method, path.clone());
                let b = spec.send(user, method, path.clone());
                assert_eq!(a.verdict, b.verdict, "{mode:?} {user} {method:?} {path}");
                assert_eq!(
                    a.response.status, b.response.status,
                    "{mode:?} {user} {method:?} {path}"
                );
                assert_eq!(
                    a.response.body, b.response.body,
                    "{mode:?} {user} {method:?} {path}"
                );
            }
        }
    }

    /// A pre-blocked speculative GET still answers 412 and the
    /// speculatively fetched cloud response is discarded, never leaked.
    #[test]
    fn speculative_preblocked_get_discards_cloud_response() {
        let mut h = speculative_fixture(Mode::Enforce, true);
        let pid = h.pid;
        let outcome = h.send("mallory", HttpMethod::Get, format!("/v3/{pid}/volumes/1"));
        assert_eq!(outcome.verdict, Verdict::PreBlocked);
        assert_eq!(outcome.response.status, StatusCode::PRECONDITION_FAILED);
        let record = h.monitor.log().last().unwrap().clone();
        assert!(
            record
                .diagnostics
                .contains("speculative read response discarded"),
            "{record:?}"
        );
    }

    /// Mutating methods must never be speculated: the strict order is a
    /// safety property, not a performance choice (RFC 7231 §4.2.1 only
    /// licenses reordering safe methods).
    #[test]
    fn speculative_never_applies_to_mutating_methods() {
        let mut h = speculative_fixture(Mode::Enforce, true);
        let pid = h.pid;
        let outcome = h.send("carol", HttpMethod::Delete, format!("/v3/{pid}/volumes/1"));
        assert_eq!(outcome.verdict, Verdict::PreBlocked);
        // The volume survives: the DELETE never reached the cloud even
        // with speculation enabled.
        assert_eq!(
            h.monitor
                .cloud()
                .state()
                .project(pid)
                .unwrap()
                .volumes
                .len(),
            1
        );
        let record = h.monitor.log().last().unwrap().clone();
        assert!(
            record
                .diagnostics
                .contains("blocked before reaching the cloud"),
            "{record:?}"
        );
    }

    /// Instrumented backend proving the sandwich collapses an authorized
    /// GET to a single pipelined batch (pre-probes + forward +
    /// post-probes) with zero standalone calls, while the sequential
    /// exchange needs two batches plus a lone forward.
    struct Tally {
        inner: PrivateCloud,
        calls: std::sync::atomic::AtomicU64,
        batches: std::sync::atomic::AtomicU64,
        batched: std::sync::atomic::AtomicU64,
    }

    impl SharedRestService for Tally {
        fn call(&self, request: &RestRequest) -> RestResponse {
            self.calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.call(request)
        }
        fn call_batch(&self, requests: &[RestRequest]) -> Vec<RestResponse> {
            self.batches
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.batched
                .fetch_add(requests.len() as u64, std::sync::atomic::Ordering::Relaxed);
            requests.iter().map(|r| self.inner.call(r)).collect()
        }
    }

    impl Tally {
        fn reset(&self) -> (u64, u64, u64) {
            use std::sync::atomic::Ordering::Relaxed;
            (
                self.calls.swap(0, Relaxed),
                self.batches.swap(0, Relaxed),
                self.batched.swap(0, Relaxed),
            )
        }
    }

    #[test]
    fn speculative_get_costs_one_backend_batch() {
        let inner = PrivateCloud::my_project();
        let pid = inner.project_id();
        let alice = inner.issue_token("alice", "alice-pw").unwrap().token;
        inner
            .state_mut()
            .create_volume(pid, "seed", 5, false)
            .unwrap();
        let cloud = Tally {
            inner,
            calls: std::sync::atomic::AtomicU64::new(0),
            batches: std::sync::atomic::AtomicU64::new(0),
            batched: std::sync::atomic::AtomicU64::new(0),
        };
        let mut monitor = cinder_monitor(cloud)
            .unwrap()
            .mode(Mode::Enforce)
            .snapshot_policy(SnapshotPolicy::Scoped)
            .report_states(false)
            .speculative_reads(true);
        monitor.authenticate("alice", "alice-pw").unwrap();
        let get =
            RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1")).auth_token(&alice);
        // Warm the identity cache so the steady state is measured.
        assert_eq!(monitor.process(&get).verdict, Verdict::Pass);
        monitor.cloud().reset();
        let outcome = monitor.process(&get);
        assert_eq!(outcome.verdict, Verdict::Pass);
        let (calls, batches, batched) = monitor.cloud().reset();
        assert_eq!(
            (calls, batches),
            (0, 1),
            "speculative GET must be one pipelined batch, no lone calls"
        );
        // pre-probes + forward + post-probes travel together.
        assert!(batched >= 3, "batch too small: {batched}");
    }
}

#[cfg(test)]
mod snapshot_policy_tests {
    use super::*;
    use cm_cloudsim::PrivateCloud;

    #[test]
    fn minimal_policy_gives_same_verdicts_on_cinder() {
        // The Cinder contracts reference all four roots, so Minimal and
        // Full must agree everywhere (Minimal just proves no regression).
        // Scoped prunes further — to attribute level — and must still
        // agree because the compiler records every attribute a contract
        // can read.
        for policy in [
            SnapshotPolicy::Full,
            SnapshotPolicy::Minimal,
            SnapshotPolicy::Scoped,
        ] {
            let cloud = PrivateCloud::my_project();
            let pid = cloud.project_id();
            let admin = cloud.issue_token("alice", "alice-pw").unwrap();
            let carol = cloud.issue_token("carol", "carol-pw").unwrap();
            let mut monitor = cinder_monitor(cloud)
                .unwrap()
                .mode(Mode::Enforce)
                .snapshot_policy(policy);
            monitor.authenticate("alice", "alice-pw").unwrap();

            let create = monitor.process(
                &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
                    .auth_token(&admin.token)
                    .json(Json::object(vec![(
                        "volume",
                        Json::object(vec![("name", Json::Str("v".into()))]),
                    )])),
            );
            assert_eq!(create.verdict, Verdict::Pass, "{policy:?}");
            let blocked = monitor.process(
                &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
                    .auth_token(&carol.token),
            );
            assert_eq!(blocked.verdict, Verdict::PreBlocked, "{policy:?}");
            let deleted = monitor.process(
                &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
                    .auth_token(&admin.token),
            );
            assert_eq!(deleted.verdict, Verdict::Pass, "{policy:?}");
        }
    }

    #[test]
    fn scoped_snapshot_still_catches_mutated_attributes() {
        // The pre()-reference analysis must keep every attribute a
        // post-condition reads inside the scoped snapshot: a cloud that
        // reports DELETE success but silently keeps the volume
        // (DropStateChange) mutates `project.volumes` relative to the
        // claimed transition, and the Scoped policy has to notice it
        // exactly like Full does.
        use cm_cloudsim::{Fault, FaultPlan};
        for policy in [SnapshotPolicy::Full, SnapshotPolicy::Scoped] {
            let cloud =
                PrivateCloud::my_project().with_faults(FaultPlan::single(Fault::DropStateChange {
                    action: "volume:delete".into(),
                }));
            let pid = cloud.project_id();
            let vid = cloud
                .state_mut()
                .create_volume(pid, "v", 1, false)
                .unwrap()
                .id;
            let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
            let mut monitor = cinder_monitor(cloud)
                .unwrap()
                .mode(Mode::Observe)
                .snapshot_policy(policy);
            monitor.authenticate("alice", "alice-pw").unwrap();
            let outcome = monitor.process(
                &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                    .auth_token(&admin),
            );
            assert_eq!(outcome.verdict, Verdict::PostViolation, "{policy:?}");
        }
    }

    #[test]
    fn scoped_snapshot_still_catches_quota_overflow() {
        // `quota_sets.volume` is only read by the CREATE guard; the
        // attribute-level scope must still probe it so an over-quota
        // create is blocked under Scoped just as under Full.
        for policy in [SnapshotPolicy::Full, SnapshotPolicy::Scoped] {
            let cloud = PrivateCloud::my_project();
            let pid = cloud.project_id();
            let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
            let mut monitor = cinder_monitor(cloud)
                .unwrap()
                .mode(Mode::Enforce)
                .snapshot_policy(policy);
            monitor.authenticate("alice", "alice-pw").unwrap();
            let create = |name: &str| {
                RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
                    .auth_token(&admin)
                    .json(Json::object(vec![(
                        "volume",
                        Json::object(vec![("name", Json::Str(name.into()))]),
                    )]))
            };
            for i in 0..cm_cloudsim::DEFAULT_VOLUME_QUOTA {
                let ok = monitor.process(&create(&format!("v{i}")));
                assert_eq!(ok.verdict, Verdict::Pass, "{policy:?}");
            }
            let over = monitor.process(&create("overflow"));
            assert_eq!(over.verdict, Verdict::PreBlocked, "{policy:?}");
        }
    }

    #[test]
    fn compiled_and_interpreter_strategies_agree_step_by_step() {
        // Run the same request script through two monitors that differ
        // only in evaluation strategy, comparing every outcome field the
        // interpreter acts as the differential oracle for the compiler.
        let build = |strategy: EvalStrategy| {
            let cloud = PrivateCloud::my_project();
            let pid = cloud.project_id();
            let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
            let carol = cloud.issue_token("carol", "carol-pw").unwrap().token;
            let mut monitor = cinder_monitor(cloud)
                .unwrap()
                .mode(Mode::Observe)
                .eval_strategy(strategy);
            monitor.authenticate("alice", "alice-pw").unwrap();
            (monitor, pid, admin, carol)
        };
        let (compiled, pid, admin, carol) = build(EvalStrategy::Compiled);
        let (interp, _, _, _) = build(EvalStrategy::Interpreter);
        let script: Vec<RestRequest> = vec![
            RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
                .auth_token(&admin)
                .json(Json::object(vec![(
                    "volume",
                    Json::object(vec![("name", Json::Str("v".into()))]),
                )])),
            RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1")).auth_token(&admin),
            RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&carol),
            RestRequest::new(HttpMethod::Put, format!("/v3/{pid}/volumes/1"))
                .auth_token(&admin)
                .json(Json::object(vec![(
                    "volume",
                    Json::object(vec![("name", Json::Str("v2".into()))]),
                )])),
            RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&admin),
            RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/999"))
                .auth_token(&admin),
        ];
        for req in &script {
            let a = compiled.process(req);
            let b = interp.process(req);
            assert_eq!(a.verdict, b.verdict, "{req:?}");
            assert_eq!(a.requirements, b.requirements, "{req:?}");
            assert_eq!(a.response.status, b.response.status, "{req:?}");
            let da = compiled.log().last().unwrap().diagnostics.clone();
            let db = interp.log().last().unwrap().diagnostics.clone();
            assert_eq!(da, db, "{req:?}");
        }
    }
}

#[cfg(test)]
mod extended_model_tests {
    use super::*;
    use cm_cloudsim::PrivateCloud;

    struct Ext {
        monitor: CloudMonitor<PrivateCloud>,
        pid: u64,
        vid: u64,
        admin: String,
        carol: String,
    }

    fn ext() -> Ext {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
        let carol = cloud.issue_token("carol", "carol-pw").unwrap().token;
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v", 1, false)
            .unwrap()
            .id;
        let mut monitor = cinder_monitor_extended(cloud).unwrap().mode(Mode::Enforce);
        monitor.authenticate("alice", "alice-pw").unwrap();
        Ext {
            monitor,
            pid,
            vid,
            admin,
            carol,
        }
    }

    fn snap_body() -> Json {
        Json::object(vec![(
            "snapshot",
            Json::object(vec![("name", Json::Str("s".into()))]),
        )])
    }

    #[test]
    fn extended_monitor_covers_both_machines() {
        let e = ext();
        assert_eq!(e.monitor.contracts().contracts.len(), 4 + 3);
        let mut reqs = e.monitor.contracts().covered_requirements();
        reqs.sort();
        assert_eq!(reqs, vec!["1.1", "1.2", "1.3", "1.4", "2.1", "2.2", "2.3"]);
    }

    #[test]
    fn snapshot_lifecycle_through_monitor() {
        let e = ext();
        let (pid, vid) = (e.pid, e.vid);

        // admin creates a snapshot (SecReq 2.2) — volume_without_snapshot
        // -> volume_with_snapshot.
        let create = e.monitor.process(
            &RestRequest::new(
                HttpMethod::Post,
                format!("/v3/{pid}/volumes/{vid}/snapshots"),
            )
            .auth_token(&e.admin)
            .json(snap_body()),
        );
        assert_eq!(
            create.verdict,
            Verdict::Pass,
            "{:?}",
            e.monitor.log().last()
        );
        assert!(create.requirements.contains(&"2.2".to_string()));

        // carol reads it (SecReq 2.1).
        let get = e.monitor.process(
            &RestRequest::new(
                HttpMethod::Get,
                format!("/v3/{pid}/volumes/{vid}/snapshots/1"),
            )
            .auth_token(&e.carol),
        );
        assert_eq!(get.verdict, Verdict::Pass, "{:?}", e.monitor.log().last());

        // carol may not delete it (SecReq 2.3) — blocked pre-cloud.
        let blocked = e.monitor.process(
            &RestRequest::new(
                HttpMethod::Delete,
                format!("/v3/{pid}/volumes/{vid}/snapshots/1"),
            )
            .auth_token(&e.carol),
        );
        assert_eq!(blocked.verdict, Verdict::PreBlocked);

        // admin deletes it — back to volume_without_snapshot.
        let deleted = e.monitor.process(
            &RestRequest::new(
                HttpMethod::Delete,
                format!("/v3/{pid}/volumes/{vid}/snapshots/1"),
            )
            .auth_token(&e.admin),
        );
        assert_eq!(
            deleted.verdict,
            Verdict::Pass,
            "{:?}",
            e.monitor.log().last()
        );
    }

    #[test]
    fn volume_contracts_still_enforced_in_extended_monitor() {
        let e = ext();
        let (pid, vid) = (e.pid, e.vid);
        let blocked = e.monitor.process(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&e.carol),
        );
        assert_eq!(blocked.verdict, Verdict::PreBlocked);
        let deleted = e.monitor.process(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&e.admin),
        );
        assert_eq!(
            deleted.verdict,
            Verdict::Pass,
            "{:?}",
            e.monitor.log().last()
        );
    }

    #[test]
    fn snapshot_mutant_is_detected_in_observe_mode() {
        use cm_cloudsim::{Fault, FaultPlan};
        let cloud =
            PrivateCloud::my_project().with_faults(FaultPlan::single(Fault::SkipAuthCheck {
                action: "snapshot:delete".into(),
            }));
        let pid = cloud.project_id();
        let carol = cloud.issue_token("carol", "carol-pw").unwrap().token;
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v", 1, false)
            .unwrap()
            .id;
        cloud.state_mut().create_snapshot(pid, vid, "s").unwrap();
        let mut monitor = cinder_monitor_extended(cloud).unwrap().mode(Mode::Observe);
        monitor.authenticate("alice", "alice-pw").unwrap();
        let outcome = monitor.process(
            &RestRequest::new(
                HttpMethod::Delete,
                format!("/v3/{pid}/volumes/{vid}/snapshots/1"),
            )
            .auth_token(&carol),
        );
        assert_eq!(outcome.verdict, Verdict::WrongAcceptance);
    }

    #[test]
    fn duplicate_triggers_across_machines_rejected() {
        let cloud = PrivateCloud::my_project();
        let m = cm_model::cinder::behavioral_model();
        let err = CloudMonitor::generate_multi(
            &cm_model::cinder::resource_model(),
            &[&m, &m],
            None,
            cloud,
        )
        .unwrap_err();
        assert!(err.message.contains("more than one state machine"));
    }
}

impl<S: SharedRestService> CloudMonitor<S> {
    /// Export the monitor log as JSON — "the invocation results can be
    /// logged for further fault localization" (Section III-B). Entries
    /// are in causal order (sorted by `seq`), so the export replays a
    /// concurrent run deterministically per resource.
    #[must_use]
    pub fn log_json(&self) -> Json {
        Json::Array(
            self.log()
                .iter()
                .map(|r| {
                    Json::object(vec![
                        ("seq", Json::Int(r.seq as i64)),
                        ("method", Json::Str(r.method.to_string())),
                        ("path", Json::Str(r.path.clone())),
                        (
                            "trigger",
                            match &r.trigger {
                                Some(t) => Json::Str(t.to_string()),
                                None => Json::Null,
                            },
                        ),
                        ("verdict", Json::Str(r.verdict.to_string())),
                        ("status", Json::Int(i64::from(r.status.0))),
                        (
                            "requirements",
                            Json::Array(
                                r.requirements
                                    .iter()
                                    .map(|x| Json::Str(x.clone()))
                                    .collect(),
                            ),
                        ),
                        ("diagnostics", Json::Str(r.diagnostics.clone())),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod log_json_tests {
    use super::*;
    use cm_cloudsim::PrivateCloud;

    #[test]
    fn log_exports_as_json() {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let carol = cloud.issue_token("carol", "carol-pw").unwrap().token;
        cloud.state_mut().create_volume(pid, "v", 1, false).unwrap();
        let mut monitor = cinder_monitor(cloud).unwrap();
        monitor.authenticate("alice", "alice-pw").unwrap();
        monitor.process(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
                .auth_token(&carol),
        );
        let json = monitor.log_json();
        let entries = json.as_array().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("method").unwrap().as_str(), Some("DELETE"));
        assert_eq!(e.get("verdict").unwrap().as_str(), Some("pre-blocked"));
        assert_eq!(e.get("status").unwrap().as_int(), Some(412));
        assert_eq!(e.get("trigger").unwrap().as_str(), Some("DELETE(volume)"));
        // Round-trips through the JSON parser.
        let text = json.to_compact_string();
        assert_eq!(cm_rest::parse_json(&text).unwrap(), json);
    }

    /// A cloud wrapper that injects transport faults into model-state
    /// probes (GETs under `/v3`) once armed; everything else passes
    /// through to the real simulated cloud.
    struct FaultyProbes {
        inner: PrivateCloud,
        armed: std::sync::atomic::AtomicBool,
    }

    impl SharedRestService for FaultyProbes {
        fn call(&self, request: &RestRequest) -> RestResponse {
            if self.armed.load(Ordering::Relaxed)
                && request.method == HttpMethod::Get
                && request.path.starts_with("/v3")
            {
                return RestResponse::transport_fault(
                    StatusCode::BAD_GATEWAY,
                    "injected probe fault",
                );
            }
            self.inner.call(request)
        }
    }

    /// An Enforce-mode monitor over [`FaultyProbes`] with one seeded
    /// volume, armed so every model-state probe faults from here on.
    fn degraded_fixture() -> (CloudMonitor<FaultyProbes>, u64, u64, String) {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v", 1, false)
            .unwrap()
            .id;
        let wrapped = FaultyProbes {
            inner: cloud,
            armed: std::sync::atomic::AtomicBool::new(false),
        };
        let mut monitor = cinder_monitor(wrapped).unwrap().mode(Mode::Enforce);
        monitor.authenticate("alice", "alice-pw").unwrap();
        monitor.cloud().armed.store(true, Ordering::Relaxed);
        (monitor, pid, vid, admin)
    }

    #[test]
    fn degraded_pre_fails_closed_by_default() {
        let (monitor, pid, vid, admin) = degraded_fixture();
        let outcome = monitor.process(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&admin),
        );
        assert_eq!(outcome.verdict, Verdict::Degraded);
        assert!(!outcome.verdict.is_violation());
        assert_eq!(outcome.response.status, StatusCode::SERVICE_UNAVAILABLE);
        assert!(outcome.response.is_transport_fault());
        // Table I traceability: the untested requirement rides along.
        assert!(outcome.requirements.contains(&"1.4".to_string()));
        // Fail-closed: the cloud never saw the DELETE.
        assert_eq!(
            monitor
                .cloud()
                .inner
                .state()
                .project(pid)
                .unwrap()
                .volumes
                .len(),
            1
        );
        assert_eq!(monitor.metrics().resilience.get("degraded_pre"), 1);
        assert_eq!(monitor.metrics().resilience.get("fail_closed"), 1);
    }

    #[test]
    fn degraded_pre_fail_open_forwards_until_the_cap() {
        let (monitor, pid, vid, admin) = degraded_fixture();
        let monitor = monitor.degraded_policy(DegradedPolicy::FailOpen { max_unchecked: 1 });
        let delete = RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
            .auth_token(&admin);

        // First degraded request fits the fail-open budget: forwarded
        // unchecked, and the cloud really deleted the volume.
        let first = monitor.process(&delete);
        assert_eq!(first.verdict, Verdict::Degraded);
        assert_eq!(first.response.status, StatusCode::NO_CONTENT);
        assert!(monitor
            .cloud()
            .inner
            .state()
            .project(pid)
            .unwrap()
            .volumes
            .is_empty());
        assert_eq!(monitor.fail_open_used(), 1);
        assert_eq!(monitor.metrics().resilience.get("fail_open_pass"), 1);

        // The budget is spent: the next degraded request fails closed.
        let second = monitor.process(&delete);
        assert_eq!(second.verdict, Verdict::Degraded);
        assert_eq!(second.response.status, StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(monitor.metrics().resilience.get("fail_closed"), 1);
        assert_eq!(monitor.fail_open_used(), 1);
    }

    /// Healthy probes, but the forwarded call itself dies in transport.
    struct FaultyForward {
        inner: PrivateCloud,
    }

    impl SharedRestService for FaultyForward {
        fn call(&self, request: &RestRequest) -> RestResponse {
            if request.method == HttpMethod::Delete {
                return RestResponse::transport_fault(
                    StatusCode::GATEWAY_TIMEOUT,
                    "upstream timed out",
                );
            }
            self.inner.call(request)
        }
    }

    #[test]
    fn degraded_forward_is_not_a_wrong_denial() {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v", 1, false)
            .unwrap()
            .id;
        let mut monitor = cinder_monitor(FaultyForward { inner: cloud })
            .unwrap()
            .mode(Mode::Observe);
        monitor.authenticate("alice", "alice-pw").unwrap();
        let outcome = monitor.process(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&admin),
        );
        // A 504 from the wire is transport weather, not the cloud denying
        // an authorized request: Degraded, never WrongDenial.
        assert_eq!(outcome.verdict, Verdict::Degraded);
        assert_eq!(outcome.response.status, StatusCode::GATEWAY_TIMEOUT);
        assert!(outcome.requirements.contains(&"1.4".to_string()));
        assert_eq!(monitor.metrics().resilience.get("degraded_forward"), 1);
    }

    /// Answers every DELETE with a bare (unmarked) 503 without touching
    /// the cloud — indistinguishable by status from an intermediary
    /// shedding the request.
    struct SpoofedRefusal {
        inner: PrivateCloud,
    }

    impl SharedRestService for SpoofedRefusal {
        fn call(&self, request: &RestRequest) -> RestResponse {
            if request.method == HttpMethod::Delete {
                return RestResponse::error(StatusCode::SERVICE_UNAVAILABLE, "unavailable");
            }
            self.inner.call(request)
        }
    }

    #[test]
    fn bare_gateway_code_without_execution_stays_degraded() {
        // The converse of the masking test: a bare 503 where the call
        // genuinely did NOT run (post-state unchanged) is transport
        // weather as far as the monitor can prove — Degraded, counted,
        // never a false violation.
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v", 1, false)
            .unwrap()
            .id;
        let mut monitor = cinder_monitor(SpoofedRefusal { inner: cloud })
            .unwrap()
            .mode(Mode::Observe);
        monitor.authenticate("alice", "alice-pw").unwrap();
        let outcome = monitor.process(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&admin),
        );
        assert_eq!(outcome.verdict, Verdict::Degraded);
        assert!(!outcome.verdict.is_violation());
        assert_eq!(outcome.response.status, StatusCode::SERVICE_UNAVAILABLE);
        // The refused DELETE really did nothing.
        assert_eq!(
            monitor
                .cloud()
                .inner
                .state()
                .project(pid)
                .unwrap()
                .volumes
                .len(),
            1
        );
        assert_eq!(monitor.metrics().resilience.get("degraded_forward"), 1);
    }

    /// Passes the forwarded call through, then blinds the post-snapshot:
    /// every model-state probe after the first DELETE faults.
    struct PostBlind {
        inner: PrivateCloud,
        tripped: std::sync::atomic::AtomicBool,
    }

    impl SharedRestService for PostBlind {
        fn call(&self, request: &RestRequest) -> RestResponse {
            if request.method == HttpMethod::Delete {
                let response = self.inner.call(request);
                self.tripped.store(true, Ordering::Relaxed);
                return response;
            }
            if self.tripped.load(Ordering::Relaxed)
                && request.method == HttpMethod::Get
                && request.path.starts_with("/v3")
            {
                return RestResponse::transport_fault(
                    StatusCode::BAD_GATEWAY,
                    "post-state unreachable",
                );
            }
            self.inner.call(request)
        }
    }

    #[test]
    fn degraded_post_returns_the_clouds_real_response() {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v", 1, false)
            .unwrap()
            .id;
        let wrapped = PostBlind {
            inner: cloud,
            tripped: std::sync::atomic::AtomicBool::new(false),
        };
        let mut monitor = cinder_monitor(wrapped).unwrap().mode(Mode::Enforce);
        monitor.authenticate("alice", "alice-pw").unwrap();
        let outcome = monitor.process(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&admin),
        );
        // The call already executed: the client gets the cloud's actual
        // 204, labelled Degraded because the post-state went unobserved.
        assert_eq!(outcome.verdict, Verdict::Degraded);
        assert_eq!(outcome.response.status, StatusCode::NO_CONTENT);
        assert!(monitor
            .cloud()
            .inner
            .state()
            .project(pid)
            .unwrap()
            .volumes
            .is_empty());
        assert_eq!(monitor.metrics().resilience.get("degraded_post"), 1);
    }

    /// Panics on the first call to one specific unmodelled path,
    /// poisoning whatever lock the monitor holds around the forward.
    struct PanicOnce {
        inner: PrivateCloud,
        armed: std::sync::atomic::AtomicBool,
    }

    impl SharedRestService for PanicOnce {
        fn call(&self, request: &RestRequest) -> RestResponse {
            if request.path == "/identity/boom" && self.armed.swap(false, Ordering::Relaxed) {
                panic!("injected backend panic");
            }
            self.inner.call(request)
        }
    }

    #[test]
    fn poisoned_shard_does_not_wedge_later_requests() {
        let monitor = cinder_monitor(PanicOnce {
            inner: PrivateCloud::my_project(),
            armed: std::sync::atomic::AtomicBool::new(true),
        })
        .unwrap();
        let req = RestRequest::new(HttpMethod::Get, "/identity/boom");
        // The first request panics mid-forward while holding its log
        // shard, poisoning that shard's mutex.
        let poisoned =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| monitor.process(&req)));
        assert!(poisoned.is_err());
        // The same shard still serves requests: the lock recovered.
        let outcome = monitor.process(&req);
        assert_eq!(outcome.verdict, Verdict::NotModelled);
        // The panicked request never appended its record; the retry did.
        // Merging the log also walks the recovered shard.
        assert_eq!(monitor.log().len(), 1);
    }
}

#[cfg(test)]
mod refined_delete_tests {
    use super::*;
    use cm_cloudsim::PrivateCloud;

    #[test]
    fn volume_delete_with_snapshots_is_blocked_not_misreported() {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v", 1, false)
            .unwrap()
            .id;
        cloud.state_mut().create_snapshot(pid, vid, "s").unwrap();
        let mut monitor = cinder_monitor_extended(cloud).unwrap().mode(Mode::Enforce);
        monitor.authenticate("alice", "alice-pw").unwrap();

        // The refined guard requires snapshot-freedom: blocked pre-cloud.
        let blocked = monitor.process(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&admin),
        );
        assert_eq!(blocked.verdict, Verdict::PreBlocked);

        // Remove the snapshot; the volume now deletes cleanly.
        let snap_del = monitor.process(
            &RestRequest::new(
                HttpMethod::Delete,
                format!("/v3/{pid}/volumes/{vid}/snapshots/1"),
            )
            .auth_token(&admin),
        );
        assert_eq!(snap_del.verdict, Verdict::Pass);
        let vol_del = monitor.process(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&admin),
        );
        assert_eq!(vol_del.verdict, Verdict::Pass, "{:?}", monitor.log().last());
    }
}

#[cfg(test)]
mod state_tracking_tests {
    use super::*;
    use cm_cloudsim::PrivateCloud;
    use cm_model::cinder;

    #[test]
    fn monitor_reports_the_model_state_after_each_pass() {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
        let mut monitor = cinder_monitor(cloud).unwrap();
        monitor.authenticate("alice", "alice-pw").unwrap();

        let body = Json::object(vec![(
            "volume",
            Json::object(vec![("name", Json::Str("v".into()))]),
        )]);
        monitor.process(
            &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
                .auth_token(&admin)
                .json(body.clone()),
        );
        assert!(
            monitor.log()[0].diagnostics.contains(cinder::S_NOT_FULL),
            "{:?}",
            monitor.log()[0]
        );

        // Fill to quota: the monitor reports the full-quota state.
        for _ in 1..cm_cloudsim::DEFAULT_VOLUME_QUOTA {
            monitor.process(
                &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
                    .auth_token(&admin)
                    .json(body.clone()),
            );
        }
        assert!(
            monitor
                .log()
                .last()
                .unwrap()
                .diagnostics
                .contains(cinder::S_FULL),
            "{:?}",
            monitor.log().last()
        );
    }

    #[test]
    fn contract_set_states_survive_generate_multi() {
        let monitor = cinder_monitor_extended(PrivateCloud::my_project()).unwrap();
        let names: Vec<&str> = monitor
            .contracts()
            .states
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&cinder::S_NO_VOLUME));
        assert!(names.contains(&cinder::S_VOL_NO_SNAPSHOT));
        assert_eq!(names.len(), 5);
    }
}

#[cfg(test)]
mod overload_brownout_tests {
    use super::*;
    use cm_cloudsim::PrivateCloud;

    fn brownout_harness(
        config: BrownoutConfig,
    ) -> (Arc<OverloadStats>, Arc<BrownoutSignal>, BrownoutController) {
        let stats = Arc::new(OverloadStats::new());
        let signal = Arc::new(BrownoutSignal::new());
        let controller = BrownoutController::new(Arc::clone(&stats), Arc::clone(&signal), config);
        (stats, signal, controller)
    }

    fn feed(stats: &OverloadStats, admitted: u64, shed: u64) {
        for _ in 0..admitted {
            stats.note_admitted(cm_obs::Lane::Read, Duration::from_millis(1));
        }
        for _ in 0..shed {
            stats.note_shed(cm_obs::Lane::Read);
        }
    }

    #[test]
    fn brownout_controller_climbs_and_descends_with_hysteresis() {
        let config = BrownoutConfig {
            enter_shed_rate: 0.05,
            exit_shed_rate: 0.01,
            enter_after: 2,
            exit_after: 3,
            ..BrownoutConfig::default()
        };
        let (stats, signal, mut controller) = brownout_harness(config);
        // One hot window is a burst, not a brownout.
        feed(&stats, 10, 10);
        assert_eq!(controller.tick(), None);
        assert_eq!(signal.step(), 0);
        // The second consecutive hot window climbs one rung, not three.
        feed(&stats, 10, 10);
        assert_eq!(controller.tick(), Some((0, 1)));
        assert_eq!(signal.step(), 1);
        assert!(signal.speculative_disabled());
        assert!(!signal.anti_entropy_stretched());
        // Sustained overload keeps climbing to the top of the ladder —
        // and never past it.
        for _ in 0..8 {
            feed(&stats, 10, 10);
            controller.tick();
        }
        assert_eq!(signal.step(), BROWNOUT_MAX_STEP);
        assert!(signal.audit_relaxed());
        // A window inside the hysteresis band holds the rung and resets
        // both streaks.
        feed(&stats, 97, 3);
        assert_eq!(controller.tick(), None);
        // Calm windows descend only after `exit_after` in a row, one
        // rung at a time.
        feed(&stats, 50, 0);
        assert_eq!(controller.tick(), None);
        feed(&stats, 50, 0);
        assert_eq!(controller.tick(), None);
        feed(&stats, 50, 0);
        assert_eq!(controller.tick(), Some((3, 2)));
        // Idle windows count as calm too: drain all the way down.
        for _ in 0..6 {
            controller.tick();
        }
        assert_eq!(signal.step(), 0);
        assert!(signal.transitions() >= 2);
    }

    #[test]
    fn brownout_gates_speculation_and_stretches_anti_entropy() {
        let signal = Arc::new(BrownoutSignal::new());
        let cloud = PrivateCloud::my_project();
        let monitor = cinder_monitor(cloud)
            .unwrap()
            .speculative_reads(true)
            .anti_entropy_every(6)
            .brownout_signal(Arc::clone(&signal));
        assert!(monitor.speculation_allowed());
        assert_eq!(monitor.effective_anti_entropy(), 6);
        signal.set_step(1);
        assert!(!monitor.speculation_allowed());
        assert_eq!(monitor.effective_anti_entropy(), 6);
        signal.set_step(2);
        assert_eq!(monitor.effective_anti_entropy(), 6 * ANTI_ENTROPY_STRETCH);
        signal.set_step(0);
        assert!(monitor.speculation_allowed());
        // A zero cadence (on-demand only) must stay zero: brownout
        // sheds work, it never schedules new work.
        let monitor = monitor.anti_entropy_every(0);
        signal.set_step(2);
        assert_eq!(monitor.effective_anti_entropy(), 0);
    }

    #[derive(Debug, Default)]
    struct CapturingRecorder {
        records: Mutex<Vec<AuditRecord>>,
    }

    impl AuditRecorder for CapturingRecorder {
        fn record(&self, record: AuditRecord) {
            plock(&self.records).push(record);
        }
    }

    #[test]
    fn record_shed_lands_as_degraded_with_overload_provenance() {
        let recorder = Arc::new(CapturingRecorder::default());
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let monitor = cinder_monitor(cloud)
            .unwrap()
            .audit_recorder(Arc::clone(&recorder) as Arc<dyn AuditRecorder>);
        let request = RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"));
        let decision = ShedDecision {
            lane: cm_obs::Lane::Mutation,
            queue_wait: Duration::from_millis(700),
            budget: Duration::from_millis(500),
            cause: cm_httpkit::ShedCause::BudgetExhausted,
        };
        monitor.record_shed(&request, &decision);
        let records = plock(&recorder.records);
        assert_eq!(records.len(), 1);
        let record = &records[0];
        assert_eq!(record.verdict, VerdictCode::Degraded);
        assert_eq!(record.status, StatusCode::SERVICE_UNAVAILABLE.0);
        assert!(record.diagnostics.contains("overload shed"));
        assert!(record.diagnostics.contains("lane=mutation"));
        assert!(record.diagnostics.contains("cause=budget_exhausted"));
        match &record.context {
            ReplayContext::DegradedPre { forwarded, faults } => {
                assert!(!forwarded, "a shed request never reached the cloud");
                assert!(faults[0].contains("overload shed"));
            }
            other => panic!("expected DegradedPre overload provenance, got {other:?}"),
        }
        // The shed is also visible to live observers: one event, one
        // metrics observation, one overload counter.
        let events = monitor.events().tail(8);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].verdict, "degraded");
        assert!(
            !events[0].violation,
            "a shed must never read as a violation"
        );
        let rendered = monitor.metrics().render_json();
        assert_eq!(
            rendered
                .get("overload")
                .unwrap()
                .get("shed_recorded")
                .unwrap()
                .as_int(),
            Some(1)
        );
    }
}
