//! Atomic counter families and the monitor-wide metrics registry.

use crate::event::MonitorEvent;
use crate::histogram::LatencyHistogram;
use cm_rest::Json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Lock a mutex, recovering from poisoning: metrics are observational —
/// a panic elsewhere must never wedge counting for later requests.
fn plock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A family of named `u64` counters (e.g. one per verdict label).
///
/// The name→counter map sits behind a `Mutex`, but the lock is held
/// only to look up or create the `Arc<AtomicU64>`; increments are plain
/// `fetch_add`. Callers on a hot path can hold the returned handle.
#[derive(Debug, Default)]
pub struct CounterFamily {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
}

impl CounterFamily {
    /// An empty family.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut counters = plock(&self.counters);
        if let Some(counter) = counters.get(name) {
            return Arc::clone(counter);
        }
        let counter = Arc::new(AtomicU64::new(0));
        counters.insert(name.to_string(), Arc::clone(&counter));
        counter
    }

    /// Add 1 to the counter named `name`.
    pub fn increment(&self, name: &str) {
        self.counter(name).fetch_add(1, Ordering::Relaxed);
    }

    /// Current value of `name` (0 if never incremented).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        plock(&self.counters)
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// All counters as `(name, value)` pairs, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut entries: Vec<(String, u64)> = plock(&self.counters)
            .iter()
            .map(|(name, counter)| (name.clone(), counter.load(Ordering::Relaxed)))
            .collect();
        entries.sort();
        entries
    }

    /// JSON object mapping names to values, keys sorted.
    #[must_use]
    pub fn render_json(&self) -> Json {
        Json::Object(
            self.snapshot()
                .into_iter()
                .map(|(name, value)| (name, Json::Int(i64::try_from(value).unwrap_or(i64::MAX))))
                .collect(),
        )
    }
}

/// All metrics for one running monitor: verdict / requirement / route
/// counters plus per-phase latency histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    requests: AtomicU64,
    violations: AtomicU64,
    /// Counts per verdict label (`"pass"`, `"pre-blocked"`, …).
    pub verdicts: CounterFamily,
    /// Counts per exercised security-requirement id.
    pub requirements: CounterFamily,
    /// Counts per resolved route (unmatched requests count under
    /// `"(unmodelled)"`).
    pub routes: CounterFamily,
    /// Resilience counters: degraded verdicts by cause
    /// (`"degraded_pre"`, `"degraded_forward"`, `"degraded_post"`),
    /// fail-open passes (`"fail_open_pass"`), and fail-closed
    /// rejections (`"fail_closed"`).
    pub resilience: CounterFamily,
    /// Durable-audit counters: records appended (`"appended"`),
    /// group commits (`"commits"`), records dropped at the bounded
    /// channel (`"dropped"`), segment rotations (`"rotations"`),
    /// write errors (`"write_errors"`), and streaming-tail lag
    /// (`"stream_lagged"`).
    pub audit: CounterFamily,
    /// Shadow-replica counters (`SnapshotPolicy::Replica`): pre-states
    /// served from the replica (`"hit"`), knowledge gaps that forced a
    /// probe pass (`"miss"`), scheduled anti-entropy passes
    /// (`"reconcile"`), replicas invalidated by uncertainty
    /// (`"stale"`), reconciliations that had to repair a diverged
    /// replica (`"repair"`), and out-of-band mutations surfaced as
    /// drift verdicts (`"drift"`).
    pub replica: CounterFamily,
    /// Identity-probe cache counters: token introspections served from
    /// the cache (`"hit"`) vs. round-trips to the cloud (`"miss"`).
    pub identity: CounterFamily,
    /// Overload-control counters: requests shed by admission
    /// (`"shed_recorded"` once audited), brownout ladder movements
    /// (`"brownout_step_up"`, `"brownout_step_down"`), and audit
    /// commits that ran with the relaxed fsync (`"relaxed_commits"`).
    pub overload: CounterFamily,
    /// Pre-condition evaluation latency.
    pub pre_check: LatencyHistogram,
    /// Forwarding latency (the cloud call).
    pub forward: LatencyHistogram,
    /// State-probe latency (pre + post snapshots).
    pub snapshot: LatencyHistogram,
    /// Post-condition evaluation latency.
    pub post_check: LatencyHistogram,
    /// End-to-end `process` latency.
    pub total: LatencyHistogram,
    /// Durable-log group-commit latency (serialize + write + fsync per
    /// group, recorded by the audit writer thread).
    pub audit_commit: LatencyHistogram,
    /// Anti-entropy reconciliation latency: one probe pass diffing and
    /// repairing a shadow replica (recorded by the monitor whenever a
    /// replica-mode request falls back to probing).
    pub reconciliation: LatencyHistogram,
}

/// Route label used when a request matches no modelled route.
pub const UNMODELLED_ROUTE: &str = "(unmodelled)";

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total requests observed.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total violation verdicts observed.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Fold one event into every counter and histogram.
    pub fn observe(&self, event: &MonitorEvent) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if event.violation {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
        self.verdicts.increment(&event.verdict);
        for requirement in &event.requirements {
            self.requirements.increment(requirement);
        }
        self.routes
            .increment(event.route.as_deref().unwrap_or(UNMODELLED_ROUTE));
        self.pre_check.record(event.timings.pre_check);
        self.forward.record(event.timings.forward);
        self.snapshot.record(event.timings.snapshot);
        self.post_check.record(event.timings.post_check);
        self.total.record(event.timings.total);
    }

    /// Full JSON exposition, served by `GET /-/metrics` and printed by
    /// `cmcli metrics`.
    #[must_use]
    pub fn render_json(&self) -> Json {
        Json::object(vec![
            (
                "requests",
                Json::Int(i64::try_from(self.requests()).unwrap_or(i64::MAX)),
            ),
            (
                "violations",
                Json::Int(i64::try_from(self.violations()).unwrap_or(i64::MAX)),
            ),
            ("verdicts", self.verdicts.render_json()),
            ("requirements", self.requirements.render_json()),
            ("routes", self.routes.render_json()),
            ("resilience", self.resilience.render_json()),
            ("audit", self.audit.render_json()),
            ("replica", self.replica.render_json()),
            ("identity", self.identity.render_json()),
            ("overload", self.overload.render_json()),
            (
                "phases",
                Json::object(vec![
                    ("pre_check", self.pre_check.render_json()),
                    ("forward", self.forward.render_json()),
                    ("snapshot", self.snapshot.render_json()),
                    ("post_check", self.post_check.render_json()),
                    ("total", self.total.render_json()),
                    ("audit_commit", self.audit_commit.render_json()),
                    ("reconciliation", self.reconciliation.render_json()),
                ]),
            ),
        ])
    }

    /// Human-readable one-screen summary (used by CLI output).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests: {}  violations: {}\n",
            self.requests(),
            self.violations()
        ));
        out.push_str("verdicts:\n");
        for (name, value) in self.verdicts.snapshot() {
            out.push_str(&format!("  {name:<20} {value}\n"));
        }
        out.push_str("requirements:\n");
        for (name, value) in self.requirements.snapshot() {
            out.push_str(&format!("  {name:<20} {value}\n"));
        }
        out.push_str("routes:\n");
        for (name, value) in self.routes.snapshot() {
            out.push_str(&format!("  {name:<40} {value}\n"));
        }
        let resilience = self.resilience.snapshot();
        if !resilience.is_empty() {
            out.push_str("resilience:\n");
            for (name, value) in resilience {
                out.push_str(&format!("  {name:<20} {value}\n"));
            }
        }
        let audit = self.audit.snapshot();
        if !audit.is_empty() {
            out.push_str("audit:\n");
            for (name, value) in audit {
                out.push_str(&format!("  {name:<20} {value}\n"));
            }
        }
        let replica = self.replica.snapshot();
        if !replica.is_empty() {
            out.push_str("replica:\n");
            for (name, value) in replica {
                out.push_str(&format!("  {name:<20} {value}\n"));
            }
        }
        let identity = self.identity.snapshot();
        if !identity.is_empty() {
            out.push_str("identity:\n");
            for (name, value) in identity {
                out.push_str(&format!("  {name:<20} {value}\n"));
            }
        }
        let overload = self.overload.snapshot();
        if !overload.is_empty() {
            out.push_str("overload:\n");
            for (name, value) in overload {
                out.push_str(&format!("  {name:<20} {value}\n"));
            }
        }
        out.push_str("phase latency (ns):\n");
        for (label, histogram) in [
            ("pre_check", &self.pre_check),
            ("forward", &self.forward),
            ("snapshot", &self.snapshot),
            ("post_check", &self.post_check),
            ("total", &self.total),
            ("audit_commit", &self.audit_commit),
            ("reconciliation", &self.reconciliation),
        ] {
            out.push_str(&format!(
                "  {label:<10} count={:<8} mean={:<10} p50={:<10} p95={:<10} p99={}\n",
                histogram.count(),
                histogram.mean_nanos(),
                histogram.p50().unwrap_or(0),
                histogram.p95().unwrap_or(0),
                histogram.p99().unwrap_or(0),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PhaseTimings;
    use std::time::Duration;

    fn event(verdict: &str, violation: bool, reqs: &[&str], route: Option<&str>) -> MonitorEvent {
        MonitorEvent {
            method: "POST".into(),
            path: "/v3/p1/volumes".into(),
            route: route.map(str::to_string),
            verdict: verdict.into(),
            violation,
            status: 202,
            requirements: reqs.iter().map(|r| (*r).to_string()).collect(),
            timings: PhaseTimings {
                pre_check: Duration::from_nanos(100),
                forward: Duration::from_nanos(400),
                snapshot: Duration::from_nanos(200),
                post_check: Duration::from_nanos(100),
                total: Duration::from_nanos(900),
            },
            ..MonitorEvent::default()
        }
    }

    #[test]
    fn counter_family_counts_and_sorts() {
        let family = CounterFamily::new();
        family.increment("b");
        family.increment("a");
        family.increment("b");
        assert_eq!(family.get("a"), 1);
        assert_eq!(family.get("b"), 2);
        assert_eq!(family.get("missing"), 0);
        assert_eq!(
            family.snapshot(),
            vec![("a".to_string(), 1), ("b".to_string(), 2)]
        );
        let json = family.render_json();
        assert_eq!(json.get("b").unwrap().as_int(), Some(2));
    }

    #[test]
    fn counter_family_recovers_from_a_poisoned_lock() {
        let family = CounterFamily::new();
        family.increment("a");
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = family.counters.lock().unwrap();
            panic!("poison the counters lock");
        }));
        assert!(poison.is_err());
        family.increment("a");
        assert_eq!(family.get("a"), 2);
        assert_eq!(family.snapshot(), vec![("a".to_string(), 2)]);
    }

    #[test]
    fn resilience_family_shows_up_in_renders() {
        let registry = MetricsRegistry::new();
        registry.resilience.increment("degraded_pre");
        registry.resilience.increment("fail_open_pass");
        let json = registry.render_json();
        assert_eq!(
            json.get("resilience")
                .unwrap()
                .get("degraded_pre")
                .unwrap()
                .as_int(),
            Some(1)
        );
        let text = registry.render_text();
        assert!(text.contains("resilience:"));
        assert!(text.contains("fail_open_pass"));
    }

    #[test]
    fn audit_family_shows_up_in_renders() {
        let registry = MetricsRegistry::new();
        registry.audit.increment("appended");
        registry.audit.increment("dropped");
        registry.audit_commit.record(Duration::from_micros(120));
        let json = registry.render_json();
        assert_eq!(
            json.get("audit").unwrap().get("appended").unwrap().as_int(),
            Some(1)
        );
        assert_eq!(
            json.get("phases")
                .unwrap()
                .get("audit_commit")
                .unwrap()
                .get("count")
                .unwrap()
                .as_int(),
            Some(1)
        );
        let text = registry.render_text();
        assert!(text.contains("audit:"));
        assert!(text.contains("audit_commit"));
    }

    #[test]
    fn replica_and_identity_families_show_up_in_renders() {
        let registry = MetricsRegistry::new();
        registry.replica.increment("hit");
        registry.replica.increment("drift");
        registry.identity.increment("hit");
        registry.identity.increment("miss");
        registry.reconciliation.record(Duration::from_micros(90));
        let json = registry.render_json();
        assert_eq!(
            json.get("replica").unwrap().get("hit").unwrap().as_int(),
            Some(1)
        );
        assert_eq!(
            json.get("identity").unwrap().get("miss").unwrap().as_int(),
            Some(1)
        );
        assert_eq!(
            json.get("phases")
                .unwrap()
                .get("reconciliation")
                .unwrap()
                .get("count")
                .unwrap()
                .as_int(),
            Some(1)
        );
        let text = registry.render_text();
        assert!(text.contains("replica:"));
        assert!(text.contains("identity:"));
        assert!(text.contains("reconciliation"));
        assert!(text.contains("drift"));
    }

    #[test]
    fn observe_folds_all_dimensions() {
        let registry = MetricsRegistry::new();
        registry.observe(&event(
            "pass",
            false,
            &["SR1", "SR4"],
            Some("/v3/{p}/volumes"),
        ));
        registry.observe(&event(
            "pre-blocked",
            true,
            &["SR1"],
            Some("/v3/{p}/volumes"),
        ));
        registry.observe(&event("not-modelled", false, &[], None));

        assert_eq!(registry.requests(), 3);
        assert_eq!(registry.violations(), 1);
        assert_eq!(registry.verdicts.get("pass"), 1);
        assert_eq!(registry.verdicts.get("pre-blocked"), 1);
        assert_eq!(registry.requirements.get("SR1"), 2);
        assert_eq!(registry.requirements.get("SR4"), 1);
        assert_eq!(registry.routes.get("/v3/{p}/volumes"), 2);
        assert_eq!(registry.routes.get(UNMODELLED_ROUTE), 1);
        assert_eq!(registry.total.count(), 3);
        assert_eq!(registry.pre_check.count(), 3);
    }

    #[test]
    fn render_json_is_parseable_and_complete() {
        let registry = MetricsRegistry::new();
        registry.observe(&event("pass", false, &["SR2"], Some("/r")));
        let json = registry.render_json();
        assert_eq!(json.get("requests").unwrap().as_int(), Some(1));
        assert_eq!(
            json.get("verdicts").unwrap().get("pass").unwrap().as_int(),
            Some(1)
        );
        assert_eq!(
            json.get("requirements")
                .unwrap()
                .get("SR2")
                .unwrap()
                .as_int(),
            Some(1)
        );
        let phases = json.get("phases").unwrap();
        for phase in ["pre_check", "forward", "snapshot", "post_check", "total"] {
            let h = phases.get(phase).unwrap();
            assert_eq!(h.get("count").unwrap().as_int(), Some(1), "{phase}");
            assert!(h.get("p50_ns").unwrap().as_int().is_some(), "{phase}");
        }
        // The audit-commit histogram is exposed alongside the phases
        // even before any durable log is attached.
        let audit_commit = phases.get("audit_commit").unwrap();
        assert_eq!(audit_commit.get("count").unwrap().as_int(), Some(0));
        assert!(cm_rest::parse_json(&json.to_compact_string()).is_ok());
    }

    #[test]
    fn render_text_mentions_everything() {
        let registry = MetricsRegistry::new();
        registry.observe(&event("pass", false, &["SR9"], Some("/route")));
        let text = registry.render_text();
        assert!(text.contains("requests: 1"));
        assert!(text.contains("pass"));
        assert!(text.contains("SR9"));
        assert!(text.contains("/route"));
        assert!(text.contains("p99="));
    }
}
