//! Overload-control observability: priority lanes, shed accounting,
//! the queue-delay histogram, and the brownout degradation ladder
//! signal shared between the transport and the monitor.
//!
//! The types live here (not in `cm-httpkit`) because both sides of the
//! control loop need them: the reactor's admission path classifies
//! requests into a [`Lane`] and records sheds into [`OverloadStats`],
//! while the monitor's brownout controller reads the same stats to
//! decide when to shed *optional work* (speculative reads, anti-entropy
//! cadence, per-group fsync) before the transport has to shed
//! *requests*. The [`BrownoutSignal`] is the one-word channel between
//! them.

use crate::histogram::LatencyHistogram;
use cm_rest::Json;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// Priority lane a request is admitted under. Ordering is priority:
/// lower discriminant drains first and sheds last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Lane {
    /// Admin-plane traffic (`/-/` health, metrics, event stream). Never
    /// shed: the fleet needs the health endpoint most precisely when
    /// the instance is drowning.
    Admin = 0,
    /// Monitored mutations (POST/PUT/PATCH/DELETE). Outrank reads: a
    /// dropped read is retryable noise, a dropped mutation loses the
    /// one chance to check it against the contract.
    Mutation = 1,
    /// Monitored reads (GET/HEAD) — first to shed under pressure.
    Read = 2,
}

/// Number of lanes (array dimension for per-lane state).
pub const LANES: usize = 3;

impl Lane {
    /// All lanes in drain-priority order.
    pub const ALL: [Lane; LANES] = [Lane::Admin, Lane::Mutation, Lane::Read];

    /// Stable lowercase label (metrics keys, health JSON).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Lane::Admin => "admin",
            Lane::Mutation => "mutation",
            Lane::Read => "read",
        }
    }

    /// The lane's index into per-lane arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Per-lane overload accounting shared between the reactor shards and
/// the admin/health exposition: admitted + shed counters, live queue
/// depth gauges, and the queue-wait histogram the CoDel controller and
/// the brownout ladder both key off.
#[derive(Debug, Default)]
pub struct OverloadStats {
    admitted: [AtomicU64; LANES],
    shed: [AtomicU64; LANES],
    depth: [AtomicU64; LANES],
    /// Time between a request's parse (admission stamp) and the moment
    /// the handler actually starts on it.
    pub queue_delay: LatencyHistogram,
}

impl OverloadStats {
    /// Fresh, all-zero stats.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one admitted request and its queue wait.
    pub fn note_admitted(&self, lane: Lane, queue_wait: Duration) {
        self.admitted[lane.index()].fetch_add(1, Ordering::Relaxed);
        self.queue_delay.record(queue_wait);
    }

    /// Record one shed request.
    pub fn note_shed(&self, lane: Lane) {
        self.shed[lane.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Adjust the live queue depth of `lane` by `delta`.
    pub fn adjust_depth(&self, lane: Lane, delta: i64) {
        if delta >= 0 {
            self.depth[lane.index()].fetch_add(delta.unsigned_abs(), Ordering::Relaxed);
        } else {
            self.depth[lane.index()].fetch_sub(delta.unsigned_abs(), Ordering::Relaxed);
        }
    }

    /// Requests admitted on `lane` so far.
    #[must_use]
    pub fn admitted(&self, lane: Lane) -> u64 {
        self.admitted[lane.index()].load(Ordering::Relaxed)
    }

    /// Requests shed on `lane` so far.
    #[must_use]
    pub fn shed(&self, lane: Lane) -> u64 {
        self.shed[lane.index()].load(Ordering::Relaxed)
    }

    /// Live queue depth of `lane`.
    #[must_use]
    pub fn depth(&self, lane: Lane) -> u64 {
        self.depth[lane.index()].load(Ordering::Relaxed)
    }

    /// Total sheds across all lanes.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        Lane::ALL.iter().map(|&l| self.shed(l)).sum()
    }

    /// Total admissions across all lanes.
    #[must_use]
    pub fn admitted_total(&self) -> u64 {
        Lane::ALL.iter().map(|&l| self.admitted(l)).sum()
    }

    /// Shed fraction over everything seen so far (`0.0` when idle).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        let shed = self.shed_total();
        let seen = shed + self.admitted_total();
        if seen == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                shed as f64 / seen as f64
            }
        }
    }

    /// Machine-readable exposition block (`/-/health`, `/-/metrics`).
    #[must_use]
    pub fn render_json(&self) -> Json {
        let per_lane = |values: &dyn Fn(Lane) -> u64| {
            Json::Object(
                Lane::ALL
                    .iter()
                    .map(|&lane| {
                        (
                            lane.label().to_string(),
                            Json::Int(i64::try_from(values(lane)).unwrap_or(i64::MAX)),
                        )
                    })
                    .collect(),
            )
        };
        Json::object(vec![
            ("admitted", per_lane(&|l| self.admitted(l))),
            ("shed", per_lane(&|l| self.shed(l))),
            ("lane_depths", per_lane(&|l| self.depth(l))),
            (
                "shed_rate_percent",
                Json::Int({
                    #[allow(
                        clippy::cast_possible_truncation,
                        clippy::cast_precision_loss,
                        clippy::cast_sign_loss
                    )]
                    {
                        (self.shed_rate() * 100.0).round() as i64
                    }
                }),
            ),
            ("queue_delay", self.queue_delay.render_json()),
        ])
    }
}

/// Highest rung of the brownout ladder.
pub const BROWNOUT_MAX_STEP: u8 = 3;

/// The brownout ladder's shared state: a single atomic step the
/// monitor-side controller writes and every consumer of optional work
/// reads. Steps are cumulative — step 2 implies step 1's shedding.
///
/// | step | optional work shed                                   |
/// |------|------------------------------------------------------|
/// | 0    | nothing — normal operation                           |
/// | 1    | speculative safe-read sandwiching disabled           |
/// | 2    | + anti-entropy reconciliation intervals stretched    |
/// | 3    | + audit durability downgraded to flush-on-rotation   |
#[derive(Debug, Default)]
pub struct BrownoutSignal {
    step: AtomicU8,
    transitions: AtomicU64,
}

impl BrownoutSignal {
    /// A signal at step 0 (no brownout).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current ladder step (0–[`BROWNOUT_MAX_STEP`]).
    #[must_use]
    pub fn step(&self) -> u8 {
        self.step.load(Ordering::Relaxed)
    }

    /// Move to `step` (clamped to the ladder); returns the previous
    /// step. Any actual change counts as one recorded transition.
    pub fn set_step(&self, step: u8) -> u8 {
        let step = step.min(BROWNOUT_MAX_STEP);
        let previous = self.step.swap(step, Ordering::Relaxed);
        if previous != step {
            self.transitions.fetch_add(1, Ordering::Relaxed);
        }
        previous
    }

    /// Ladder transitions recorded so far.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Step ≥ 1: skip speculative safe-read sandwiching.
    #[must_use]
    pub fn speculative_disabled(&self) -> bool {
        self.step() >= 1
    }

    /// Step ≥ 2: stretch scheduled anti-entropy intervals.
    #[must_use]
    pub fn anti_entropy_stretched(&self) -> bool {
        self.step() >= 2
    }

    /// Step ≥ 3: audit commits may skip the per-group fsync (rotation
    /// still always syncs).
    #[must_use]
    pub fn audit_relaxed(&self) -> bool {
        self.step() >= 3
    }

    /// Exposition block for `/-/health` / `/-/metrics`.
    #[must_use]
    pub fn render_json(&self) -> Json {
        Json::object(vec![
            ("step", Json::Int(i64::from(self.step()))),
            (
                "transitions",
                Json::Int(i64::try_from(self.transitions()).unwrap_or(i64::MAX)),
            ),
            (
                "sheds",
                Json::Array(
                    [
                        (self.speculative_disabled(), "speculative_reads"),
                        (self.anti_entropy_stretched(), "anti_entropy_cadence"),
                        (self.audit_relaxed(), "audit_group_fsync"),
                    ]
                    .iter()
                    .filter(|(on, _)| *on)
                    .map(|(_, label)| Json::Str((*label).to_string()))
                    .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_order_and_label() {
        assert!(Lane::Admin < Lane::Mutation);
        assert!(Lane::Mutation < Lane::Read);
        assert_eq!(Lane::ALL.map(Lane::label), ["admin", "mutation", "read"]);
        assert_eq!(Lane::Read.index(), 2);
    }

    #[test]
    fn stats_account_per_lane() {
        let stats = OverloadStats::new();
        stats.note_admitted(Lane::Mutation, Duration::from_micros(250));
        stats.note_admitted(Lane::Read, Duration::from_micros(900));
        stats.note_shed(Lane::Read);
        stats.adjust_depth(Lane::Read, 3);
        stats.adjust_depth(Lane::Read, -1);
        assert_eq!(stats.admitted(Lane::Mutation), 1);
        assert_eq!(stats.shed(Lane::Read), 1);
        assert_eq!(stats.shed(Lane::Admin), 0);
        assert_eq!(stats.depth(Lane::Read), 2);
        assert_eq!(stats.shed_total(), 1);
        assert_eq!(stats.admitted_total(), 2);
        assert!((stats.shed_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(stats.queue_delay.count(), 2);
        let json = stats.render_json();
        assert_eq!(
            json.get("shed").unwrap().get("read").unwrap().as_int(),
            Some(1)
        );
        assert_eq!(
            json.get("lane_depths")
                .unwrap()
                .get("read")
                .unwrap()
                .as_int(),
            Some(2)
        );
        assert_eq!(json.get("shed_rate_percent").unwrap().as_int(), Some(33));
    }

    #[test]
    fn brownout_ladder_is_cumulative_and_counts_transitions() {
        let signal = BrownoutSignal::new();
        assert_eq!(signal.step(), 0);
        assert!(!signal.speculative_disabled());
        signal.set_step(1);
        assert!(signal.speculative_disabled());
        assert!(!signal.anti_entropy_stretched());
        signal.set_step(3);
        assert!(signal.speculative_disabled());
        assert!(signal.anti_entropy_stretched());
        assert!(signal.audit_relaxed());
        signal.set_step(3); // no-op: not a transition
        signal.set_step(0);
        assert_eq!(signal.transitions(), 3);
        signal.set_step(BROWNOUT_MAX_STEP + 5);
        assert_eq!(signal.step(), BROWNOUT_MAX_STEP);
        let json = signal.render_json();
        assert_eq!(json.get("step").unwrap().as_int(), Some(3));
        assert_eq!(json.get("sheds").unwrap().as_array().unwrap().len(), 3);
    }
}
