//! Structured monitor events and pluggable event sinks.
//!
//! Every request that passes through `CloudMonitor::process` produces
//! one [`MonitorEvent`]: the request line, the verdict label, the
//! exercised security-requirement ids, the contract id, and the
//! wall-clock duration of each workflow phase. Events are delivered to
//! an [`EventSink`]; the default [`RingBufferSink`] keeps the last N in
//! a bounded buffer (drop-oldest) so a long-running proxy never grows
//! without bound.

use cm_rest::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Wall-clock duration of each phase of the Figure-2 monitor workflow.
///
/// `snapshot` combines the pre- and post-state probe calls; `forward`
/// covers the proxied call into the cloud service under monitoring;
/// `total` spans the whole of `process` and is therefore ≥ the sum of
/// the phases (it also includes routing and contract lookup).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Time evaluating the contract's pre-condition.
    pub pre_check: Duration,
    /// Time forwarding the request to the cloud service.
    pub forward: Duration,
    /// Time probing cloud state (pre + post snapshots combined).
    pub snapshot: Duration,
    /// Time evaluating the contract's post-condition.
    pub post_check: Duration,
    /// End-to-end time of the whole `process` call.
    pub total: Duration,
}

impl PhaseTimings {
    /// JSON object of per-phase nanosecond durations.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let ns = |d: Duration| Json::Int(i64::try_from(d.as_nanos()).unwrap_or(i64::MAX));
        Json::object(vec![
            ("pre_check_ns", ns(self.pre_check)),
            ("forward_ns", ns(self.forward)),
            ("snapshot_ns", ns(self.snapshot)),
            ("post_check_ns", ns(self.post_check)),
            ("total_ns", ns(self.total)),
        ])
    }
}

/// One structured record of a monitored request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorEvent {
    /// Monotonic sequence number, assigned by the sink (0 until then).
    pub seq: u64,
    /// HTTP method of the monitored request.
    pub method: String,
    /// Request path (including any query string).
    pub path: String,
    /// Resolved route pattern, if the request matched the model.
    pub route: Option<String>,
    /// Verdict label exactly as `Verdict::Display` renders it
    /// (e.g. `"pass"`, `"pre-blocked"`, `"post-violation"`).
    pub verdict: String,
    /// Whether the verdict counts as a violation.
    pub violation: bool,
    /// Status code returned to the caller.
    pub status: u16,
    /// Security-requirement ids exercised by this request.
    pub requirements: Vec<String>,
    /// Id of the contract that was evaluated, if any.
    pub contract: Option<String>,
    /// Wall-clock phase breakdown.
    pub timings: PhaseTimings,
    /// Free-form diagnostics from the monitor.
    pub diagnostics: String,
}

impl MonitorEvent {
    /// JSON rendering used by `GET /-/events`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            (
                "seq",
                Json::Int(i64::try_from(self.seq).unwrap_or(i64::MAX)),
            ),
            ("method", Json::Str(self.method.clone())),
            ("path", Json::Str(self.path.clone())),
            ("route", self.route.clone().map_or(Json::Null, Json::Str)),
            ("verdict", Json::Str(self.verdict.clone())),
            ("violation", Json::Bool(self.violation)),
            ("status", Json::Int(i64::from(self.status))),
            (
                "requirements",
                Json::Array(self.requirements.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "contract",
                self.contract.clone().map_or(Json::Null, Json::Str),
            ),
            ("timings", self.timings.to_json()),
            ("diagnostics", Json::Str(self.diagnostics.clone())),
        ])
    }
}

/// Destination for monitor events.
///
/// Implementations must be cheap and non-blocking from the caller's
/// perspective — `emit` sits on the request path.
pub trait EventSink: Send + Sync + std::fmt::Debug {
    /// Deliver one event. The sink assigns `seq` if it retains events.
    fn emit(&self, event: MonitorEvent);

    /// The most recent `n` events, oldest first. Sinks that do not
    /// retain events return an empty vector (the default).
    fn tail(&self, n: usize) -> Vec<MonitorEvent> {
        let _ = n;
        Vec::new()
    }

    /// Number of events dropped due to capacity (0 for unbounded or
    /// non-retaining sinks).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Sink that discards every event.
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: MonitorEvent) {}
}

/// Sink that tees every event into two downstream sinks — the idiom
/// for keeping the in-memory `/-/events` ring while also feeding a
/// durable audit recorder. `seq` assignment stays with the primary
/// sink; `tail` and `dropped` are answered by the primary only.
#[derive(Debug)]
pub struct TeeSink<A, B> {
    primary: A,
    secondary: B,
}

impl<A: EventSink, B: EventSink> TeeSink<A, B> {
    /// Tee into `primary` (authoritative for `tail`/`dropped`) and
    /// `secondary`.
    pub fn new(primary: A, secondary: B) -> Self {
        TeeSink { primary, secondary }
    }

    /// The primary sink.
    pub fn primary(&self) -> &A {
        &self.primary
    }

    /// The secondary sink.
    pub fn secondary(&self) -> &B {
        &self.secondary
    }
}

impl<A: EventSink, B: EventSink> EventSink for TeeSink<A, B> {
    fn emit(&self, event: MonitorEvent) {
        self.secondary.emit(event.clone());
        self.primary.emit(event);
    }

    fn tail(&self, n: usize) -> Vec<MonitorEvent> {
        self.primary.tail(n)
    }

    fn dropped(&self) -> u64 {
        self.primary.dropped()
    }
}

/// Bounded in-memory sink: keeps the most recent `capacity` events,
/// dropping the oldest on overflow and counting the drops.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    events: Mutex<VecDeque<MonitorEvent>>,
}

impl RingBufferSink {
    /// A sink retaining at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBufferSink {
            capacity,
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            events: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Retained event count (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl EventSink for RingBufferSink {
    fn emit(&self, mut event: MonitorEvent) {
        event.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut events = self.events.lock().unwrap();
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    fn tail(&self, n: usize) -> Vec<MonitorEvent> {
        let events = self.events.lock().unwrap();
        let skip = events.len().saturating_sub(n);
        events.iter().skip(skip).cloned().collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(path: &str) -> MonitorEvent {
        MonitorEvent {
            method: "GET".into(),
            path: path.into(),
            verdict: "pass".into(),
            status: 200,
            ..MonitorEvent::default()
        }
    }

    #[test]
    fn ring_buffer_assigns_monotonic_seq() {
        let sink = RingBufferSink::new(8);
        sink.emit(event("/a"));
        sink.emit(event("/b"));
        let tail = sink.tail(10);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 0);
        assert_eq!(tail[1].seq, 1);
        assert_eq!(tail[0].path, "/a");
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let sink = RingBufferSink::new(3);
        for i in 0..5 {
            sink.emit(event(&format!("/{i}")));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let tail = sink.tail(10);
        let paths: Vec<&str> = tail.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["/2", "/3", "/4"]);
        // Sequence numbers survive the drop: they index emission order.
        assert_eq!(tail[0].seq, 2);
    }

    #[test]
    fn tail_returns_most_recent_oldest_first() {
        let sink = RingBufferSink::new(10);
        for i in 0..6 {
            sink.emit(event(&format!("/{i}")));
        }
        let tail = sink.tail(2);
        let paths: Vec<&str> = tail.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["/4", "/5"]);
    }

    #[test]
    fn null_sink_retains_nothing() {
        let sink = NullSink;
        sink.emit(event("/x"));
        assert!(sink.tail(10).is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let sink = RingBufferSink::new(0);
        sink.emit(event("/only"));
        sink.emit(event("/newer"));
        assert_eq!(sink.capacity(), 1);
        assert_eq!(sink.tail(5).len(), 1);
        assert_eq!(sink.tail(5)[0].path, "/newer");
    }

    #[test]
    fn tee_sink_delivers_to_both_and_answers_from_primary() {
        let tee = TeeSink::new(RingBufferSink::new(2), RingBufferSink::new(8));
        for i in 0..4 {
            tee.emit(event(&format!("/{i}")));
        }
        // Primary (capacity 2) answers tail/dropped.
        assert_eq!(tee.tail(10).len(), 2);
        assert_eq!(tee.dropped(), 2);
        // Secondary saw every event regardless.
        assert_eq!(tee.secondary().tail(10).len(), 4);
    }

    #[test]
    fn event_json_round_trips_key_fields() {
        let mut e = event("/v3/volumes?limit=5");
        e.requirements = vec!["SR1".into(), "SR4".into()];
        e.contract = Some("create_volume".into());
        e.route = Some("/v3/{project_id}/volumes".into());
        e.timings.total = Duration::from_nanos(1500);
        let json = e.to_json();
        assert_eq!(json.get("method").unwrap().as_str(), Some("GET"));
        assert_eq!(json.get("verdict").unwrap().as_str(), Some("pass"));
        assert_eq!(json.get("status").unwrap().as_int(), Some(200));
        let reqs = json.get("requirements").unwrap().as_array().unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].as_str(), Some("SR1"));
        assert_eq!(
            json.get("timings")
                .unwrap()
                .get("total_ns")
                .unwrap()
                .as_int(),
            Some(1500)
        );
        // The rendering is parseable JSON.
        let text = json.to_compact_string();
        assert!(cm_rest::parse_json(&text).is_ok());
    }
}
