//! # cm-obs — observability for the generated cloud monitor
//!
//! The paper's monitor exists to be *watched*: Figure 2 reports pass /
//! pre-violation / post-violation verdicts together with the exercised
//! security-requirement ids, and the Section VI-D mutation campaign is
//! only as credible as what the monitor records. This crate is the
//! zero-dependency layer that makes a running monitor observable:
//!
//! * [`MonitorEvent`] — one structured record per processed request
//!   (request line, verdict, exercised requirement ids, contract id,
//!   and the wall-clock duration of the pre-check / forward / snapshot
//!   / post-check phases);
//! * [`EventSink`] — pluggable event delivery; the default
//!   [`RingBufferSink`] is bounded and drops the oldest event on
//!   overflow, so a long-running proxy never grows without bound;
//! * [`MetricsRegistry`] — atomic counters per verdict / requirement /
//!   route plus fixed-bucket log2 latency histograms
//!   ([`LatencyHistogram`]) with p50/p95/p99 summaries;
//! * JSON exposition via [`MetricsRegistry::render_json`], served by
//!   the `cm-httpkit` admin routes (`GET /-/metrics`,
//!   `GET /-/events?tail=N`) and the `cmcli metrics` subcommand;
//! * [`XorShift64Star`] — a tiny deterministic PRNG so fuzz-style tests
//!   need no registry dependency.
//!
//! Everything here is `std`-only and lock-minimal: counters and
//! histogram buckets are plain `std::sync::atomic` words; the ring
//! buffer is the only structure behind a `Mutex`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod histogram;
pub mod metrics;
pub mod overload;
pub mod rng;
pub mod stream;

pub use event::{EventSink, MonitorEvent, NullSink, PhaseTimings, RingBufferSink, TeeSink};
pub use histogram::LatencyHistogram;
pub use metrics::{CounterFamily, MetricsRegistry};
pub use overload::{BrownoutSignal, Lane, OverloadStats, BROWNOUT_MAX_STEP, LANES};
pub use rng::XorShift64Star;
pub use stream::{StreamBatch, TailStream};
