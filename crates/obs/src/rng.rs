//! A tiny deterministic PRNG (xorshift64*), so fuzz-style tests and
//! synthetic workloads need no registry dependency.

/// xorshift64* — 64 bits of state, period 2^64 − 1, passes the usual
/// quick statistical checks; more than enough for test traffic shaping.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Seed the generator; a zero seed is remapped (the all-zero state
    /// is a fixed point of xorshift).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish `usize` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + usize::try_from(self.next_u64() % span).expect("span fits usize")
    }

    /// Uniform-ish `i64` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_i64(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        let off = self.next_u64() % span;
        range
            .start
            .wrapping_add(i64::try_from(off).expect("span fits i64"))
    }

    /// A uniform-ish `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift64Star::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = XorShift64Star::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let u = rng.gen_usize(0..6);
            assert!(u < 6);
            seen.insert(u);
            let i = rng.gen_i64(-5..50);
            assert!((-5..50).contains(&i));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
        // All six values of the small range appear over 1000 draws.
        assert_eq!(seen.len(), 6);
    }
}
