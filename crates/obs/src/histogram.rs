//! Fixed-bucket log2 latency histograms over `std::sync::atomic`.
//!
//! Bucket `0` holds the value `0`; bucket `b ≥ 1` holds values in
//! `[2^(b-1), 2^b − 1]` nanoseconds — i.e. a value lands in the bucket
//! indexed by its bit length. Recording is one `fetch_add` per sample
//! (plus two for count/sum), so a histogram can sit on the proxy's hot
//! path. Percentiles are resolved to the **inclusive upper bound** of
//! the bucket containing the target rank, which makes the math exact at
//! bucket boundaries (a property the unit tests pin down).

use cm_rest::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: bit lengths 0..=63 cover every `u64` nanosecond
/// value (584 years of latency in the last bucket).
pub const BUCKETS: usize = 64;

/// A concurrent log2-bucket histogram of nanosecond durations.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket holding `nanos`: its bit length, clamped.
#[must_use]
pub fn bucket_index(nanos: u64) -> usize {
    ((u64::BITS - nanos.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `index` (the percentile resolution).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 63 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn record(&self, duration: Duration) {
        self.record_nanos(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record one duration given in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded nanoseconds.
    #[must_use]
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }

    /// Mean nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos().checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, resolved to the
    /// inclusive upper bound of the bucket holding the target rank;
    /// `None` when the histogram is empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        // ceil(q * count), clamped to [1, count]: the rank of the sample
        // the quantile falls on under the nearest-rank definition.
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return Some(bucket_upper_bound(index));
            }
        }
        Some(bucket_upper_bound(BUCKETS - 1))
    }

    /// p50 in nanoseconds (`None` when empty).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// p95 in nanoseconds (`None` when empty).
    #[must_use]
    pub fn p95(&self) -> Option<u64> {
        self.percentile(0.95)
    }

    /// p99 in nanoseconds (`None` when empty).
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// Non-empty buckets as `(upper_bound_nanos, count)` pairs.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                let n = bucket.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper_bound(index), n))
            })
            .collect()
    }

    /// JSON summary: count, sum, mean, p50/p95/p99 and the sparse
    /// bucket table.
    #[must_use]
    pub fn render_json(&self) -> Json {
        Json::object(vec![
            (
                "count",
                Json::Int(i64::try_from(self.count()).unwrap_or(i64::MAX)),
            ),
            (
                "sum_ns",
                Json::Int(i64::try_from(self.sum_nanos()).unwrap_or(i64::MAX)),
            ),
            (
                "mean_ns",
                Json::Int(i64::try_from(self.mean_nanos()).unwrap_or(i64::MAX)),
            ),
            ("p50_ns", json_opt_nanos(self.p50())),
            ("p95_ns", json_opt_nanos(self.p95())),
            ("p99_ns", json_opt_nanos(self.p99())),
            (
                "buckets",
                Json::Array(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(le, n)| {
                            Json::object(vec![
                                ("le_ns", Json::Int(i64::try_from(le).unwrap_or(i64::MAX))),
                                ("count", Json::Int(i64::try_from(n).unwrap_or(i64::MAX))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn json_opt_nanos(v: Option<u64>) -> Json {
    match v {
        Some(n) => Json::Int(i64::try_from(n).unwrap_or(i64::MAX)),
        None => Json::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_are_inclusive_powers_of_two_minus_one() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        // Every value's bucket bound is >= the value, and the previous
        // bound is < the value (the bucketing is exact at boundaries).
        for v in [1u64, 2, 3, 4, 7, 8, 1023, 1024, 1025, 1 << 40] {
            let b = bucket_index(v);
            assert!(bucket_upper_bound(b) >= v, "{v}");
            assert!(bucket_upper_bound(b - 1) < v, "{v}");
        }
    }

    #[test]
    fn percentiles_are_exact_at_bucket_boundaries() {
        let h = LatencyHistogram::new();
        // 100 samples of exactly 1023 ns — every percentile is the
        // bucket's upper bound, 1023.
        for _ in 0..100 {
            h.record_nanos(1023);
        }
        assert_eq!(h.p50(), Some(1023));
        assert_eq!(h.p95(), Some(1023));
        assert_eq!(h.p99(), Some(1023));
        assert_eq!(h.percentile(1.0), Some(1023));
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum_nanos(), 102_300);
        assert_eq!(h.mean_nanos(), 1023);
    }

    #[test]
    fn percentiles_follow_nearest_rank_across_buckets() {
        let h = LatencyHistogram::new();
        // 50 samples in bucket ≤1023, 45 in ≤2047, 5 in ≤4095.
        for _ in 0..50 {
            h.record_nanos(1000);
        }
        for _ in 0..45 {
            h.record_nanos(2000);
        }
        for _ in 0..5 {
            h.record_nanos(4000);
        }
        // rank(0.50 * 100) = 50 → still in the first bucket.
        assert_eq!(h.p50(), Some(1023));
        // rank 95 → second bucket.
        assert_eq!(h.p95(), Some(2047));
        // rank 99 → third bucket.
        assert_eq!(h.p99(), Some(4095));
        // The min quantile clamps to rank 1.
        assert_eq!(h.percentile(0.0), Some(1023));
    }

    #[test]
    fn zero_duration_lands_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record_nanos(0);
        assert_eq!(h.p50(), Some(0));
        assert_eq!(h.nonzero_buckets(), vec![(0, 1)]);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.mean_nanos(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn render_json_carries_summary_and_buckets() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(700));
        h.record(Duration::from_nanos(900));
        let json = h.render_json();
        assert_eq!(json.get("count").unwrap().as_int(), Some(2));
        assert_eq!(json.get("sum_ns").unwrap().as_int(), Some(1600));
        assert_eq!(json.get("p50_ns").unwrap().as_int(), Some(1023));
        let buckets = json.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("le_ns").unwrap().as_int(), Some(1023));
        assert_eq!(buckets[0].get("count").unwrap().as_int(), Some(2));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_nanos(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|(_, n)| n).sum();
        assert_eq!(bucket_total, 8000);
    }
}
