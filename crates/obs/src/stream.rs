//! Streaming-tail abstraction for durable event logs.
//!
//! The httpkit admin router serves `/-/events/stream` against anything
//! implementing [`TailStream`]; the durable audit log in `cm-audit`
//! provides the implementation. Keeping the trait here (below both
//! crates) means the transport layer never depends on the storage
//! layer.
//!
//! The contract is deliberately poll-shaped rather than push-shaped: a
//! consumer asks for "records from offset N, up to `max`, waiting at
//! most `wait_ms`", and the producer answers from a bounded in-memory
//! tail without ever blocking its own writers. A consumer that falls
//! behind the bounded tail is *lagged* — it skips forward and is told
//! how many records it missed — instead of exerting backpressure on the
//! serve path.

use cm_rest::Json;

/// One batch of tail records answered to a streaming consumer.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBatch {
    /// Offset of the first record in `records` (commit order).
    pub start: u64,
    /// Offset the consumer should ask for next.
    pub next: u64,
    /// Records the consumer missed because the bounded tail had already
    /// evicted them (`start - requested_from` when skipping forward).
    pub lagged: u64,
    /// One past the newest committed offset at answer time.
    pub end: u64,
    /// Compact JSON summaries, one per record.
    pub records: Vec<Json>,
}

/// A source of committed records that can be tailed from an offset.
pub trait TailStream: Send + Sync + std::fmt::Debug {
    /// Answer records starting at `from` (commit-order offset), up to
    /// `max`, blocking the *caller* at most `wait_ms` milliseconds for
    /// new data. Must never block the producer side.
    fn tail_from(&self, from: u64, max: usize, wait_ms: u64) -> StreamBatch;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Debug)]
    struct FixedTail {
        records: Mutex<Vec<Json>>,
        base: u64,
    }

    impl TailStream for FixedTail {
        fn tail_from(&self, from: u64, max: usize, _wait_ms: u64) -> StreamBatch {
            let records = self.records.lock().unwrap_or_else(|e| e.into_inner());
            let end = self.base + records.len() as u64;
            let start = from.max(self.base).min(end);
            let take = usize::try_from(end - start).unwrap_or(usize::MAX).min(max);
            let skip = usize::try_from(start - self.base).unwrap_or(usize::MAX);
            StreamBatch {
                start,
                next: start + take as u64,
                lagged: start.saturating_sub(from),
                end,
                records: records.iter().skip(skip).take(take).cloned().collect(),
            }
        }
    }

    #[test]
    fn lag_is_reported_when_tail_evicted() {
        let tail = FixedTail {
            records: Mutex::new(vec![Json::Int(7), Json::Int(8)]),
            base: 7,
        };
        let batch = tail.tail_from(2, 10, 0);
        assert_eq!(batch.start, 7);
        assert_eq!(batch.lagged, 5);
        assert_eq!(batch.next, 9);
        assert_eq!(batch.end, 9);
        assert_eq!(batch.records.len(), 2);
    }
}
