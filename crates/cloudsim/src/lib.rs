//! # cm-cloudsim — an OpenStack-like private cloud simulator
//!
//! The paper validates its monitor against a two-node OpenStack Newton
//! deployment (Keystone + Cinder). This crate substitutes that testbed
//! with an in-process simulator exposing the same observable surface —
//! URIs, methods, status codes, JSON bodies and `policy.json` RBAC
//! semantics — which is all the monitor ever sees:
//!
//! * [`CloudState`] — the data plane: volumes, instances, quotas
//!   (create/delete/attach with the quota and `in-use` rules the paper's
//!   guards talk about);
//! * [`PrivateCloud`] — Keystone token endpoints, the Cinder-style
//!   `/v3/{project_id}/volumes` API, `quota_sets`, `usergroup` and a
//!   Nova-lite `/compute` API, all behind Table I authorization;
//! * [`FaultPlan`]/[`Fault`] — declarative implementation errors (wrong
//!   role in policy, missing/inverted checks, wrong status codes, lost
//!   updates) reproducing and generalising the paper's three mutants.
//!
//! ## Example
//!
//! ```
//! use cm_cloudsim::PrivateCloud;
//! use cm_model::HttpMethod;
//! use cm_rest::{RestRequest, RestService, StatusCode};
//!
//! let mut cloud = PrivateCloud::my_project();
//! let token = cloud.issue_token("carol", "carol-pw")?; // role: user
//! let pid = cloud.project_id();
//!
//! // Table I, SecReq 1.4: only admin may DELETE a volume.
//! let resp = cloud.handle(
//!     &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
//!         .auth_token(&token.token),
//! );
//! assert_eq!(resp.status, StatusCode::FORBIDDEN);
//! # Ok::<(), cm_rbac::TokenError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod cloud;
pub mod faults;
pub mod state;

pub use chaos::{ChaosAction, ChaosListener, ChaosPlan, ChaosStats};
pub use cloud::{PrivateCloud, DEFAULT_VOLUME_QUOTA};
pub use faults::{Fault, FaultPlan};
pub use state::{CloudState, Instance, ProjectState, StateError, Volume, VolumeStatus};
