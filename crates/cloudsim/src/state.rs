//! In-memory cloud state: volumes, instances and quotas per project.
//!
//! This is the data plane of the simulated private cloud. The semantics
//! follow the paper's description of Cinder: "a volume can be created, if
//! the project has not exceeded its quota of the permitted volumes", and
//! "a volume can be deleted … if the volume is not attached to any
//! instance, i.e., its status is not *in-use*".

use std::collections::HashMap;
use std::fmt;

/// Lifecycle status of a volume, following Cinder's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VolumeStatus {
    /// Ready to be attached.
    Available,
    /// Attached to an instance; cannot be deleted.
    InUse,
    /// Failed state (used by error-injection scenarios).
    Error,
}

impl VolumeStatus {
    /// Cinder's string form, e.g. `in-use`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            VolumeStatus::Available => "available",
            VolumeStatus::InUse => "in-use",
            VolumeStatus::Error => "error",
        }
    }
}

impl fmt::Display for VolumeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A block-storage volume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Volume {
    /// Unique volume id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Size in GiB.
    pub size: i64,
    /// Lifecycle status.
    pub status: VolumeStatus,
    /// Instance the volume is attached to, if any.
    pub attached_to: Option<u64>,
}

/// A point-in-time snapshot of a volume (Cinder's second central
/// resource; used by the extended models to demonstrate nested-URI
/// monitoring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Unique snapshot id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// The volume this snapshot captures.
    pub volume_id: u64,
    /// Lifecycle status (snapshots reuse the volume vocabulary).
    pub status: VolumeStatus,
}

/// A compute instance (Nova-lite); only exists to give volumes something
/// to attach to, which drives the `in-use` status the DELETE guard checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Unique instance id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Ids of attached volumes.
    pub volumes: Vec<u64>,
}

/// Errors raised by state operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The referenced volume does not exist in the project.
    NoSuchVolume(u64),
    /// The referenced instance does not exist in the project.
    NoSuchInstance(u64),
    /// Creating the volume would exceed the project quota.
    QuotaExceeded {
        /// Current number of volumes.
        current: usize,
        /// The project's quota.
        quota: u32,
    },
    /// The volume is attached (`in-use`) and cannot be deleted/attached.
    VolumeInUse(u64),
    /// The referenced snapshot does not exist in the project.
    NoSuchSnapshot(u64),
    /// The volume still has snapshots and cannot be deleted (Cinder
    /// semantics: delete the snapshots first).
    VolumeHasSnapshots(u64),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::NoSuchVolume(id) => write!(f, "volume {id} not found"),
            StateError::NoSuchInstance(id) => write!(f, "instance {id} not found"),
            StateError::QuotaExceeded { current, quota } => {
                write!(f, "volume quota exceeded ({current}/{quota})")
            }
            StateError::VolumeInUse(id) => write!(f, "volume {id} is in-use"),
            StateError::NoSuchSnapshot(id) => write!(f, "snapshot {id} not found"),
            StateError::VolumeHasSnapshots(id) => {
                write!(f, "volume {id} still has snapshots")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// Per-project data plane of the simulated cloud.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProjectState {
    /// Volumes, in creation order.
    pub volumes: Vec<Volume>,
    /// Snapshots, in creation order.
    pub snapshots: Vec<Snapshot>,
    /// Instances, in creation order.
    pub instances: Vec<Instance>,
    /// Volume-count quota (the paper's `quota_sets.volume`).
    pub volume_quota: u32,
}

impl ProjectState {
    /// Look up a volume.
    #[must_use]
    pub fn volume(&self, id: u64) -> Option<&Volume> {
        self.volumes.iter().find(|v| v.id == id)
    }

    /// Look up an instance.
    #[must_use]
    pub fn instance(&self, id: u64) -> Option<&Instance> {
        self.instances.iter().find(|i| i.id == id)
    }

    /// Look up a snapshot.
    #[must_use]
    pub fn snapshot(&self, id: u64) -> Option<&Snapshot> {
        self.snapshots.iter().find(|s| s.id == id)
    }

    /// Snapshots of a specific volume, in creation order.
    pub fn snapshots_of(&self, volume_id: u64) -> impl Iterator<Item = &Snapshot> {
        self.snapshots
            .iter()
            .filter(move |s| s.volume_id == volume_id)
    }
}

/// The whole data plane: projects keyed by id, with id allocators.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudState {
    projects: HashMap<u64, ProjectState>,
    next_volume_id: u64,
    next_instance_id: u64,
    next_snapshot_id: u64,
    id_stride: u64,
}

impl Default for CloudState {
    fn default() -> Self {
        CloudState::new()
    }
}

impl CloudState {
    /// Create an empty state.
    #[must_use]
    pub fn new() -> Self {
        CloudState::with_ids(1, 1)
    }

    /// Create an empty state whose id allocators start at `start` and
    /// advance by `stride`. Sharded clouds give each shard a distinct
    /// start and a common stride so resource ids stay globally unique
    /// without cross-shard coordination.
    #[must_use]
    pub fn with_ids(start: u64, stride: u64) -> Self {
        CloudState {
            projects: HashMap::new(),
            next_volume_id: start,
            next_instance_id: start,
            next_snapshot_id: start,
            id_stride: stride.max(1),
        }
    }

    /// Register a project with a volume quota.
    pub fn add_project(&mut self, project_id: u64, volume_quota: u32) {
        self.projects.insert(
            project_id,
            ProjectState {
                volume_quota,
                ..ProjectState::default()
            },
        );
    }

    /// Read access to a project's state.
    #[must_use]
    pub fn project(&self, project_id: u64) -> Option<&ProjectState> {
        self.projects.get(&project_id)
    }

    /// Mutable access to one volume — the escape hatch used by the
    /// out-of-band mutation hook to model an administrator (or an
    /// attacker) editing cloud state behind the monitored API.
    pub fn volume_mut(&mut self, project_id: u64, volume_id: u64) -> Option<&mut Volume> {
        self.projects
            .get_mut(&project_id)?
            .volumes
            .iter_mut()
            .find(|v| v.id == volume_id)
    }

    /// Change a project's volume quota; returns false if the project is
    /// unknown.
    pub fn set_quota(&mut self, project_id: u64, quota: u32) -> bool {
        match self.projects.get_mut(&project_id) {
            Some(p) => {
                p.volume_quota = quota;
                true
            }
            None => false,
        }
    }

    /// Create a volume, enforcing the quota unless `ignore_quota` (fault
    /// injection) is set.
    ///
    /// # Errors
    ///
    /// [`StateError::QuotaExceeded`] when the project is at quota.
    pub fn create_volume(
        &mut self,
        project_id: u64,
        name: impl Into<String>,
        size: i64,
        ignore_quota: bool,
    ) -> Result<&Volume, StateError> {
        let next_id = self.next_volume_id;
        let project = self
            .projects
            .get_mut(&project_id)
            .ok_or(StateError::NoSuchVolume(0))?;
        if !ignore_quota && project.volumes.len() >= project.volume_quota as usize {
            return Err(StateError::QuotaExceeded {
                current: project.volumes.len(),
                quota: project.volume_quota,
            });
        }
        self.next_volume_id += self.id_stride;
        project.volumes.push(Volume {
            id: next_id,
            name: name.into(),
            size,
            status: VolumeStatus::Available,
            attached_to: None,
        });
        Ok(project.volumes.last().expect("just pushed"))
    }

    /// Delete a volume, enforcing the in-use check unless `ignore_in_use`
    /// (fault injection) is set.
    ///
    /// # Errors
    ///
    /// [`StateError::NoSuchVolume`] / [`StateError::VolumeInUse`].
    pub fn delete_volume(
        &mut self,
        project_id: u64,
        volume_id: u64,
        ignore_in_use: bool,
    ) -> Result<Volume, StateError> {
        let project = self
            .projects
            .get_mut(&project_id)
            .ok_or(StateError::NoSuchVolume(volume_id))?;
        let idx = project
            .volumes
            .iter()
            .position(|v| v.id == volume_id)
            .ok_or(StateError::NoSuchVolume(volume_id))?;
        if !ignore_in_use && project.volumes[idx].status == VolumeStatus::InUse {
            return Err(StateError::VolumeInUse(volume_id));
        }
        if !ignore_in_use && project.snapshots.iter().any(|s| s.volume_id == volume_id) {
            return Err(StateError::VolumeHasSnapshots(volume_id));
        }
        // If force-deleted while attached, detach from the instance too.
        let vol = project.volumes.remove(idx);
        if let Some(instance_id) = vol.attached_to {
            if let Some(inst) = project.instances.iter_mut().find(|i| i.id == instance_id) {
                inst.volumes.retain(|v| *v != volume_id);
            }
        }
        Ok(vol)
    }

    /// Update a volume's name/size.
    ///
    /// # Errors
    ///
    /// [`StateError::NoSuchVolume`].
    pub fn update_volume(
        &mut self,
        project_id: u64,
        volume_id: u64,
        name: Option<String>,
        size: Option<i64>,
    ) -> Result<&Volume, StateError> {
        let project = self
            .projects
            .get_mut(&project_id)
            .ok_or(StateError::NoSuchVolume(volume_id))?;
        let vol = project
            .volumes
            .iter_mut()
            .find(|v| v.id == volume_id)
            .ok_or(StateError::NoSuchVolume(volume_id))?;
        if let Some(n) = name {
            vol.name = n;
        }
        if let Some(s) = size {
            vol.size = s;
        }
        Ok(vol)
    }

    /// Create an instance.
    pub fn create_instance(&mut self, project_id: u64, name: impl Into<String>) -> Option<u64> {
        let id = self.next_instance_id;
        let project = self.projects.get_mut(&project_id)?;
        self.next_instance_id += self.id_stride;
        project.instances.push(Instance {
            id,
            name: name.into(),
            volumes: Vec::new(),
        });
        Some(id)
    }

    /// Attach a volume to an instance, flipping its status to `in-use`.
    ///
    /// # Errors
    ///
    /// [`StateError`] when either side is missing or the volume is already
    /// attached.
    pub fn attach(
        &mut self,
        project_id: u64,
        instance_id: u64,
        volume_id: u64,
    ) -> Result<(), StateError> {
        let project = self
            .projects
            .get_mut(&project_id)
            .ok_or(StateError::NoSuchInstance(instance_id))?;
        if project.instance(instance_id).is_none() {
            return Err(StateError::NoSuchInstance(instance_id));
        }
        let vol = project
            .volumes
            .iter_mut()
            .find(|v| v.id == volume_id)
            .ok_or(StateError::NoSuchVolume(volume_id))?;
        if vol.status == VolumeStatus::InUse {
            return Err(StateError::VolumeInUse(volume_id));
        }
        vol.status = VolumeStatus::InUse;
        vol.attached_to = Some(instance_id);
        let inst = project
            .instances
            .iter_mut()
            .find(|i| i.id == instance_id)
            .expect("checked above");
        inst.volumes.push(volume_id);
        Ok(())
    }

    /// Create a snapshot of a volume.
    ///
    /// # Errors
    ///
    /// [`StateError::NoSuchVolume`] when the volume does not exist.
    pub fn create_snapshot(
        &mut self,
        project_id: u64,
        volume_id: u64,
        name: impl Into<String>,
    ) -> Result<&Snapshot, StateError> {
        let next_id = self.next_snapshot_id;
        let project = self
            .projects
            .get_mut(&project_id)
            .ok_or(StateError::NoSuchVolume(volume_id))?;
        if project.volumes.iter().all(|v| v.id != volume_id) {
            return Err(StateError::NoSuchVolume(volume_id));
        }
        self.next_snapshot_id += self.id_stride;
        project.snapshots.push(Snapshot {
            id: next_id,
            name: name.into(),
            volume_id,
            status: VolumeStatus::Available,
        });
        Ok(project.snapshots.last().expect("just pushed"))
    }

    /// Delete a snapshot.
    ///
    /// # Errors
    ///
    /// [`StateError::NoSuchSnapshot`].
    pub fn delete_snapshot(
        &mut self,
        project_id: u64,
        snapshot_id: u64,
    ) -> Result<Snapshot, StateError> {
        let project = self
            .projects
            .get_mut(&project_id)
            .ok_or(StateError::NoSuchSnapshot(snapshot_id))?;
        let idx = project
            .snapshots
            .iter()
            .position(|s| s.id == snapshot_id)
            .ok_or(StateError::NoSuchSnapshot(snapshot_id))?;
        Ok(project.snapshots.remove(idx))
    }

    /// Detach a volume from its instance, flipping status back to
    /// `available`.
    ///
    /// # Errors
    ///
    /// [`StateError::NoSuchVolume`] when missing or not attached.
    pub fn detach(&mut self, project_id: u64, volume_id: u64) -> Result<(), StateError> {
        let project = self
            .projects
            .get_mut(&project_id)
            .ok_or(StateError::NoSuchVolume(volume_id))?;
        let vol = project
            .volumes
            .iter_mut()
            .find(|v| v.id == volume_id)
            .ok_or(StateError::NoSuchVolume(volume_id))?;
        let Some(instance_id) = vol.attached_to.take() else {
            return Err(StateError::NoSuchVolume(volume_id));
        };
        vol.status = VolumeStatus::Available;
        if let Some(inst) = project.instances.iter_mut().find(|i| i.id == instance_id) {
            inst.volumes.retain(|v| *v != volume_id);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with_project() -> CloudState {
        let mut s = CloudState::new();
        s.add_project(1, 2);
        s
    }

    #[test]
    fn create_volume_respects_quota() {
        let mut s = state_with_project();
        s.create_volume(1, "v1", 10, false).unwrap();
        s.create_volume(1, "v2", 10, false).unwrap();
        let err = s.create_volume(1, "v3", 10, false).unwrap_err();
        assert_eq!(
            err,
            StateError::QuotaExceeded {
                current: 2,
                quota: 2
            }
        );
    }

    #[test]
    fn ignore_quota_fault_bypasses_check() {
        let mut s = state_with_project();
        s.create_volume(1, "v1", 10, false).unwrap();
        s.create_volume(1, "v2", 10, false).unwrap();
        assert!(s.create_volume(1, "v3", 10, true).is_ok());
        assert_eq!(s.project(1).unwrap().volumes.len(), 3);
    }

    #[test]
    fn delete_available_volume() {
        let mut s = state_with_project();
        let id = s.create_volume(1, "v", 10, false).unwrap().id;
        let vol = s.delete_volume(1, id, false).unwrap();
        assert_eq!(vol.id, id);
        assert!(s.project(1).unwrap().volumes.is_empty());
    }

    #[test]
    fn delete_in_use_volume_rejected() {
        let mut s = state_with_project();
        let vid = s.create_volume(1, "v", 10, false).unwrap().id;
        let iid = s.create_instance(1, "server").unwrap();
        s.attach(1, iid, vid).unwrap();
        assert_eq!(
            s.delete_volume(1, vid, false),
            Err(StateError::VolumeInUse(vid))
        );
        // Force-delete with fault injection works and detaches.
        let vol = s.delete_volume(1, vid, true).unwrap();
        assert_eq!(vol.status, VolumeStatus::InUse);
        assert!(s
            .project(1)
            .unwrap()
            .instance(iid)
            .unwrap()
            .volumes
            .is_empty());
    }

    #[test]
    fn attach_and_detach_cycle() {
        let mut s = state_with_project();
        let vid = s.create_volume(1, "v", 10, false).unwrap().id;
        let iid = s.create_instance(1, "server").unwrap();
        s.attach(1, iid, vid).unwrap();
        assert_eq!(
            s.project(1).unwrap().volume(vid).unwrap().status,
            VolumeStatus::InUse
        );
        // double-attach rejected
        assert!(s.attach(1, iid, vid).is_err());
        s.detach(1, vid).unwrap();
        assert_eq!(
            s.project(1).unwrap().volume(vid).unwrap().status,
            VolumeStatus::Available
        );
        // detaching an unattached volume errors
        assert!(s.detach(1, vid).is_err());
    }

    #[test]
    fn update_volume_fields() {
        let mut s = state_with_project();
        let vid = s.create_volume(1, "v", 10, false).unwrap().id;
        let v = s
            .update_volume(1, vid, Some("renamed".into()), Some(20))
            .unwrap();
        assert_eq!(v.name, "renamed");
        assert_eq!(v.size, 20);
        assert!(s.update_volume(1, 999, None, None).is_err());
    }

    #[test]
    fn volume_ids_are_globally_unique() {
        let mut s = CloudState::new();
        s.add_project(1, 5);
        s.add_project(2, 5);
        let a = s.create_volume(1, "a", 1, false).unwrap().id;
        let b = s.create_volume(2, "b", 1, false).unwrap().id;
        assert_ne!(a, b);
    }

    #[test]
    fn set_quota() {
        let mut s = state_with_project();
        assert!(s.set_quota(1, 10));
        assert!(!s.set_quota(99, 10));
        assert_eq!(s.project(1).unwrap().volume_quota, 10);
    }

    #[test]
    fn strided_allocators_never_collide() {
        let mut a = CloudState::with_ids(1, 2);
        let mut b = CloudState::with_ids(2, 2);
        a.add_project(1, 5);
        b.add_project(2, 5);
        let a_ids: Vec<u64> = (0..3)
            .map(|_| a.create_volume(1, "a", 1, false).unwrap().id)
            .collect();
        let b_ids: Vec<u64> = (0..3)
            .map(|_| b.create_volume(2, "b", 1, false).unwrap().id)
            .collect();
        assert_eq!(a_ids, vec![1, 3, 5]);
        assert_eq!(b_ids, vec![2, 4, 6]);
    }

    #[test]
    fn unknown_project_operations_fail() {
        let mut s = CloudState::new();
        assert!(s.create_volume(9, "v", 1, false).is_err());
        assert!(s.delete_volume(9, 1, false).is_err());
        assert!(s.create_instance(9, "i").is_none());
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    fn state() -> (CloudState, u64) {
        let mut s = CloudState::new();
        s.add_project(1, 5);
        let vid = s.create_volume(1, "v", 1, false).unwrap().id;
        (s, vid)
    }

    #[test]
    fn create_list_delete_snapshot() {
        let (mut s, vid) = state();
        let sid = s.create_snapshot(1, vid, "snap1").unwrap().id;
        s.create_snapshot(1, vid, "snap2").unwrap();
        assert_eq!(s.project(1).unwrap().snapshots_of(vid).count(), 2);
        let removed = s.delete_snapshot(1, sid).unwrap();
        assert_eq!(removed.name, "snap1");
        assert_eq!(s.project(1).unwrap().snapshots_of(vid).count(), 1);
    }

    #[test]
    fn snapshot_of_missing_volume_fails() {
        let (mut s, _) = state();
        assert_eq!(
            s.create_snapshot(1, 999, "x"),
            Err(StateError::NoSuchVolume(999))
        );
    }

    #[test]
    fn delete_missing_snapshot_fails() {
        let (mut s, _) = state();
        assert_eq!(s.delete_snapshot(1, 7), Err(StateError::NoSuchSnapshot(7)));
    }

    #[test]
    fn volume_with_snapshots_cannot_be_deleted() {
        let (mut s, vid) = state();
        let sid = s.create_snapshot(1, vid, "snap").unwrap().id;
        assert_eq!(
            s.delete_volume(1, vid, false),
            Err(StateError::VolumeHasSnapshots(vid))
        );
        s.delete_snapshot(1, sid).unwrap();
        assert!(s.delete_volume(1, vid, false).is_ok());
    }

    #[test]
    fn snapshot_ids_are_global() {
        let mut s = CloudState::new();
        s.add_project(1, 5);
        s.add_project(2, 5);
        let v1 = s.create_volume(1, "a", 1, false).unwrap().id;
        let v2 = s.create_volume(2, "b", 1, false).unwrap().id;
        let s1 = s.create_snapshot(1, v1, "x").unwrap().id;
        let s2 = s.create_snapshot(2, v2, "y").unwrap().id;
        assert_ne!(s1, s2);
    }
}
