//! The simulated private cloud: Keystone + Cinder + Nova-lite behind one
//! REST surface.
//!
//! [`PrivateCloud`] implements [`SharedRestService`]; the cloud monitor
//! wraps it exactly as it would wrap a live OpenStack deployment,
//! observing only URIs, methods, status codes and JSON bodies.
//! Authorization follows the `policy.json` rules compiled from the
//! paper's Table I; an injected [`FaultPlan`] distorts the implementation
//! to reproduce the mutation experiment of Section VI-D.
//!
//! ## Concurrency
//!
//! The cloud is callable from many threads through a shared reference.
//! The data plane is sharded by project id (`shard(pid) = (pid - 1) mod
//! n`): each [`CloudState`] shard sits behind its own mutex, so requests
//! against different projects proceed in parallel while requests against
//! the same project serialize — exactly the per-resource atomicity the
//! monitor's snapshot/post-check protocol assumes. Identity sits behind a
//! read-write lock (reads dominate), the token service behind one mutex.
//! Lock order is always keystone → identity; shard locks never nest.

use crate::faults::FaultPlan;
use crate::state::{CloudState, StateError, Volume};
use cm_model::HttpMethod;
use cm_rbac::{
    cinder_table1, my_project_fixture, DefaultDecision, IdentityStore, PolicyFile, Rule, TokenInfo,
    TokenService, UserGroup,
};
use cm_rest::{Json, RestRequest, RestResponse, SharedRestService, StatusCode};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Default volume quota for the fixture project (small, so the paper's
/// full-quota state is reachable in tests).
pub const DEFAULT_VOLUME_QUOTA: u32 = 3;

/// The simulated private cloud.
#[derive(Debug)]
pub struct PrivateCloud {
    identity: RwLock<IdentityStore>,
    keystone: Mutex<TokenService>,
    shards: Box<[Mutex<CloudState>]>,
    policy: PolicyFile,
    faults: FaultPlan,
    project_id: u64,
}

impl Clone for PrivateCloud {
    fn clone(&self) -> Self {
        PrivateCloud {
            identity: RwLock::new(self.identity.read().unwrap().clone()),
            keystone: Mutex::new(self.keystone.lock().unwrap().clone()),
            shards: self
                .shards
                .iter()
                .map(|s| Mutex::new(s.lock().unwrap().clone()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            policy: self.policy.clone(),
            faults: self.faults.clone(),
            project_id: self.project_id,
        }
    }
}

/// The Table I policy plus the extra endpoints the simulator serves.
fn fixture_policy() -> PolicyFile {
    let mut policy = cinder_table1().to_policy();
    policy
        .set("project:get", Rule::Always)
        .set("quota_sets:get", Rule::Always)
        .set("quota_sets:put", Rule::role("admin"))
        .set("usergroup:get", Rule::Always)
        .set("server:post", Rule::any_role(["admin", "member"]))
        .set("server:attach", Rule::any_role(["admin", "member"]))
        .set("server:detach", Rule::any_role(["admin", "member"]))
        .set("snapshot:get", Rule::any_role(["admin", "member", "user"]))
        .set("snapshot:post", Rule::any_role(["admin", "member"]))
        .set("snapshot:delete", Rule::role("admin"));
    policy
}

/// The three Table I usergroups.
fn table1_groups() -> Vec<UserGroup> {
    vec![
        UserGroup {
            name: "proj_administrator".into(),
            role: "admin".into(),
        },
        UserGroup {
            name: "service_architect".into(),
            role: "member".into(),
        },
        UserGroup {
            name: "business_analyst".into(),
            role: "user".into(),
        },
    ]
}

impl PrivateCloud {
    /// Build the paper's `myProject` deployment: three usergroups/roles
    /// (Table I), one project, the Table I policy, and an empty volume
    /// store with [`DEFAULT_VOLUME_QUOTA`].
    #[must_use]
    pub fn my_project() -> PrivateCloud {
        let (identity, project_id) = my_project_fixture();
        let mut state = CloudState::new();
        state.add_project(project_id, DEFAULT_VOLUME_QUOTA);
        PrivateCloud {
            identity: RwLock::new(identity),
            keystone: Mutex::new(TokenService::new()),
            shards: vec![Mutex::new(state)].into_boxed_slice(),
            policy: fixture_policy(),
            faults: FaultPlan::none(),
            project_id,
        }
    }

    /// Build a deployment with `n` projects (`project1` … `projectN`, ids
    /// `1..=n`), each on its own data-plane shard. The fixture users hold
    /// their Table I roles in every project, so a token can be scoped to
    /// any of them. Shard id allocators are strided so volume, snapshot
    /// and instance ids stay globally unique without coordination.
    ///
    /// # Panics
    ///
    /// Panics only on an internal fixture bug (duplicate names).
    #[must_use]
    pub fn multi_project(n: usize) -> PrivateCloud {
        let n = n.max(1);
        let mut identity = IdentityStore::new();
        for k in 1..=n {
            identity
                .create_project(format!("project{k}"), table1_groups())
                .expect("fixture project names are unique");
        }
        for (user, group) in [
            ("alice", "proj_administrator"),
            ("bob", "service_architect"),
            ("carol", "business_analyst"),
            ("mallory", "outsiders"),
        ] {
            identity
                .create_user(user, format!("{user}-pw"), vec![group.into()])
                .expect("fixture user names are unique");
        }
        let shards: Vec<Mutex<CloudState>> = (0..n)
            .map(|k| {
                let mut state = CloudState::with_ids(k as u64 + 1, n as u64);
                state.add_project(k as u64 + 1, DEFAULT_VOLUME_QUOTA);
                Mutex::new(state)
            })
            .collect();
        PrivateCloud {
            identity: RwLock::new(identity),
            keystone: Mutex::new(TokenService::new()),
            shards: shards.into_boxed_slice(),
            policy: fixture_policy(),
            faults: FaultPlan::none(),
            project_id: 1,
        }
    }

    /// Replace the fault plan (build a mutant cloud).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> PrivateCloud {
        self.faults = faults;
        self
    }

    /// The fixture project's id.
    #[must_use]
    pub fn project_id(&self) -> u64 {
        self.project_id
    }

    /// Number of data-plane shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `project_id`'s data plane.
    fn shard(&self, project_id: u64) -> &Mutex<CloudState> {
        let idx = (project_id as usize).wrapping_sub(1) % self.shards.len();
        &self.shards[idx]
    }

    /// Locked access to the fixture project's data-plane shard (tests and
    /// state probes). The guard derefs to [`CloudState`]; do not hold two
    /// shard guards from one expression — the shard mutex is not
    /// reentrant.
    pub fn state(&self) -> MutexGuard<'_, CloudState> {
        self.shard(self.project_id).lock().unwrap()
    }

    /// Locked mutable access to the fixture shard (scenario setup in
    /// tests). Identical to [`PrivateCloud::state`] — the guard is always
    /// writable — but kept as a separate name so intent stays visible at
    /// call sites.
    pub fn state_mut(&self) -> MutexGuard<'_, CloudState> {
        self.state()
    }

    /// Locked access to the shard holding `project_id`.
    pub fn state_of(&self, project_id: u64) -> MutexGuard<'_, CloudState> {
        self.shard(project_id).lock().unwrap()
    }

    /// Mutate cloud state **behind the monitored REST API** — the cloud
    /// equivalent of an operator SSH-ing into the box, or malware
    /// editing the database directly. The monitor never sees a request
    /// for this change; only an anti-entropy reconciliation pass can
    /// surface it as drift. Locks the owning shard for the duration of
    /// the closure, so the mutation is atomic with respect to monitored
    /// traffic.
    pub fn mutate_out_of_band<R>(
        &self,
        project_id: u64,
        f: impl FnOnce(&mut CloudState) -> R,
    ) -> R {
        let mut guard = self.state_of(project_id);
        f(&mut guard)
    }

    /// Read access to the identity store.
    pub fn identity(&self) -> RwLockReadGuard<'_, IdentityStore> {
        self.identity.read().unwrap()
    }

    /// Write access to the identity store (fault injection).
    pub fn identity_mut(&self) -> RwLockWriteGuard<'_, IdentityStore> {
        self.identity.write().unwrap()
    }

    /// Read access to the active policy.
    #[must_use]
    pub fn policy(&self) -> &PolicyFile {
        &self.policy
    }

    /// Advance the Keystone logical clock (token-expiry scenarios).
    pub fn advance_time(&self, ticks: u64) {
        self.keystone.lock().unwrap().advance_time(ticks);
    }

    /// Replace the Keystone token lifetime (in logical ticks).
    #[must_use]
    pub fn with_token_lifetime(mut self, ticks: u64) -> PrivateCloud {
        self.keystone = Mutex::new(TokenService::new().with_lifetime(ticks));
        self
    }

    /// Convenience: authenticate and return a token scoped to the fixture
    /// project.
    ///
    /// # Errors
    ///
    /// Propagates [`cm_rbac::TokenError`] for bad credentials.
    pub fn issue_token(
        &self,
        user: &str,
        password: &str,
    ) -> Result<TokenInfo, cm_rbac::TokenError> {
        self.issue_token_scoped(user, password, self.project_id)
    }

    /// Authenticate and return a token scoped to an arbitrary project
    /// (multi-project deployments).
    ///
    /// # Errors
    ///
    /// Propagates [`cm_rbac::TokenError`] for bad credentials or an
    /// unknown project.
    pub fn issue_token_scoped(
        &self,
        user: &str,
        password: &str,
        project_id: u64,
    ) -> Result<TokenInfo, cm_rbac::TokenError> {
        self.keystone.lock().unwrap().issue(
            &self.identity.read().unwrap(),
            user,
            password,
            project_id,
        )
    }

    /// Authorization decision for `action` under the fault plan.
    fn authorize(&self, action: &str, token: &TokenInfo) -> bool {
        if self.faults.skips_auth(action) {
            return true;
        }
        let decision = match self.faults.policy_override(action) {
            Some(rule) => rule.check(token),
            None => self.policy.check(action, token, DefaultDecision::Deny),
        };
        if self.faults.inverts_auth(action) {
            !decision
        } else {
            decision
        }
    }

    fn validate_token(&self, request: &RestRequest) -> Result<TokenInfo, RestResponse> {
        let token = request
            .token()
            .ok_or_else(|| RestResponse::error(StatusCode::UNAUTHORIZED, "missing X-Auth-Token"))?;
        self.keystone
            .lock()
            .unwrap()
            .validate(&self.identity.read().unwrap(), token)
            .map_err(|_| RestResponse::error(StatusCode::UNAUTHORIZED, "invalid token"))
    }

    fn volume_json(volume: &Volume) -> Json {
        Json::object(vec![
            ("id", Json::Int(volume.id as i64)),
            ("name", Json::Str(volume.name.clone())),
            ("size", Json::Int(volume.size)),
            ("status", Json::Str(volume.status.to_string())),
            (
                "attached_to",
                match volume.attached_to {
                    Some(i) => Json::Int(i as i64),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Apply latency and wrong-status-code faults to a response. Called
    /// while the project's shard lock is held, so an injected delay
    /// serializes same-project requests (a slow backend slows *that*
    /// project) while other shards proceed.
    fn finish(&self, action: &str, response: RestResponse) -> RestResponse {
        if let Some(millis) = self.faults.delay_ms(action) {
            std::thread::sleep(Duration::from_millis(millis));
        }
        if response.status.is_success() {
            if let Some(code) = self.faults.wrong_status(action) {
                return RestResponse {
                    status: StatusCode(code),
                    ..response
                };
            }
        }
        response
    }

    // ----- identity endpoints -------------------------------------------

    fn handle_auth(&self, request: &RestRequest) -> RestResponse {
        let Some(body) = &request.body else {
            return RestResponse::error(StatusCode::BAD_REQUEST, "missing auth body");
        };
        let auth = body.get("auth").unwrap_or(body);
        let (Some(user), Some(password)) = (
            auth.get("user").and_then(Json::as_str),
            auth.get("password").and_then(Json::as_str),
        ) else {
            return RestResponse::error(StatusCode::BAD_REQUEST, "missing user/password");
        };
        let project_id = auth
            .get("project_id")
            .and_then(Json::as_int)
            .map_or(self.project_id, |v| v as u64);
        match self.keystone.lock().unwrap().issue(
            &self.identity.read().unwrap(),
            user,
            password,
            project_id,
        ) {
            Ok(info) => RestResponse::created(Self::token_json(&info)),
            Err(cm_rbac::TokenError::UnknownProject(_)) => {
                RestResponse::error(StatusCode::NOT_FOUND, "unknown project")
            }
            Err(_) => RestResponse::error(StatusCode::UNAUTHORIZED, "invalid credentials"),
        }
    }

    fn token_json(info: &TokenInfo) -> Json {
        Json::object(vec![(
            "token",
            Json::object(vec![
                ("id", Json::Str(info.token.clone())),
                ("user_id", Json::Int(info.user_id as i64)),
                ("user", Json::Str(info.user_name.clone())),
                ("project_id", Json::Int(info.project_id as i64)),
                (
                    "roles",
                    Json::Array(info.roles.iter().map(|r| Json::Str(r.clone())).collect()),
                ),
                (
                    "groups",
                    Json::Array(info.groups.iter().map(|g| Json::Str(g.clone())).collect()),
                ),
            ]),
        )])
    }

    fn handle_token_lookup(&self, token: &str) -> RestResponse {
        match self
            .keystone
            .lock()
            .unwrap()
            .validate(&self.identity.read().unwrap(), token)
        {
            Ok(info) => RestResponse::ok(Self::token_json(&info)),
            Err(_) => RestResponse::error(StatusCode::NOT_FOUND, "unknown token"),
        }
    }

    // ----- block-storage endpoints --------------------------------------

    fn handle_project_get(&self, project_id: u64) -> RestResponse {
        let identity = self.identity.read().unwrap();
        match identity.project(project_id) {
            Some(p) => RestResponse::ok(Json::object(vec![(
                "project",
                Json::object(vec![
                    ("id", Json::Int(p.id as i64)),
                    ("name", Json::Str(p.name.clone())),
                ]),
            )])),
            None => RestResponse::error(StatusCode::NOT_FOUND, "no such project"),
        }
    }

    fn handle_volumes_list(&self, state: &CloudState, project_id: u64) -> RestResponse {
        match state.project(project_id) {
            Some(p) => RestResponse::ok(Json::object(vec![(
                "volumes",
                Json::Array(p.volumes.iter().map(Self::volume_json).collect()),
            )])),
            None => RestResponse::error(StatusCode::NOT_FOUND, "no such project"),
        }
    }

    fn handle_volume_get(
        &self,
        state: &CloudState,
        project_id: u64,
        volume_id: u64,
    ) -> RestResponse {
        match state.project(project_id).and_then(|p| p.volume(volume_id)) {
            Some(v) => RestResponse::ok(Json::object(vec![("volume", Self::volume_json(v))])),
            None => RestResponse::error(StatusCode::NOT_FOUND, "no such volume"),
        }
    }

    fn handle_volume_create(
        &self,
        state: &mut CloudState,
        project_id: u64,
        request: &RestRequest,
    ) -> RestResponse {
        let spec = request.body.as_ref().and_then(|b| b.get("volume"));
        let name = spec
            .and_then(|v| v.get("name"))
            .and_then(Json::as_str)
            .unwrap_or("volume")
            .to_string();
        let size = spec
            .and_then(|v| v.get("size"))
            .and_then(Json::as_int)
            .unwrap_or(1);
        if self.faults.drops_state_change("volume:post") {
            // Lost update: report success without creating anything.
            return RestResponse::created(Json::object(vec![(
                "volume",
                Json::object(vec![("id", Json::Null), ("name", Json::Str(name))]),
            )]));
        }
        match state.create_volume(project_id, name, size, self.faults.ignores_quota()) {
            Ok(v) => RestResponse::created(Json::object(vec![("volume", Self::volume_json(v))])),
            Err(StateError::QuotaExceeded { current, quota }) => RestResponse::error(
                StatusCode::OVER_LIMIT,
                format!("volume quota exceeded ({current}/{quota})"),
            ),
            Err(e) => RestResponse::error(StatusCode::NOT_FOUND, e.to_string()),
        }
    }

    fn handle_volume_update(
        &self,
        state: &mut CloudState,
        project_id: u64,
        volume_id: u64,
        request: &RestRequest,
    ) -> RestResponse {
        let spec = request.body.as_ref().and_then(|b| b.get("volume"));
        let name = spec
            .and_then(|v| v.get("name"))
            .and_then(Json::as_str)
            .map(str::to_string);
        let size = spec.and_then(|v| v.get("size")).and_then(Json::as_int);
        if self.faults.drops_state_change("volume:put") {
            return self.handle_volume_get(state, project_id, volume_id);
        }
        match state.update_volume(project_id, volume_id, name, size) {
            Ok(v) => RestResponse::ok(Json::object(vec![("volume", Self::volume_json(v))])),
            Err(e) => RestResponse::error(StatusCode::NOT_FOUND, e.to_string()),
        }
    }

    fn handle_volume_delete(
        &self,
        state: &mut CloudState,
        project_id: u64,
        volume_id: u64,
    ) -> RestResponse {
        if self.faults.drops_state_change("volume:delete") {
            return RestResponse::no_content();
        }
        match state.delete_volume(project_id, volume_id, self.faults.ignores_in_use()) {
            Ok(_) => RestResponse::no_content(),
            Err(StateError::VolumeInUse(id)) => {
                RestResponse::error(StatusCode::CONFLICT, format!("volume {id} is in-use"))
            }
            Err(StateError::VolumeHasSnapshots(id)) => RestResponse::error(
                StatusCode::CONFLICT,
                format!("volume {id} still has snapshots"),
            ),
            Err(e) => RestResponse::error(StatusCode::NOT_FOUND, e.to_string()),
        }
    }

    fn snapshot_json(snapshot: &crate::state::Snapshot) -> Json {
        Json::object(vec![
            ("id", Json::Int(snapshot.id as i64)),
            ("name", Json::Str(snapshot.name.clone())),
            ("volume_id", Json::Int(snapshot.volume_id as i64)),
            ("status", Json::Str(snapshot.status.to_string())),
        ])
    }

    fn handle_snapshots_list(
        &self,
        state: &CloudState,
        project_id: u64,
        volume_id: u64,
    ) -> RestResponse {
        match state.project(project_id) {
            Some(p) if p.volume(volume_id).is_some() => RestResponse::ok(Json::object(vec![(
                "snapshots",
                Json::Array(p.snapshots_of(volume_id).map(Self::snapshot_json).collect()),
            )])),
            _ => RestResponse::error(StatusCode::NOT_FOUND, "no such volume"),
        }
    }

    fn handle_snapshot_get(
        &self,
        state: &CloudState,
        project_id: u64,
        volume_id: u64,
        snapshot_id: u64,
    ) -> RestResponse {
        match state
            .project(project_id)
            .and_then(|p| p.snapshot(snapshot_id))
            .filter(|s| s.volume_id == volume_id)
        {
            Some(snap) => {
                RestResponse::ok(Json::object(vec![("snapshot", Self::snapshot_json(snap))]))
            }
            None => RestResponse::error(StatusCode::NOT_FOUND, "no such snapshot"),
        }
    }

    fn handle_snapshot_create(
        &self,
        state: &mut CloudState,
        project_id: u64,
        volume_id: u64,
        request: &RestRequest,
    ) -> RestResponse {
        let name = request
            .body
            .as_ref()
            .and_then(|b| b.get("snapshot"))
            .and_then(|v| v.get("name"))
            .and_then(Json::as_str)
            .unwrap_or("snapshot")
            .to_string();
        if self.faults.drops_state_change("snapshot:post") {
            return RestResponse::created(Json::object(vec![(
                "snapshot",
                Json::object(vec![("id", Json::Null), ("name", Json::Str(name))]),
            )]));
        }
        match state.create_snapshot(project_id, volume_id, name) {
            Ok(snap) => {
                RestResponse::created(Json::object(vec![("snapshot", Self::snapshot_json(snap))]))
            }
            Err(e) => RestResponse::error(StatusCode::NOT_FOUND, e.to_string()),
        }
    }

    fn handle_snapshot_delete(
        &self,
        state: &mut CloudState,
        project_id: u64,
        volume_id: u64,
        snapshot_id: u64,
    ) -> RestResponse {
        if self.faults.drops_state_change("snapshot:delete") {
            return RestResponse::no_content();
        }
        let belongs = state
            .project(project_id)
            .and_then(|p| p.snapshot(snapshot_id))
            .is_some_and(|s| s.volume_id == volume_id);
        if !belongs {
            return RestResponse::error(StatusCode::NOT_FOUND, "no such snapshot");
        }
        match state.delete_snapshot(project_id, snapshot_id) {
            Ok(_) => RestResponse::no_content(),
            Err(e) => RestResponse::error(StatusCode::NOT_FOUND, e.to_string()),
        }
    }

    fn handle_quota_get(&self, state: &CloudState, project_id: u64) -> RestResponse {
        match state.project(project_id) {
            Some(p) => RestResponse::ok(Json::object(vec![(
                "quota_set",
                Json::object(vec![("volume", Json::Int(i64::from(p.volume_quota)))]),
            )])),
            None => RestResponse::error(StatusCode::NOT_FOUND, "no such project"),
        }
    }

    fn handle_quota_put(
        &self,
        state: &mut CloudState,
        project_id: u64,
        request: &RestRequest,
    ) -> RestResponse {
        let quota = request
            .body
            .as_ref()
            .and_then(|b| b.get("quota_set"))
            .and_then(|q| q.get("volume"))
            .and_then(Json::as_int);
        let Some(quota) = quota else {
            return RestResponse::error(StatusCode::BAD_REQUEST, "missing quota_set.volume");
        };
        if quota < 0 {
            return RestResponse::error(StatusCode::BAD_REQUEST, "negative quota");
        }
        if state.set_quota(project_id, quota as u32) {
            self.handle_quota_get(state, project_id)
        } else {
            RestResponse::error(StatusCode::NOT_FOUND, "no such project")
        }
    }

    fn handle_usergroups_get(&self, project_id: u64) -> RestResponse {
        let identity = self.identity.read().unwrap();
        match identity.project(project_id) {
            Some(p) => RestResponse::ok(Json::object(vec![(
                "usergroups",
                Json::Array(
                    p.groups
                        .iter()
                        .map(|g| {
                            Json::object(vec![
                                ("name", Json::Str(g.name.clone())),
                                ("role", Json::Str(g.role.clone())),
                            ])
                        })
                        .collect(),
                ),
            )])),
            None => RestResponse::error(StatusCode::NOT_FOUND, "no such project"),
        }
    }

    // ----- compute endpoints --------------------------------------------

    fn handle_server_create(
        &self,
        state: &mut CloudState,
        project_id: u64,
        request: &RestRequest,
    ) -> RestResponse {
        let name = request
            .body
            .as_ref()
            .and_then(|b| b.get("server"))
            .and_then(|s| s.get("name"))
            .and_then(Json::as_str)
            .unwrap_or("server")
            .to_string();
        match state.create_instance(project_id, name) {
            Some(id) => RestResponse::created(Json::object(vec![(
                "server",
                Json::object(vec![("id", Json::Int(id as i64))]),
            )])),
            None => RestResponse::error(StatusCode::NOT_FOUND, "no such project"),
        }
    }

    fn handle_attach(
        &self,
        state: &mut CloudState,
        project_id: u64,
        server_id: u64,
        request: &RestRequest,
        detach: bool,
    ) -> RestResponse {
        let volume_id = request
            .body
            .as_ref()
            .and_then(|b| b.get("volume_id"))
            .and_then(Json::as_int);
        let Some(volume_id) = volume_id else {
            return RestResponse::error(StatusCode::BAD_REQUEST, "missing volume_id");
        };
        let result = if detach {
            state.detach(project_id, volume_id as u64)
        } else {
            state.attach(project_id, server_id, volume_id as u64)
        };
        match result {
            Ok(()) => RestResponse::status(StatusCode::ACCEPTED),
            Err(StateError::VolumeInUse(id)) => {
                RestResponse::error(StatusCode::CONFLICT, format!("volume {id} is in-use"))
            }
            Err(e) => RestResponse::error(StatusCode::NOT_FOUND, e.to_string()),
        }
    }

    /// Dispatch one request (the [`SharedRestService`] entry point).
    ///
    /// Identity endpoints never touch the data plane. Everything else
    /// resolves the project id from the path and takes that project's
    /// shard lock exactly once, for the whole request — handlers receive
    /// the locked [`CloudState`] as a parameter and never re-lock (the
    /// shard mutex is not reentrant).
    #[allow(clippy::too_many_lines)]
    fn dispatch(&self, request: &RestRequest) -> RestResponse {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();

        // Identity endpoints.
        if segments.first() == Some(&"identity") {
            return match (request.method, segments.as_slice()) {
                (HttpMethod::Post, ["identity", "auth", "tokens"]) => self.handle_auth(request),
                (HttpMethod::Get, ["identity", "tokens", token]) => self.handle_token_lookup(token),
                _ => RestResponse::error(StatusCode::NOT_FOUND, "no such identity endpoint"),
            };
        }

        // Everything else requires a valid token.
        let token = match self.validate_token(request) {
            Ok(t) => t,
            Err(resp) => return resp,
        };

        // Compute endpoints: /compute/{project_id}/servers…
        if segments.first() == Some(&"compute") {
            let Some(project_id) = segments.get(1).and_then(|s| s.parse::<u64>().ok()) else {
                return RestResponse::error(StatusCode::BAD_REQUEST, "bad project id");
            };
            if token.project_id != project_id {
                return RestResponse::error(StatusCode::FORBIDDEN, "token not scoped to project");
            }
            let mut state = self.shard(project_id).lock().unwrap();
            return match (request.method, &segments[2..]) {
                (HttpMethod::Post, ["servers"]) => {
                    if !self.authorize("server:post", &token) {
                        return RestResponse::error(StatusCode::FORBIDDEN, "server:post denied");
                    }
                    let resp = self.handle_server_create(&mut state, project_id, request);
                    self.finish("server:post", resp)
                }
                (HttpMethod::Post, ["servers", sid, verb @ ("attach" | "detach")]) => {
                    let action = format!("server:{verb}");
                    if !self.authorize(&action, &token) {
                        return RestResponse::error(
                            StatusCode::FORBIDDEN,
                            format!("{action} denied"),
                        );
                    }
                    let Ok(server_id) = sid.parse::<u64>() else {
                        return RestResponse::error(StatusCode::BAD_REQUEST, "bad server id");
                    };
                    let detach = *verb == "detach";
                    let resp =
                        self.handle_attach(&mut state, project_id, server_id, request, detach);
                    self.finish(&action, resp)
                }
                _ => RestResponse::error(StatusCode::NOT_FOUND, "no such compute endpoint"),
            };
        }

        // Block-storage endpoints: /v3/{project_id}/…
        if segments.first() != Some(&"v3") {
            return RestResponse::error(StatusCode::NOT_FOUND, "no such service");
        }
        let Some(project_id) = segments.get(1).and_then(|s| s.parse::<u64>().ok()) else {
            return RestResponse::error(StatusCode::BAD_REQUEST, "bad project id");
        };
        if token.project_id != project_id {
            return RestResponse::error(StatusCode::FORBIDDEN, "token not scoped to project");
        }

        let mut state = self.shard(project_id).lock().unwrap();
        let (action, response) = match (request.method, &segments[2..]) {
            (HttpMethod::Get, []) => {
                let action = "project:get";
                if !self.authorize(action, &token) {
                    return RestResponse::error(StatusCode::FORBIDDEN, "project:get denied");
                }
                (action, self.handle_project_get(project_id))
            }
            (HttpMethod::Get, ["volumes"]) => {
                let action = "volume:get";
                if !self.authorize(action, &token) {
                    return RestResponse::error(StatusCode::FORBIDDEN, "volume:get denied");
                }
                (action, self.handle_volumes_list(&state, project_id))
            }
            (HttpMethod::Post, ["volumes"]) => {
                let action = "volume:post";
                if !self.authorize(action, &token) {
                    return RestResponse::error(StatusCode::FORBIDDEN, "volume:post denied");
                }
                (
                    action,
                    self.handle_volume_create(&mut state, project_id, request),
                )
            }
            (method, ["volumes", vid, "snapshots"]) => {
                let Ok(volume_id) = vid.parse::<u64>() else {
                    return RestResponse::error(StatusCode::BAD_REQUEST, "bad volume id");
                };
                match method {
                    HttpMethod::Get => {
                        let action = "snapshot:get";
                        if !self.authorize(action, &token) {
                            return RestResponse::error(
                                StatusCode::FORBIDDEN,
                                "snapshot:get denied",
                            );
                        }
                        (
                            action,
                            self.handle_snapshots_list(&state, project_id, volume_id),
                        )
                    }
                    HttpMethod::Post => {
                        let action = "snapshot:post";
                        if !self.authorize(action, &token) {
                            return RestResponse::error(
                                StatusCode::FORBIDDEN,
                                "snapshot:post denied",
                            );
                        }
                        (
                            action,
                            self.handle_snapshot_create(&mut state, project_id, volume_id, request),
                        )
                    }
                    _ => {
                        return RestResponse::error(
                            StatusCode::METHOD_NOT_ALLOWED,
                            "only GET/POST allowed on the snapshots collection",
                        )
                    }
                }
            }
            (method, ["volumes", vid, "snapshots", sid]) => {
                let (Ok(volume_id), Ok(snapshot_id)) = (vid.parse::<u64>(), sid.parse::<u64>())
                else {
                    return RestResponse::error(StatusCode::BAD_REQUEST, "bad id");
                };
                match method {
                    HttpMethod::Get => {
                        let action = "snapshot:get";
                        if !self.authorize(action, &token) {
                            return RestResponse::error(
                                StatusCode::FORBIDDEN,
                                "snapshot:get denied",
                            );
                        }
                        (
                            action,
                            self.handle_snapshot_get(&state, project_id, volume_id, snapshot_id),
                        )
                    }
                    HttpMethod::Delete => {
                        let action = "snapshot:delete";
                        if !self.authorize(action, &token) {
                            return RestResponse::error(
                                StatusCode::FORBIDDEN,
                                "snapshot:delete denied",
                            );
                        }
                        (
                            action,
                            self.handle_snapshot_delete(
                                &mut state,
                                project_id,
                                volume_id,
                                snapshot_id,
                            ),
                        )
                    }
                    _ => {
                        return RestResponse::error(
                            StatusCode::METHOD_NOT_ALLOWED,
                            "only GET/DELETE allowed on a snapshot",
                        )
                    }
                }
            }
            (method, ["volumes", vid]) => {
                let Ok(volume_id) = vid.parse::<u64>() else {
                    return RestResponse::error(StatusCode::BAD_REQUEST, "bad volume id");
                };
                match method {
                    HttpMethod::Get => {
                        let action = "volume:get";
                        if !self.authorize(action, &token) {
                            return RestResponse::error(StatusCode::FORBIDDEN, "volume:get denied");
                        }
                        (
                            action,
                            self.handle_volume_get(&state, project_id, volume_id),
                        )
                    }
                    HttpMethod::Put => {
                        let action = "volume:put";
                        if !self.authorize(action, &token) {
                            return RestResponse::error(StatusCode::FORBIDDEN, "volume:put denied");
                        }
                        (
                            action,
                            self.handle_volume_update(&mut state, project_id, volume_id, request),
                        )
                    }
                    HttpMethod::Delete => {
                        let action = "volume:delete";
                        if !self.authorize(action, &token) {
                            return RestResponse::error(
                                StatusCode::FORBIDDEN,
                                "volume:delete denied",
                            );
                        }
                        (
                            action,
                            self.handle_volume_delete(&mut state, project_id, volume_id),
                        )
                    }
                    HttpMethod::Post => {
                        return RestResponse::error(
                            StatusCode::METHOD_NOT_ALLOWED,
                            "POST not allowed on a volume item",
                        )
                    }
                }
            }
            (HttpMethod::Get, ["quota_sets"]) => {
                let action = "quota_sets:get";
                if !self.authorize(action, &token) {
                    return RestResponse::error(StatusCode::FORBIDDEN, "quota_sets:get denied");
                }
                (action, self.handle_quota_get(&state, project_id))
            }
            (HttpMethod::Put, ["quota_sets"]) => {
                let action = "quota_sets:put";
                if !self.authorize(action, &token) {
                    return RestResponse::error(StatusCode::FORBIDDEN, "quota_sets:put denied");
                }
                (
                    action,
                    self.handle_quota_put(&mut state, project_id, request),
                )
            }
            (HttpMethod::Get, ["usergroup"]) => {
                let action = "usergroup:get";
                if !self.authorize(action, &token) {
                    return RestResponse::error(StatusCode::FORBIDDEN, "usergroup:get denied");
                }
                (action, self.handle_usergroups_get(project_id))
            }
            _ => return RestResponse::error(StatusCode::NOT_FOUND, "no such endpoint"),
        };
        self.finish(action, response)
    }
}

impl SharedRestService for PrivateCloud {
    fn call(&self, request: &RestRequest) -> RestResponse {
        self.dispatch(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Fault;
    use cm_rest::RestService;

    fn authed(cloud: &mut PrivateCloud, user: &str) -> String {
        cloud
            .issue_token(user, &format!("{user}-pw"))
            .unwrap()
            .token
    }

    fn get(cloud: &mut PrivateCloud, token: &str, path: &str) -> RestResponse {
        cloud.handle(&RestRequest::new(HttpMethod::Get, path).auth_token(token))
    }

    fn post(cloud: &mut PrivateCloud, token: &str, path: &str, body: Json) -> RestResponse {
        cloud.handle(
            &RestRequest::new(HttpMethod::Post, path)
                .auth_token(token)
                .json(body),
        )
    }

    fn delete(cloud: &mut PrivateCloud, token: &str, path: &str) -> RestResponse {
        cloud.handle(&RestRequest::new(HttpMethod::Delete, path).auth_token(token))
    }

    fn volume_body(name: &str, size: i64) -> Json {
        Json::object(vec![(
            "volume",
            Json::object(vec![
                ("name", Json::Str(name.into())),
                ("size", Json::Int(size)),
            ]),
        )])
    }

    #[test]
    fn auth_endpoint_issues_tokens() {
        let mut cloud = PrivateCloud::my_project();
        let resp = cloud.handle(
            &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![
                (
                    "auth",
                    Json::object(vec![
                        ("user", Json::Str("alice".into())),
                        ("password", Json::Str("alice-pw".into())),
                    ]),
                ),
            ])),
        );
        assert_eq!(resp.status, StatusCode::CREATED);
        let token = resp.body.unwrap();
        let roles = token.get("token").unwrap().get("roles").unwrap();
        assert_eq!(roles.at(0).unwrap().as_str(), Some("admin"));
    }

    #[test]
    fn bad_credentials_rejected() {
        let mut cloud = PrivateCloud::my_project();
        let resp = cloud.handle(
            &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![
                (
                    "auth",
                    Json::object(vec![
                        ("user", Json::Str("alice".into())),
                        ("password", Json::Str("wrong".into())),
                    ]),
                ),
            ])),
        );
        assert_eq!(resp.status, StatusCode::UNAUTHORIZED);
    }

    #[test]
    fn token_lookup_endpoint() {
        let mut cloud = PrivateCloud::my_project();
        let tok = authed(&mut cloud, "bob");
        let resp = get(&mut cloud, &tok, &format!("/identity/tokens/{tok}"));
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(
            resp.body
                .unwrap()
                .get("token")
                .unwrap()
                .get("user")
                .unwrap()
                .as_str(),
            Some("bob")
        );
    }

    #[test]
    fn requests_without_token_are_401() {
        let mut cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let resp = cloud.handle(&RestRequest::new(HttpMethod::Get, format!("/v3/{pid}")));
        assert_eq!(resp.status, StatusCode::UNAUTHORIZED);
    }

    #[test]
    fn volume_lifecycle_as_admin() {
        let mut cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let tok = authed(&mut cloud, "alice");

        // create
        let resp = post(
            &mut cloud,
            &tok,
            &format!("/v3/{pid}/volumes"),
            volume_body("data", 10),
        );
        assert_eq!(resp.status, StatusCode::CREATED);
        let vid = resp
            .body
            .unwrap()
            .get("volume")
            .unwrap()
            .get("id")
            .unwrap()
            .as_int()
            .unwrap();

        // list and get
        let list = get(&mut cloud, &tok, &format!("/v3/{pid}/volumes"));
        assert_eq!(
            list.body
                .unwrap()
                .get("volumes")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            1
        );
        let item = get(&mut cloud, &tok, &format!("/v3/{pid}/volumes/{vid}"));
        assert_eq!(
            item.body
                .unwrap()
                .get("volume")
                .unwrap()
                .get("status")
                .unwrap()
                .as_str(),
            Some("available")
        );

        // update
        let upd = cloud.handle(
            &RestRequest::new(HttpMethod::Put, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&tok)
                .json(volume_body("renamed", 20)),
        );
        assert_eq!(upd.status, StatusCode::OK);

        // delete
        let del = delete(&mut cloud, &tok, &format!("/v3/{pid}/volumes/{vid}"));
        assert_eq!(del.status, StatusCode::NO_CONTENT);
        let gone = get(&mut cloud, &tok, &format!("/v3/{pid}/volumes/{vid}"));
        assert_eq!(gone.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn table1_authorization_enforced() {
        let mut cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let admin = authed(&mut cloud, "alice");
        let member = authed(&mut cloud, "bob");
        let user = authed(&mut cloud, "carol");

        // SecReq 1.3: POST permitted for admin+member, denied for user.
        assert_eq!(
            post(
                &mut cloud,
                &member,
                &format!("/v3/{pid}/volumes"),
                volume_body("v", 1)
            )
            .status,
            StatusCode::CREATED
        );
        assert_eq!(
            post(
                &mut cloud,
                &user,
                &format!("/v3/{pid}/volumes"),
                volume_body("v", 1)
            )
            .status,
            StatusCode::FORBIDDEN
        );

        // SecReq 1.1: GET permitted for all three roles.
        for tok in [&admin, &member, &user] {
            assert_eq!(
                get(&mut cloud, tok, &format!("/v3/{pid}/volumes")).status,
                StatusCode::OK
            );
        }

        // SecReq 1.4: DELETE only for admin.
        let vid = 1;
        assert_eq!(
            delete(&mut cloud, &member, &format!("/v3/{pid}/volumes/{vid}")).status,
            StatusCode::FORBIDDEN
        );
        assert_eq!(
            delete(&mut cloud, &user, &format!("/v3/{pid}/volumes/{vid}")).status,
            StatusCode::FORBIDDEN
        );
        assert_eq!(
            delete(&mut cloud, &admin, &format!("/v3/{pid}/volumes/{vid}")).status,
            StatusCode::NO_CONTENT
        );
    }

    #[test]
    fn quota_enforced_and_fault_bypasses() {
        let mut cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let tok = authed(&mut cloud, "alice");
        for i in 0..DEFAULT_VOLUME_QUOTA {
            assert_eq!(
                post(
                    &mut cloud,
                    &tok,
                    &format!("/v3/{pid}/volumes"),
                    volume_body(&format!("v{i}"), 1)
                )
                .status,
                StatusCode::CREATED
            );
        }
        assert_eq!(
            post(
                &mut cloud,
                &tok,
                &format!("/v3/{pid}/volumes"),
                volume_body("over", 1)
            )
            .status,
            StatusCode::OVER_LIMIT
        );

        // Same scenario on a quota-ignoring mutant succeeds (wrongly).
        let mut mutant =
            PrivateCloud::my_project().with_faults(FaultPlan::single(Fault::IgnoreQuota));
        let pid2 = mutant.project_id();
        let tok2 = authed(&mut mutant, "alice");
        for i in 0..=DEFAULT_VOLUME_QUOTA {
            assert_eq!(
                post(
                    &mut mutant,
                    &tok2,
                    &format!("/v3/{pid2}/volumes"),
                    volume_body(&format!("v{i}"), 1)
                )
                .status,
                StatusCode::CREATED
            );
        }
    }

    #[test]
    fn delete_in_use_conflicts() {
        let mut cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let tok = authed(&mut cloud, "alice");
        let resp = post(
            &mut cloud,
            &tok,
            &format!("/v3/{pid}/volumes"),
            volume_body("v", 1),
        );
        let vid = resp
            .body
            .unwrap()
            .get("volume")
            .unwrap()
            .get("id")
            .unwrap()
            .as_int()
            .unwrap();
        let server = post(
            &mut cloud,
            &tok,
            &format!("/compute/{pid}/servers"),
            Json::object(vec![(
                "server",
                Json::object(vec![("name", Json::Str("s1".into()))]),
            )]),
        );
        assert_eq!(server.status, StatusCode::CREATED);
        let iid = server
            .body
            .unwrap()
            .get("server")
            .unwrap()
            .get("id")
            .unwrap()
            .as_int()
            .unwrap() as u64;
        let attach = post(
            &mut cloud,
            &tok,
            &format!("/compute/{pid}/servers/{iid}/attach"),
            Json::object(vec![("volume_id", Json::Int(vid))]),
        );
        assert_eq!(attach.status, StatusCode::ACCEPTED);
        assert_eq!(
            delete(&mut cloud, &tok, &format!("/v3/{pid}/volumes/{vid}")).status,
            StatusCode::CONFLICT
        );
        // Detach, then delete succeeds.
        let detach = post(
            &mut cloud,
            &tok,
            &format!("/compute/{pid}/servers/{iid}/detach"),
            Json::object(vec![("volume_id", Json::Int(vid))]),
        );
        assert_eq!(detach.status, StatusCode::ACCEPTED);
        assert_eq!(
            delete(&mut cloud, &tok, &format!("/v3/{pid}/volumes/{vid}")).status,
            StatusCode::NO_CONTENT
        );
    }

    #[test]
    fn policy_override_fault_lets_member_delete() {
        let plan = FaultPlan::single(Fault::PolicyOverride {
            action: "volume:delete".into(),
            rule: Rule::any_role(["admin", "member"]),
        });
        let mut mutant = PrivateCloud::my_project().with_faults(plan);
        let pid = mutant.project_id();
        let admin = authed(&mut mutant, "alice");
        let member = authed(&mut mutant, "bob");
        let resp = post(
            &mut mutant,
            &admin,
            &format!("/v3/{pid}/volumes"),
            volume_body("v", 1),
        );
        let vid = resp
            .body
            .unwrap()
            .get("volume")
            .unwrap()
            .get("id")
            .unwrap()
            .as_int()
            .unwrap();
        // The mutant wrongly allows member to delete — SecReq 1.4 violated.
        assert_eq!(
            delete(&mut mutant, &member, &format!("/v3/{pid}/volumes/{vid}")).status,
            StatusCode::NO_CONTENT
        );
    }

    #[test]
    fn invert_auth_fault_flips_decisions() {
        let plan = FaultPlan::single(Fault::InvertAuthCheck {
            action: "volume:get".into(),
        });
        let mut mutant = PrivateCloud::my_project().with_faults(plan);
        let pid = mutant.project_id();
        let admin = authed(&mut mutant, "alice");
        assert_eq!(
            get(&mut mutant, &admin, &format!("/v3/{pid}/volumes")).status,
            StatusCode::FORBIDDEN
        );
    }

    #[test]
    fn wrong_status_fault_changes_success_code() {
        let plan = FaultPlan::single(Fault::WrongStatusCode {
            action: "volume:delete".into(),
            code: 200,
        });
        let mut mutant = PrivateCloud::my_project().with_faults(plan);
        let pid = mutant.project_id();
        let tok = authed(&mut mutant, "alice");
        let resp = post(
            &mut mutant,
            &tok,
            &format!("/v3/{pid}/volumes"),
            volume_body("v", 1),
        );
        let vid = resp
            .body
            .unwrap()
            .get("volume")
            .unwrap()
            .get("id")
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(
            delete(&mut mutant, &tok, &format!("/v3/{pid}/volumes/{vid}")).status,
            StatusCode::OK // wrong: should be 204
        );
    }

    #[test]
    fn drop_state_change_fault_reports_false_success() {
        let plan = FaultPlan::single(Fault::DropStateChange {
            action: "volume:post".into(),
        });
        let mut mutant = PrivateCloud::my_project().with_faults(plan);
        let pid = mutant.project_id();
        let tok = authed(&mut mutant, "alice");
        let resp = post(
            &mut mutant,
            &tok,
            &format!("/v3/{pid}/volumes"),
            volume_body("v", 1),
        );
        assert_eq!(resp.status, StatusCode::CREATED);
        assert!(mutant.state().project(pid).unwrap().volumes.is_empty());
    }

    #[test]
    fn cross_project_token_is_forbidden() {
        let mut cloud = PrivateCloud::my_project();
        let tok = authed(&mut cloud, "alice");
        let resp = get(&mut cloud, &tok, "/v3/99/volumes");
        assert_eq!(resp.status, StatusCode::FORBIDDEN);
    }

    #[test]
    fn quota_sets_put_requires_admin() {
        let mut cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let member = authed(&mut cloud, "bob");
        let admin = authed(&mut cloud, "alice");
        let body = Json::object(vec![(
            "quota_set",
            Json::object(vec![("volume", Json::Int(10))]),
        )]);
        let denied = cloud.handle(
            &RestRequest::new(HttpMethod::Put, format!("/v3/{pid}/quota_sets"))
                .auth_token(&member)
                .json(body.clone()),
        );
        assert_eq!(denied.status, StatusCode::FORBIDDEN);
        let ok = cloud.handle(
            &RestRequest::new(HttpMethod::Put, format!("/v3/{pid}/quota_sets"))
                .auth_token(&admin)
                .json(body),
        );
        assert_eq!(ok.status, StatusCode::OK);
        assert_eq!(cloud.state().project(pid).unwrap().volume_quota, 10);
    }

    #[test]
    fn unknown_paths_are_404() {
        let mut cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let tok = authed(&mut cloud, "alice");
        assert_eq!(
            get(&mut cloud, &tok, &format!("/v3/{pid}/servers")).status,
            StatusCode::NOT_FOUND
        );
        assert_eq!(get(&mut cloud, &tok, "/v2/1").status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn post_on_volume_item_is_405() {
        let mut cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let tok = authed(&mut cloud, "alice");
        let resp = post(
            &mut cloud,
            &tok,
            &format!("/v3/{pid}/volumes/1"),
            Json::Null,
        );
        assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
    }

    #[test]
    fn multi_project_shards_are_isolated() {
        let cloud = PrivateCloud::multi_project(3);
        assert_eq!(cloud.shard_count(), 3);
        let t1 = cloud.issue_token_scoped("alice", "alice-pw", 1).unwrap();
        let t2 = cloud.issue_token_scoped("alice", "alice-pw", 2).unwrap();
        assert_eq!(t1.project_id, 1);
        assert_eq!(t2.project_id, 2);
        // A token scoped to project 2 cannot touch project 1.
        let denied =
            cloud.call(&RestRequest::new(HttpMethod::Get, "/v3/1/volumes").auth_token(&t2.token));
        assert_eq!(denied.status, StatusCode::FORBIDDEN);
        // Volumes created in different projects get globally unique ids.
        let v1 = cloud.call(
            &RestRequest::new(HttpMethod::Post, "/v3/1/volumes")
                .auth_token(&t1.token)
                .json(volume_body("a", 1)),
        );
        let v2 = cloud.call(
            &RestRequest::new(HttpMethod::Post, "/v3/2/volumes")
                .auth_token(&t2.token)
                .json(volume_body("b", 1)),
        );
        let id1 = v1
            .body
            .unwrap()
            .get("volume")
            .unwrap()
            .get("id")
            .unwrap()
            .as_int();
        let id2 = v2
            .body
            .unwrap()
            .get("volume")
            .unwrap()
            .get("id")
            .unwrap()
            .as_int();
        assert_ne!(id1, id2);
        // Each shard sees only its own volume.
        assert_eq!(cloud.state_of(1).project(1).unwrap().volumes.len(), 1);
        assert_eq!(cloud.state_of(2).project(2).unwrap().volumes.len(), 1);
        assert!(cloud.state_of(3).project(3).unwrap().volumes.is_empty());
    }

    #[test]
    fn usergroups_listed() {
        let mut cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let tok = authed(&mut cloud, "carol");
        let resp = get(&mut cloud, &tok, &format!("/v3/{pid}/usergroup"));
        let groups = resp.body.unwrap();
        assert_eq!(
            groups.get("usergroups").unwrap().as_array().unwrap().len(),
            3
        );
    }
}

#[cfg(test)]
mod snapshot_endpoint_tests {
    use super::*;
    use cm_rest::RestService;

    fn setup() -> (PrivateCloud, u64, String, String, u64) {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
        let user = cloud.issue_token("carol", "carol-pw").unwrap().token;
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v", 1, false)
            .unwrap()
            .id;
        (cloud, pid, admin, user, vid)
    }

    fn snap_body(name: &str) -> Json {
        Json::object(vec![(
            "snapshot",
            Json::object(vec![("name", Json::Str(name.into()))]),
        )])
    }

    #[test]
    fn snapshot_lifecycle() {
        let (mut cloud, pid, admin, _, vid) = setup();
        let create = cloud.handle(
            &RestRequest::new(
                HttpMethod::Post,
                format!("/v3/{pid}/volumes/{vid}/snapshots"),
            )
            .auth_token(&admin)
            .json(snap_body("s1")),
        );
        assert_eq!(create.status, StatusCode::CREATED);
        let sid = create
            .body
            .unwrap()
            .get("snapshot")
            .unwrap()
            .get("id")
            .unwrap()
            .as_int()
            .unwrap();

        let list = cloud.handle(
            &RestRequest::new(
                HttpMethod::Get,
                format!("/v3/{pid}/volumes/{vid}/snapshots"),
            )
            .auth_token(&admin),
        );
        assert_eq!(
            list.body
                .unwrap()
                .get("snapshots")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            1
        );

        let item = cloud.handle(
            &RestRequest::new(
                HttpMethod::Get,
                format!("/v3/{pid}/volumes/{vid}/snapshots/{sid}"),
            )
            .auth_token(&admin),
        );
        assert_eq!(item.status, StatusCode::OK);

        // Volume with a snapshot cannot be deleted (409).
        let vol_del = cloud.handle(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&admin),
        );
        assert_eq!(vol_del.status, StatusCode::CONFLICT);

        let del = cloud.handle(
            &RestRequest::new(
                HttpMethod::Delete,
                format!("/v3/{pid}/volumes/{vid}/snapshots/{sid}"),
            )
            .auth_token(&admin),
        );
        assert_eq!(del.status, StatusCode::NO_CONTENT);
        let gone = cloud.handle(
            &RestRequest::new(
                HttpMethod::Get,
                format!("/v3/{pid}/volumes/{vid}/snapshots/{sid}"),
            )
            .auth_token(&admin),
        );
        assert_eq!(gone.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn snapshot_authorization() {
        let (mut cloud, pid, admin, user, vid) = setup();
        // carol (role user) may list but not create or delete.
        let list = cloud.handle(
            &RestRequest::new(
                HttpMethod::Get,
                format!("/v3/{pid}/volumes/{vid}/snapshots"),
            )
            .auth_token(&user),
        );
        assert_eq!(list.status, StatusCode::OK);
        let denied_create = cloud.handle(
            &RestRequest::new(
                HttpMethod::Post,
                format!("/v3/{pid}/volumes/{vid}/snapshots"),
            )
            .auth_token(&user)
            .json(snap_body("x")),
        );
        assert_eq!(denied_create.status, StatusCode::FORBIDDEN);
        let sid = {
            let resp = cloud.handle(
                &RestRequest::new(
                    HttpMethod::Post,
                    format!("/v3/{pid}/volumes/{vid}/snapshots"),
                )
                .auth_token(&admin)
                .json(snap_body("s")),
            );
            resp.body
                .unwrap()
                .get("snapshot")
                .unwrap()
                .get("id")
                .unwrap()
                .as_int()
                .unwrap()
        };
        let denied_delete = cloud.handle(
            &RestRequest::new(
                HttpMethod::Delete,
                format!("/v3/{pid}/volumes/{vid}/snapshots/{sid}"),
            )
            .auth_token(&user),
        );
        assert_eq!(denied_delete.status, StatusCode::FORBIDDEN);
    }

    #[test]
    fn snapshot_of_wrong_volume_is_404() {
        let (mut cloud, pid, admin, _, vid) = setup();
        let vid2 = cloud
            .state_mut()
            .create_volume(pid, "w", 1, false)
            .unwrap()
            .id;
        let sid = cloud.state_mut().create_snapshot(pid, vid, "s").unwrap().id;
        let wrong = cloud.handle(
            &RestRequest::new(
                HttpMethod::Get,
                format!("/v3/{pid}/volumes/{vid2}/snapshots/{sid}"),
            )
            .auth_token(&admin),
        );
        assert_eq!(wrong.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn put_on_snapshots_is_405() {
        let (mut cloud, pid, admin, _, vid) = setup();
        let resp = cloud.handle(
            &RestRequest::new(
                HttpMethod::Put,
                format!("/v3/{pid}/volumes/{vid}/snapshots"),
            )
            .auth_token(&admin),
        );
        assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
    }
}

#[cfg(test)]
mod expiry_endpoint_tests {
    use super::*;
    use cm_rest::RestService;

    #[test]
    fn expired_tokens_get_401() {
        let mut cloud = PrivateCloud::my_project().with_token_lifetime(10);
        let pid = cloud.project_id();
        let tok = cloud.issue_token("alice", "alice-pw").unwrap().token;
        let ok = cloud.handle(
            &RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes")).auth_token(&tok),
        );
        assert_eq!(ok.status, StatusCode::OK);
        cloud.advance_time(10);
        let expired = cloud.handle(
            &RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes")).auth_token(&tok),
        );
        assert_eq!(expired.status, StatusCode::UNAUTHORIZED);
        // Re-authentication recovers.
        let fresh = cloud.issue_token("alice", "alice-pw").unwrap().token;
        let again = cloud.handle(
            &RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes")).auth_token(&fresh),
        );
        assert_eq!(again.status, StatusCode::OK);
    }
}

#[cfg(test)]
mod dispatch_edge_tests {
    use super::*;
    use cm_rest::RestService;

    fn authed_cloud() -> (PrivateCloud, u64, String) {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let tok = cloud.issue_token("alice", "alice-pw").unwrap().token;
        (cloud, pid, tok)
    }

    #[test]
    fn bad_ids_are_400() {
        let (mut cloud, pid, tok) = authed_cloud();
        for path in [
            "/v3/not-a-number/volumes".to_string(),
            format!("/v3/{pid}/volumes/abc"),
            format!("/v3/{pid}/volumes/1/snapshots/xyz"),
        ] {
            let resp =
                cloud.handle(&RestRequest::new(HttpMethod::Get, path.clone()).auth_token(&tok));
            assert_eq!(resp.status, StatusCode::BAD_REQUEST, "{path}");
        }
    }

    #[test]
    fn compute_requires_matching_project_scope() {
        let (mut cloud, _pid, tok) = authed_cloud();
        let resp = cloud.handle(
            &RestRequest::new(HttpMethod::Post, "/compute/99/servers")
                .auth_token(&tok)
                .json(Json::object(vec![(
                    "server",
                    Json::object(vec![("name", Json::Str("s".into()))]),
                )])),
        );
        assert_eq!(resp.status, StatusCode::FORBIDDEN);
    }

    #[test]
    fn attach_missing_volume_id_is_400() {
        let (mut cloud, pid, tok) = authed_cloud();
        let iid = cloud.state_mut().create_instance(pid, "s").unwrap();
        let resp = cloud.handle(
            &RestRequest::new(
                HttpMethod::Post,
                format!("/compute/{pid}/servers/{iid}/attach"),
            )
            .auth_token(&tok)
            .json(Json::object(vec![("nonsense", Json::Null)])),
        );
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    }

    #[test]
    fn detach_unattached_volume_is_404() {
        let (mut cloud, pid, tok) = authed_cloud();
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v", 1, false)
            .unwrap()
            .id;
        let iid = cloud.state_mut().create_instance(pid, "s").unwrap();
        let resp = cloud.handle(
            &RestRequest::new(
                HttpMethod::Post,
                format!("/compute/{pid}/servers/{iid}/detach"),
            )
            .auth_token(&tok)
            .json(Json::object(vec![("volume_id", Json::Int(vid as i64))])),
        );
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn quota_put_rejects_garbage() {
        let (mut cloud, pid, tok) = authed_cloud();
        for body in [
            Json::object(vec![("quota_set", Json::Null)]),
            Json::object(vec![(
                "quota_set",
                Json::object(vec![("volume", Json::Int(-3))]),
            )]),
        ] {
            let resp = cloud.handle(
                &RestRequest::new(HttpMethod::Put, format!("/v3/{pid}/quota_sets"))
                    .auth_token(&tok)
                    .json(body),
            );
            assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        }
    }

    #[test]
    fn auth_endpoint_rejects_malformed_bodies() {
        let mut cloud = PrivateCloud::my_project();
        let no_body = cloud.handle(&RestRequest::new(HttpMethod::Post, "/identity/auth/tokens"));
        assert_eq!(no_body.status, StatusCode::BAD_REQUEST);
        let missing_fields = cloud.handle(
            &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![
                (
                    "auth",
                    Json::object(vec![("user", Json::Str("alice".into()))]),
                ),
            ])),
        );
        assert_eq!(missing_fields.status, StatusCode::BAD_REQUEST);
        let unknown_project = cloud.handle(
            &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![
                (
                    "auth",
                    Json::object(vec![
                        ("user", Json::Str("alice".into())),
                        ("password", Json::Str("alice-pw".into())),
                        ("project_id", Json::Int(42)),
                    ]),
                ),
            ])),
        );
        assert_eq!(unknown_project.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn unknown_identity_endpoint_is_404() {
        let mut cloud = PrivateCloud::my_project();
        let resp = cloud.handle(&RestRequest::new(HttpMethod::Get, "/identity/users/alice"));
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }
}
