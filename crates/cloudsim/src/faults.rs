//! Fault injection: the "mutants" of the paper's Section VI-D.
//!
//! The paper validates its monitor by systematically introducing errors
//! "in the cloud implementation to detect wrong authorization on
//! resources" — all three injected mutants were killed. A [`FaultPlan`]
//! describes such an implementation error declaratively; the simulated
//! cloud consults it on every request, so a mutant cloud is just
//! `cloud.with_faults(plan)`. The `cm-mutation` crate enumerates plans as
//! mutation operators and runs the kill campaign.

use cm_rbac::Rule;
use std::fmt;

/// A single injected implementation fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Replace the policy rule for an action (e.g. `volume:delete`
    /// suddenly permits `member` — the classic wrong-authorization bug).
    PolicyOverride {
        /// Action name, e.g. `volume:delete`.
        action: String,
        /// The (wrong) rule to enforce instead.
        rule: Rule,
    },
    /// Skip the authorization check for an action entirely (developer
    /// forgot the check).
    SkipAuthCheck {
        /// Action name.
        action: String,
    },
    /// Invert the authorization decision for an action (classic negation
    /// bug: `if allowed` vs `if !allowed`).
    InvertAuthCheck {
        /// Action name.
        action: String,
    },
    /// Ignore the volume-quota functional check on create.
    IgnoreQuota,
    /// Ignore the `in-use` functional check on delete.
    IgnoreInUse,
    /// Respond with a wrong success status code for an action (e.g. 200
    /// instead of 204 on DELETE).
    WrongStatusCode {
        /// Action name.
        action: String,
        /// Code to send instead of the correct one.
        code: u16,
    },
    /// Report success for an action without actually performing the state
    /// change (lost update).
    DropStateChange {
        /// Action name.
        action: String,
    },
    /// Sleep before completing an action — a slow backend. `"*"` delays
    /// every action. Used by concurrency tests and benches to model the
    /// millisecond-scale latencies of a real cloud API.
    Delay {
        /// Action name, or `"*"` for all actions.
        action: String,
        /// Added latency in milliseconds.
        millis: u64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PolicyOverride { action, rule } => {
                write!(f, "policy-override({action} := {rule})")
            }
            Fault::SkipAuthCheck { action } => write!(f, "skip-auth({action})"),
            Fault::InvertAuthCheck { action } => write!(f, "invert-auth({action})"),
            Fault::IgnoreQuota => write!(f, "ignore-quota"),
            Fault::IgnoreInUse => write!(f, "ignore-in-use"),
            Fault::WrongStatusCode { action, code } => {
                write!(f, "wrong-status({action} -> {code})")
            }
            Fault::DropStateChange { action } => write!(f, "drop-state-change({action})"),
            Fault::Delay { action, millis } => write!(f, "delay({action} += {millis}ms)"),
        }
    }
}

/// A set of injected faults (usually a single one per mutant).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: a correct cloud.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single fault.
    #[must_use]
    pub fn single(fault: Fault) -> Self {
        FaultPlan {
            faults: vec![fault],
        }
    }

    /// Add a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// True when no faults are injected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// All faults.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The policy override for `action`, if any.
    #[must_use]
    pub fn policy_override(&self, action: &str) -> Option<&Rule> {
        self.faults.iter().find_map(|f| match f {
            Fault::PolicyOverride { action: a, rule } if a == action => Some(rule),
            _ => None,
        })
    }

    /// Whether the auth check for `action` is skipped.
    #[must_use]
    pub fn skips_auth(&self, action: &str) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::SkipAuthCheck { action: a } if a == action))
    }

    /// Whether the auth decision for `action` is inverted.
    #[must_use]
    pub fn inverts_auth(&self, action: &str) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::InvertAuthCheck { action: a } if a == action))
    }

    /// Whether the quota check is disabled.
    #[must_use]
    pub fn ignores_quota(&self) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::IgnoreQuota))
    }

    /// Whether the in-use check is disabled.
    #[must_use]
    pub fn ignores_in_use(&self) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::IgnoreInUse))
    }

    /// The wrong status code configured for `action`, if any.
    #[must_use]
    pub fn wrong_status(&self, action: &str) -> Option<u16> {
        self.faults.iter().find_map(|f| match f {
            Fault::WrongStatusCode { action: a, code } if a == action => Some(*code),
            _ => None,
        })
    }

    /// Whether state changes for `action` are silently dropped.
    #[must_use]
    pub fn drops_state_change(&self, action: &str) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::DropStateChange { action: a } if a == action))
    }

    /// The injected latency for `action` in milliseconds, if any
    /// (exact action name or the `"*"` wildcard).
    #[must_use]
    pub fn delay_ms(&self, action: &str) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::Delay { action: a, millis } if a == action || a == "*" => Some(*millis),
            _ => None,
        })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "no faults");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_has_no_effects() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.skips_auth("volume:delete"));
        assert!(!p.inverts_auth("volume:delete"));
        assert!(!p.ignores_quota());
        assert!(!p.ignores_in_use());
        assert!(p.policy_override("volume:delete").is_none());
        assert!(p.wrong_status("volume:delete").is_none());
    }

    #[test]
    fn single_fault_queries() {
        let p = FaultPlan::single(Fault::PolicyOverride {
            action: "volume:delete".into(),
            rule: Rule::role("member"),
        });
        assert_eq!(
            p.policy_override("volume:delete"),
            Some(&Rule::role("member"))
        );
        assert!(p.policy_override("volume:get").is_none());
    }

    #[test]
    fn composite_plan() {
        let p = FaultPlan::none()
            .with(Fault::IgnoreQuota)
            .with(Fault::SkipAuthCheck {
                action: "volume:post".into(),
            });
        assert!(p.ignores_quota());
        assert!(p.skips_auth("volume:post"));
        assert!(!p.skips_auth("volume:delete"));
        assert_eq!(p.faults().len(), 2);
    }

    #[test]
    fn delay_matches_exact_action_or_wildcard() {
        let p = FaultPlan::single(Fault::Delay {
            action: "volume:get".into(),
            millis: 3,
        });
        assert_eq!(p.delay_ms("volume:get"), Some(3));
        assert_eq!(p.delay_ms("volume:delete"), None);
        let all = FaultPlan::single(Fault::Delay {
            action: "*".into(),
            millis: 1,
        });
        assert_eq!(all.delay_ms("anything"), Some(1));
        assert_eq!(FaultPlan::none().delay_ms("volume:get"), None);
    }

    #[test]
    fn display_is_informative() {
        let p = FaultPlan::single(Fault::WrongStatusCode {
            action: "volume:delete".into(),
            code: 200,
        });
        assert!(p.to_string().contains("volume:delete"));
        assert!(p.to_string().contains("200"));
        assert_eq!(FaultPlan::none().to_string(), "no faults");
    }
}
