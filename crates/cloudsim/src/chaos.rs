//! Transport chaos harness: a fault-injecting TCP proxy between the
//! monitor and its cloud.
//!
//! Where [`crate::faults`] mutates the cloud's *semantics* (wrong
//! authorization, skipped checks — the paper's Section VI-D mutants),
//! this module mutates the *wire*: connections die mid-response, bytes
//! arrive garbled, reads stall past their timeout, gateways answer 5xx.
//! The two fault families must stay distinguishable end to end — a
//! transport fault must never surface as a contract-violation verdict,
//! and a semantic mutant must never hide behind a degraded one. The
//! chaos soak test in the workspace root asserts exactly that.
//!
//! [`ChaosListener`] is a real TCP proxy: it accepts HTTP/1.1
//! connections, parses each request, and consults a deterministic
//! [`ChaosPlan`] — indexed by a global request counter, so the schedule
//! does not depend on connection reuse or thread interleaving — to
//! decide whether to forward the request upstream or inject a
//! [`ChaosAction`].

use cm_httpkit::{read_request_buf, send, serialize_response, ConnectionMode};
use cm_obs::XorShift64Star;
use cm_rest::{RestResponse, StatusCode};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One scheduled behaviour for one proxied request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Proxy the request upstream and relay the real response.
    Forward,
    /// Abruptly close the connection before answering (the client sees
    /// a reset/EOF mid-exchange).
    Reset,
    /// Send the first half of a valid response, then close.
    Truncate,
    /// Send bytes that are not HTTP, then close.
    Garbage,
    /// Go silent past the client's read timeout, then close. The stall
    /// length comes from [`ChaosPlan::stall`].
    Stall,
    /// Answer `503 Service Unavailable` (marked as a transport fault)
    /// without consulting upstream — a gateway-style 5xx burst.
    Error503,
}

impl ChaosAction {
    /// Stable label used by the per-action counters.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosAction::Forward => "forward",
            ChaosAction::Reset => "reset",
            ChaosAction::Truncate => "truncate",
            ChaosAction::Garbage => "garbage",
            ChaosAction::Stall => "stall",
            ChaosAction::Error503 => "error503",
        }
    }
}

/// A deterministic schedule of [`ChaosAction`]s, consumed one entry per
/// proxied request (cycling when exhausted).
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    actions: Vec<ChaosAction>,
    /// How long a [`ChaosAction::Stall`] goes silent before closing.
    /// Default 300ms — pair it with a client read timeout below that.
    pub stall: Duration,
}

impl ChaosPlan {
    /// A plan that repeats the given action sequence forever.
    #[must_use]
    pub fn cycle(actions: Vec<ChaosAction>) -> Self {
        ChaosPlan {
            actions,
            stall: Duration::from_millis(300),
        }
    }

    /// A reproducible randomized plan: `len` entries, each a fault with
    /// probability `fault_rate` (uniformly one of the five fault kinds),
    /// otherwise a clean forward. The same seed always yields the same
    /// schedule — chaos soaks are replayable. The first four entries are
    /// forced to [`ChaosAction::Forward`] so session setup (authenticate,
    /// first probe) succeeds before the weather turns.
    #[must_use]
    pub fn seeded(seed: u64, len: usize, fault_rate: f64) -> Self {
        let mut rng = XorShift64Star::new(seed);
        let mut actions = Vec::with_capacity(len);
        for i in 0..len {
            if i < 4 || rng.gen_f64() >= fault_rate {
                actions.push(ChaosAction::Forward);
            } else {
                actions.push(match rng.gen_usize(0..5) {
                    0 => ChaosAction::Reset,
                    1 => ChaosAction::Truncate,
                    2 => ChaosAction::Garbage,
                    3 => ChaosAction::Stall,
                    _ => ChaosAction::Error503,
                });
            }
        }
        ChaosPlan {
            actions,
            stall: Duration::from_millis(300),
        }
    }

    /// The action scheduled for the `i`-th proxied request.
    #[must_use]
    pub fn action_at(&self, i: usize) -> ChaosAction {
        if self.actions.is_empty() {
            return ChaosAction::Forward;
        }
        self.actions[i % self.actions.len()]
    }

    /// Number of entries before the plan cycles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the plan has no entries (all requests forward cleanly).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Per-action injection counters, filled as the proxy serves traffic.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Requests relayed upstream untouched.
    pub forwarded: AtomicU64,
    /// Connections reset before a response.
    pub resets: AtomicU64,
    /// Responses cut off mid-body.
    pub truncated: AtomicU64,
    /// Non-HTTP byte salads served.
    pub garbage: AtomicU64,
    /// Reads stalled past the client timeout.
    pub stalls: AtomicU64,
    /// Injected 503 answers.
    pub errors: AtomicU64,
}

impl ChaosStats {
    fn count(&self, action: ChaosAction) {
        let counter = match action {
            ChaosAction::Forward => &self.forwarded,
            ChaosAction::Reset => &self.resets,
            ChaosAction::Truncate => &self.truncated,
            ChaosAction::Garbage => &self.garbage,
            ChaosAction::Stall => &self.stalls,
            ChaosAction::Error503 => &self.errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// All counters in a fixed order, for assertions and reports.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("forward", self.forwarded.load(Ordering::Relaxed)),
            ("reset", self.resets.load(Ordering::Relaxed)),
            ("truncate", self.truncated.load(Ordering::Relaxed)),
            ("garbage", self.garbage.load(Ordering::Relaxed)),
            ("stall", self.stalls.load(Ordering::Relaxed)),
            ("error503", self.errors.load(Ordering::Relaxed)),
        ]
    }

    /// Total non-Forward injections so far.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.snapshot()
            .iter()
            .filter(|(k, _)| *k != "forward")
            .map(|(_, v)| v)
            .sum()
    }
}

/// Shared state between the listener handle and its service threads.
struct ChaosShared {
    upstream: SocketAddr,
    plan: ChaosPlan,
    cursor: AtomicUsize,
    stats: ChaosStats,
    stop: AtomicBool,
}

/// A fault-injecting HTTP/1.1 proxy listening on an ephemeral local
/// port. Point a `PooledClient`/`RemoteService` at [`local_addr`]
/// (instead of the real cloud server) and the [`ChaosPlan`] decides the
/// fate of every request.
///
/// [`local_addr`]: ChaosListener::local_addr
#[derive(Debug)]
pub struct ChaosListener {
    addr: SocketAddr,
    shared: Arc<ChaosShared>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ChaosShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosShared")
            .field("upstream", &self.upstream)
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

impl ChaosListener {
    /// Bind an ephemeral local port and start proxying to `upstream`
    /// under the given plan.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the listener socket cannot be bound.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ChaosShared {
            upstream,
            plan,
            cursor: AtomicUsize::new(0),
            stats: ChaosStats::default(),
            stop: AtomicBool::new(false),
        });
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conn_threads);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                let handle = std::thread::spawn(move || serve_chaos_conn(stream, &conn_shared));
                accept_conns.lock().unwrap().push(handle);
            }
        });

        Ok(ChaosListener {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The proxy's bound address — hand this to the client under test.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The injection counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ChaosStats {
        &self.shared.stats
    }

    /// How many requests have consumed a schedule slot.
    #[must_use]
    pub fn requests_seen(&self) -> usize {
        self.shared.cursor.load(Ordering::Relaxed)
    }

    /// Stop accepting, wake the accept loop, and join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosListener {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Serve one proxied connection: parse requests in a keep-alive loop,
/// consume one schedule slot per request, inject or forward.
fn serve_chaos_conn(stream: TcpStream, shared: &ChaosShared) {
    let _ = stream.set_nodelay(true);
    // One persistent buffered reader per connection (over a shared borrow
    // of the stream; writes go through another) so buffered bytes of a
    // pipelined next request are never lost between messages.
    let mut reader = std::io::BufReader::with_capacity(8 * 1024, &stream);
    let mut stream = &stream;
    let mut resp_buf = Vec::with_capacity(1024);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let Ok(request) = read_request_buf(&mut reader) else {
            return; // EOF, timeout, or framing error: client is done
        };
        let slot = shared.cursor.fetch_add(1, Ordering::Relaxed);
        let action = shared.plan.action_at(slot);
        shared.stats.count(action);
        match action {
            ChaosAction::Forward => {
                let response = match send(shared.upstream, &request) {
                    Ok(resp) => resp,
                    Err(e) => RestResponse::transport_fault(
                        StatusCode::BAD_GATEWAY,
                        format!("chaos proxy upstream error: {e}"),
                    ),
                };
                resp_buf.clear();
                serialize_response(&mut resp_buf, &response, ConnectionMode::KeepAlive);
                if stream.write_all(&resp_buf).is_err() {
                    return;
                }
            }
            ChaosAction::Error503 => {
                let response = RestResponse::transport_fault(
                    StatusCode::SERVICE_UNAVAILABLE,
                    "chaos: injected gateway 503",
                );
                resp_buf.clear();
                serialize_response(&mut resp_buf, &response, ConnectionMode::KeepAlive);
                if stream.write_all(&resp_buf).is_err() {
                    return;
                }
            }
            ChaosAction::Reset => return, // drop without a byte of answer
            ChaosAction::Truncate => {
                resp_buf.clear();
                serialize_response(
                    &mut resp_buf,
                    &RestResponse::ok(cm_rest::Json::Str(
                        "this response will never fully arrive".into(),
                    )),
                    ConnectionMode::KeepAlive,
                );
                let half = resp_buf.len() / 2;
                let _ = stream.write_all(&resp_buf[..half]);
                return;
            }
            ChaosAction::Garbage => {
                let _ = stream.write_all(b"\x16\x03\x01 utter nonsense, not HTTP\r\n\r\n");
                return;
            }
            ChaosAction::Stall => {
                // Go silent in short polls so shutdown stays responsive,
                // then hang up without answering.
                let deadline = Instant::now() + shared.plan.stall;
                while Instant::now() < deadline {
                    if shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_httpkit::HttpServer;
    use cm_model::HttpMethod;
    use cm_rest::{Json, RestRequest};

    fn upstream() -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(|_req: RestRequest| RestResponse::ok(Json::Str("upstream".into()))),
        )
        .unwrap()
    }

    #[test]
    fn seeded_plans_are_deterministic_and_start_clean() {
        let a = ChaosPlan::seeded(42, 64, 0.5);
        let b = ChaosPlan::seeded(42, 64, 0.5);
        let c = ChaosPlan::seeded(43, 64, 0.5);
        let actions: Vec<_> = (0..64).map(|i| a.action_at(i)).collect();
        assert_eq!(actions, (0..64).map(|i| b.action_at(i)).collect::<Vec<_>>());
        assert_ne!(actions, (0..64).map(|i| c.action_at(i)).collect::<Vec<_>>());
        // Setup grace: the first four slots always forward.
        assert!(actions[..4].iter().all(|a| *a == ChaosAction::Forward));
        // A 50% rate over 60 remaining slots injects *something*.
        assert!(actions[4..].iter().any(|a| *a != ChaosAction::Forward));
    }

    #[test]
    fn forwards_cleanly_and_injects_on_schedule() {
        let server = upstream();
        let plan = ChaosPlan::cycle(vec![
            ChaosAction::Forward,
            ChaosAction::Error503,
            ChaosAction::Reset,
        ]);
        let proxy = ChaosListener::spawn(server.local_addr(), plan).unwrap();
        let req = RestRequest::new(HttpMethod::Get, "/anything");

        // Slot 0: clean forward relays the upstream body.
        let ok = send(proxy.local_addr(), &req).unwrap();
        assert_eq!(ok.status, StatusCode::OK);
        assert_eq!(ok.body, Some(Json::Str("upstream".into())));

        // Slot 1: injected 503, marked as a transport fault, upstream
        // never consulted.
        let injected = send(proxy.local_addr(), &req).unwrap();
        assert_eq!(injected.status, StatusCode::SERVICE_UNAVAILABLE);
        assert!(injected.is_transport_fault());

        // Slot 2: the connection dies without an answer.
        assert!(send(proxy.local_addr(), &req).is_err());

        assert_eq!(proxy.requests_seen(), 3);
        assert_eq!(proxy.stats().forwarded.load(Ordering::Relaxed), 1);
        assert_eq!(proxy.stats().errors.load(Ordering::Relaxed), 1);
        assert_eq!(proxy.stats().resets.load(Ordering::Relaxed), 1);
        assert_eq!(proxy.stats().faults_injected(), 2);
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn truncated_and_garbage_responses_are_wire_errors() {
        let server = upstream();
        let plan = ChaosPlan::cycle(vec![ChaosAction::Truncate, ChaosAction::Garbage]);
        let proxy = ChaosListener::spawn(server.local_addr(), plan).unwrap();
        let req = RestRequest::new(HttpMethod::Get, "/anything");
        assert!(send(proxy.local_addr(), &req).is_err());
        assert!(send(proxy.local_addr(), &req).is_err());
        assert_eq!(proxy.stats().truncated.load(Ordering::Relaxed), 1);
        assert_eq!(proxy.stats().garbage.load(Ordering::Relaxed), 1);
        proxy.shutdown();
        server.shutdown();
    }
}
