//! End-to-end tests of the actual CLI binaries (spawned as processes).

use std::path::PathBuf;
use std::process::Command;

fn cmcli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cmcli"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cli-e2e-{}-{name}", std::process::id()))
}

#[test]
fn help_shows_usage_and_exits_zero() {
    let out = cmcli().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("export-cinder"));
}

#[test]
fn unknown_command_fails_with_usage_on_stderr() {
    let out = cmcli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn export_validate_contracts_pipeline() {
    let xmi = tmp("pipe.xmi");
    let out = cmcli().arg("export-cinder").arg(&xmi).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    let validate = cmcli().arg("validate").arg(&xmi).output().unwrap();
    assert!(validate.status.success());
    let text = String::from_utf8_lossy(&validate.stdout);
    assert!(text.contains("well-formed"), "{text}");

    let contracts = cmcli().arg("contracts").arg(&xmi).output().unwrap();
    assert!(contracts.status.success());
    let text = String::from_utf8_lossy(&contracts.stdout);
    assert!(text.contains("PreCondition(DELETE"), "{text}");

    std::fs::remove_file(&xmi).unwrap();
}

#[test]
fn slice_and_codegen_via_binaries() {
    let xmi = tmp("s.xmi");
    let sliced = tmp("s-del.xmi");
    let outdir = tmp("s-out");
    assert!(cmcli()
        .arg("export-cinder")
        .arg(&xmi)
        .output()
        .unwrap()
        .status
        .success());
    let slice = cmcli()
        .args([
            "slice",
            xmi.to_str().unwrap(),
            "--method",
            "DELETE",
            sliced.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(slice.status.success(), "{slice:?}");
    assert!(String::from_utf8_lossy(&slice.stdout).contains("kept 3 of 11"));

    let uml2django = Command::new(env!("CARGO_BIN_EXE_uml2django"))
        .args(["GenDemo", xmi.to_str().unwrap()])
        .current_dir(std::env::temp_dir())
        .output()
        .unwrap();
    assert!(uml2django.status.success(), "{uml2django:?}");
    let gen_dir = std::env::temp_dir().join("gendemo");
    assert!(gen_dir.join("gendemo/views.py").exists());

    let codegen = cmcli()
        .args([
            "codegen",
            "CgDemo",
            xmi.to_str().unwrap(),
            outdir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(codegen.status.success(), "{codegen:?}");
    assert!(outdir.join("cgdemo/urls.py").exists());

    std::fs::remove_file(&xmi).unwrap();
    std::fs::remove_file(&sliced).unwrap();
    std::fs::remove_dir_all(&outdir).unwrap();
    std::fs::remove_dir_all(&gen_dir).unwrap();
}

#[test]
fn table1_binary_output() {
    let out = cmcli().arg("table1").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("proj_administrator"));
    assert!(text.contains("\"volume:delete\": \"role:admin\""));
}
