//! `uml2django ProjectName DiagramsFileinXML` — the paper's Section VI
//! command line, verbatim. Generates the Django monitor skeleton into
//! `./<projectname>/`.

use cm_cli::{cmd_codegen, CliError};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: uml2django ProjectName DiagramsFileinXML [--cloud-url URL]");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, CliError> {
    let project = args
        .first()
        .ok_or(CliError("missing ProjectName".to_string()))?;
    let xmi = args
        .get(1)
        .ok_or(CliError("missing DiagramsFileinXML".to_string()))?;
    let mut cloud_url = "http://127.0.0.1:8776".to_string();
    if let Some(pos) = args.iter().position(|a| a == "--cloud-url") {
        cloud_url = args
            .get(pos + 1)
            .ok_or(CliError("--cloud-url needs a value".to_string()))?
            .clone();
    }
    let out_dir = project.to_lowercase();
    cmd_codegen(project, Path::new(xmi), Path::new(&out_dir), &cloud_url)
}
