//! `cmcli` — the cloud-monitor toolbox; see `cmcli --help`.

use cm_cli::{
    cmd_audit, cmd_codegen, cmd_contracts, cmd_export_cinder, cmd_metrics, cmd_models,
    cmd_mutate_campaign, cmd_rbac_lint, cmd_slice, cmd_table1, cmd_validate, parse_criterion,
    usage, CliError,
};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok((output, ok)) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                // A gate failed (kill-matrix regression, lint finding):
                // the report above says why — no usage dump.
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

/// Flag value lookup for `--flag VALUE` style arguments.
fn flag_value<'a>(rest: &[&'a str], flag: &str) -> Result<Option<&'a str>, CliError> {
    match rest.iter().position(|a| *a == flag) {
        None => Ok(None),
        Some(pos) => rest
            .get(pos + 1)
            .copied()
            .filter(|v| !v.starts_with("--"))
            .map(Some)
            .ok_or(CliError(format!("{flag} needs a value"))),
    }
}

fn run(args: &[String]) -> Result<(String, bool), CliError> {
    let rest: Vec<&str> = args.iter().skip(1).map(String::as_str).collect();
    match args.first().map(String::as_str) {
        // The gated commands: their reports decide the exit code.
        Some("mutate") => {
            if rest.first() != Some(&"campaign") {
                return Err(CliError("mutate needs the `campaign` subcommand".into()));
            }
            let out = flag_value(&rest, "--out")?.map(Path::new);
            let baseline = flag_value(&rest, "--baseline")?.map(Path::new);
            cmd_mutate_campaign(out, baseline)
        }
        Some("rbac") => {
            if rest.first() != Some(&"lint") {
                return Err(CliError("rbac needs the `lint` subcommand".into()));
            }
            cmd_rbac_lint(rest.get(1).map(Path::new))
        }
        Some("audit") if rest.first() == Some(&"replay") => {
            let dir = rest
                .get(1)
                .filter(|v| !v.starts_with("--"))
                .ok_or(CliError("audit replay needs <log-dir>".into()))?;
            cm_cli::cmd_audit_replay(Path::new(dir), rest.contains(&"--extended"))
        }
        Some("audit") if rest.first() == Some(&"verify") => {
            let dir = rest
                .get(1)
                .ok_or(CliError("audit verify needs <log-dir>".into()))?;
            cm_cli::cmd_audit_verify(Path::new(dir))
        }
        _ => run_inner(args).map(|text| (text, true)),
    }
}

fn run_inner(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("--help" | "-h" | "help") => Ok(usage().to_string()),
        Some("export-cinder") => {
            let first = it
                .next()
                .ok_or(CliError("export-cinder needs <out.xmi>".into()))?;
            if first == "--extended" {
                let out = it
                    .next()
                    .ok_or(CliError("export-cinder needs <out.xmi>".into()))?;
                cm_cli::cmd_export_cinder_extended(Path::new(out))
            } else {
                cmd_export_cinder(Path::new(first))
            }
        }
        Some("validate") => {
            let xmi = it.next().ok_or(CliError("validate needs <xmi>".into()))?;
            cmd_validate(Path::new(xmi))
        }
        Some("models") => {
            let xmi = it.next().ok_or(CliError("models needs <xmi>".into()))?;
            let dot = it.next() == Some("--dot");
            cmd_models(Path::new(xmi), dot)
        }
        Some("contracts") => {
            let xmi = it.next().ok_or(CliError("contracts needs <xmi>".into()))?;
            let rest: Vec<&str> = it.collect();
            cmd_contracts(
                Path::new(xmi),
                rest.contains(&"--simplify"),
                rest.contains(&"--weave-table1"),
                rest.contains(&"--stats"),
            )
        }
        Some("slice") => {
            let xmi = it.next().ok_or(CliError("slice needs <xmi>".into()))?;
            let kind = it
                .next()
                .ok_or(CliError("slice needs a criterion flag".into()))?;
            let values = it.next().ok_or(CliError("criterion needs values".into()))?;
            let out = it.next().ok_or(CliError("slice needs <out.xmi>".into()))?;
            let criterion = parse_criterion(kind, values)?;
            cmd_slice(Path::new(xmi), &criterion, Path::new(out))
        }
        Some("table1") => Ok(cmd_table1()),
        Some("codegen") => {
            let name = it
                .next()
                .ok_or(CliError("codegen needs <project>".into()))?;
            let xmi = it.next().ok_or(CliError("codegen needs <xmi>".into()))?;
            let dir = it
                .next()
                .ok_or(CliError("codegen needs <out-dir>".into()))?;
            let mut cloud_url = "http://127.0.0.1:8776".to_string();
            let rest: Vec<&str> = it.collect();
            if let Some(pos) = rest.iter().position(|a| *a == "--cloud-url") {
                cloud_url = rest
                    .get(pos + 1)
                    .ok_or(CliError("--cloud-url needs a value".into()))?
                    .to_string();
            }
            cmd_codegen(name, Path::new(xmi), Path::new(dir), &cloud_url)
        }
        Some("audit") => Ok(cmd_audit()),
        Some("serve") => {
            let rest: Vec<&str> = it.collect();
            let mut port = 8000u16;
            if let Some(pos) = rest.iter().position(|a| *a == "--port") {
                port = rest
                    .get(pos + 1)
                    .and_then(|p| p.parse().ok())
                    .ok_or(CliError("--port needs a number".into()))?;
            }
            let mut workers = cm_httpkit::ServerConfig::default().workers;
            if let Some(pos) = rest.iter().position(|a| *a == "--workers") {
                workers = rest
                    .get(pos + 1)
                    .and_then(|n| n.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or(CliError("--workers needs a positive number".into()))?;
            }
            let mut keep_alive = true;
            if let Some(pos) = rest.iter().position(|a| *a == "--keep-alive") {
                keep_alive = match rest.get(pos + 1) {
                    Some(&"on") => true,
                    Some(&"off") => false,
                    _ => return Err(CliError("--keep-alive needs on|off".into())),
                };
            }
            let mut transport = cm_httpkit::ServerConfig::default().transport;
            if let Some(pos) = rest.iter().position(|a| *a == "--transport") {
                transport = match rest.get(pos + 1) {
                    Some(&"reactor") => cm_httpkit::Transport::Reactor,
                    Some(&"worker-pool") => cm_httpkit::Transport::WorkerPool,
                    _ => return Err(CliError("--transport needs reactor|worker-pool".into())),
                };
            }
            let mut speculative_reads = false;
            if let Some(pos) = rest.iter().position(|a| *a == "--speculative-reads") {
                speculative_reads = match rest.get(pos + 1) {
                    Some(&"on") => true,
                    Some(&"off") => false,
                    _ => return Err(CliError("--speculative-reads needs on|off".into())),
                };
            }
            let mut policy = cm_core::DegradedPolicy::FailClosed;
            if let Some(pos) = rest.iter().position(|a| *a == "--degraded-policy") {
                policy = cm_cli::parse_degraded_policy(
                    rest.get(pos + 1)
                        .ok_or(CliError("--degraded-policy needs a value".into()))?,
                )?;
            }
            let mut snapshot_policy = cm_core::SnapshotPolicy::Full;
            if let Some(pos) = rest.iter().position(|a| *a == "--snapshot-policy") {
                snapshot_policy = cm_cli::parse_snapshot_policy(
                    rest.get(pos + 1)
                        .ok_or(CliError("--snapshot-policy needs a value".into()))?,
                )?;
            }
            let mut anti_entropy_every = 0u64;
            if let Some(pos) = rest.iter().position(|a| *a == "--anti-entropy-every") {
                anti_entropy_every = rest
                    .get(pos + 1)
                    .and_then(|n| n.parse().ok())
                    .ok_or(CliError("--anti-entropy-every needs a number".into()))?;
            }
            let mut identity_ttl = None;
            if let Some(pos) = rest.iter().position(|a| *a == "--identity-ttl-secs") {
                let secs: u64 = rest
                    .get(pos + 1)
                    .and_then(|n| n.parse().ok())
                    .ok_or(CliError("--identity-ttl-secs needs a number".into()))?;
                identity_ttl = Some(std::time::Duration::from_secs(secs));
            }
            let mut identity_cap = None;
            if let Some(pos) = rest.iter().position(|a| *a == "--identity-cache-cap") {
                identity_cap = Some(
                    rest.get(pos + 1)
                        .and_then(|n| n.parse().ok())
                        .filter(|n| *n > 0)
                        .ok_or(CliError(
                            "--identity-cache-cap needs a positive number".into(),
                        ))?,
                );
            }
            let mut client_config = cm_httpkit::ClientConfig::default();
            if let Some(pos) = rest.iter().position(|a| *a == "--request-deadline-ms") {
                let ms: u64 = rest
                    .get(pos + 1)
                    .and_then(|n| n.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or(CliError(
                        "--request-deadline-ms needs a positive number".into(),
                    ))?;
                client_config.request_deadline = std::time::Duration::from_millis(ms);
            }
            if let Some(pos) = rest.iter().position(|a| *a == "--breaker-threshold") {
                client_config.breaker_threshold = rest
                    .get(pos + 1)
                    .and_then(|n| n.parse().ok())
                    .ok_or(CliError("--breaker-threshold needs a number".into()))?;
            }
            let mut overload = cm_httpkit::OverloadConfig::default();
            if let Some(pos) = rest.iter().position(|a| *a == "--overload") {
                overload.enabled = match rest.get(pos + 1) {
                    Some(&"on") => true,
                    Some(&"off") => false,
                    _ => return Err(CliError("--overload needs on|off".into())),
                };
            }
            if let Some(pos) = rest.iter().position(|a| *a == "--overload-deadline-ms") {
                let ms: u64 = rest
                    .get(pos + 1)
                    .and_then(|n| n.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or(CliError(
                        "--overload-deadline-ms needs a positive number".into(),
                    ))?;
                overload.deadline = std::time::Duration::from_millis(ms);
            }
            if let Some(pos) = rest.iter().position(|a| *a == "--overload-queue-limit") {
                overload.queue_limit = rest
                    .get(pos + 1)
                    .and_then(|n| n.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or(CliError(
                        "--overload-queue-limit needs a positive number".into(),
                    ))?;
            }
            let mut audit_max_age = None;
            if let Some(pos) = rest.iter().position(|a| *a == "--audit-max-age-secs") {
                let secs: u64 = rest
                    .get(pos + 1)
                    .and_then(|n| n.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or(CliError(
                        "--audit-max-age-secs needs a positive number".into(),
                    ))?;
                audit_max_age = Some(std::time::Duration::from_secs(secs));
            }
            let audit_dir = flag_value(&rest, "--audit-dir")?.map(Path::new);
            serve(
                port,
                rest.contains(&"--extended"),
                workers,
                keep_alive,
                transport,
                speculative_reads,
                policy,
                snapshot_policy,
                anti_entropy_every,
                identity_ttl,
                identity_cap,
                client_config,
                audit_dir,
                overload,
                audit_max_age,
            )
        }
        Some("metrics") => {
            let addr = it.next().ok_or(CliError("metrics needs <addr>".into()))?;
            let rest: Vec<&str> = it.collect();
            let mut events_tail = None;
            if let Some(pos) = rest.iter().position(|a| *a == "--events") {
                events_tail = Some(
                    rest.get(pos + 1)
                        .and_then(|n| n.parse().ok())
                        .ok_or(CliError("--events needs a number".into()))?,
                );
            }
            cmd_metrics(addr, events_tail, rest.contains(&"--health"))
        }
        Some(other) => Err(CliError(format!("unknown command `{other}`"))),
    }
}

/// Run the simulated private cloud with a generated monitor proxy in
/// front, both over HTTP, until the process is killed.
#[allow(clippy::too_many_arguments)]
fn serve(
    port: u16,
    extended: bool,
    workers: usize,
    keep_alive: bool,
    transport: cm_httpkit::Transport,
    speculative_reads: bool,
    policy: cm_core::DegradedPolicy,
    snapshot_policy: cm_core::SnapshotPolicy,
    anti_entropy_every: u64,
    identity_ttl: Option<std::time::Duration>,
    identity_cap: Option<usize>,
    client_config: cm_httpkit::ClientConfig,
    audit_dir: Option<&Path>,
    overload: cm_httpkit::OverloadConfig,
    audit_max_age: Option<std::time::Duration>,
) -> Result<String, CliError> {
    use cm_cloudsim::PrivateCloud;
    use cm_core::{BrownoutConfig, BrownoutController, CloudMonitor};
    use cm_httpkit::{
        AdminRoutes, HttpServer, PooledClient, RemoteService, ServerConfig, ShedObserver,
    };
    use cm_model::cinder;
    use cm_obs::{BrownoutSignal, OverloadStats};
    use cm_rest::SharedRestService;
    use std::sync::Arc;

    // Overload accounting and the brownout ladder are shared three
    // ways: the monitor-facing server's reactor shards write the
    // stats, the brownout controller reads them to move the ladder,
    // and the admin routes surface both at /-/health and /-/metrics.
    let overload_enabled = overload.enabled;
    let overload_stats = Arc::new(OverloadStats::new());
    let brownout = Arc::new(BrownoutSignal::new());
    let overload = cm_httpkit::OverloadConfig {
        stats: Some(Arc::clone(&overload_stats)),
        ..overload
    };
    let overload_deadline = overload.deadline;
    let overload_queue_limit = overload.queue_limit;
    let mut monitor_config = ServerConfig {
        workers,
        keep_alive,
        transport,
        overload,
        ..ServerConfig::default()
    };
    // Every monitor worker may pin one pooled backend connection for the
    // duration of a probe batch, so the cloud side needs at least as many
    // workers as the monitor side to avoid self-inflicted queueing.
    let cloud_config = ServerConfig {
        workers: workers.max(ServerConfig::default().workers),
        keep_alive: true,
        transport,
        ..ServerConfig::default()
    };

    // No outer Mutex: the cloud and the monitor both serve concurrent
    // requests through `&self`, synchronizing internally per shard.
    let cloud = Arc::new(PrivateCloud::my_project());
    let cloud_handle = Arc::clone(&cloud);
    let cloud_server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(move |req| cloud_handle.call(&req)),
        cloud_config,
    )
    .map_err(|e| CliError(e.to_string()))?;

    let client = Arc::new(PooledClient::new(client_config));
    let remote = RemoteService::with_client(cloud_server.local_addr(), Arc::clone(&client));
    let monitor = if extended {
        CloudMonitor::generate_multi(
            &cinder::extended_resource_model(),
            &[
                &cinder::extended_behavioral_model(),
                &cinder::snapshot_behavioral_model(),
            ],
            None,
            remote,
        )
        .map_err(|e| CliError(e.message))?
    } else {
        CloudMonitor::generate(
            &cinder::resource_model(),
            &cinder::behavioral_model(),
            None,
            remote,
        )
        .map_err(|e| CliError(e.message))?
    };
    let mut monitor = monitor
        .degraded_policy(policy)
        .snapshot_policy(snapshot_policy)
        .anti_entropy_every(anti_entropy_every)
        .speculative_reads(speculative_reads)
        .brownout_signal(Arc::clone(&brownout));
    if let Some(ttl) = identity_ttl {
        monitor = monitor.identity_cache_ttl(ttl);
    }
    if let Some(cap) = identity_cap {
        monitor = monitor.identity_cache_capacity(cap);
    }
    // The durable audit log shares the monitor's metrics registry so
    // group-commit latency and drop counts land in /-/metrics.
    let audit_log = match audit_dir {
        Some(dir) => {
            let (log, report) = cm_audit::AuditLog::open(
                dir,
                cm_audit::AuditLogOptions {
                    max_age: audit_max_age,
                    durability_signal: Some(Arc::clone(&brownout)),
                    ..cm_audit::AuditLogOptions::default()
                },
                Some(monitor.metrics()),
            )
            .map_err(|e| CliError(format!("open audit log {}: {e}", dir.display())))?;
            println!(
                "audit log       : {} ({} records recovered, next offset {}{})",
                dir.display(),
                report.records,
                report.next_offset,
                if report.truncated_bytes > 0 {
                    format!(", truncated {} torn bytes", report.truncated_bytes)
                } else {
                    String::new()
                }
            );
            Some(Arc::new(log))
        }
        None => None,
    };
    if let Some(log) = &audit_log {
        monitor = monitor.audit_recorder(Arc::clone(log) as Arc<dyn cm_audit::AuditRecorder>);
    }
    monitor
        .authenticate("alice", "alice-pw")
        .map_err(|e| CliError(e.message))?;
    let mut admin = AdminRoutes::new(monitor.metrics(), monitor.events())
        .with_transport(Arc::clone(&client))
        .with_overload(Arc::clone(&overload_stats), Arc::clone(&brownout));
    if let Some(log) = &audit_log {
        admin = admin.with_stream(Arc::clone(log) as Arc<dyn cm_obs::TailStream>);
    }
    let monitor = Arc::new(monitor);
    // Every shed request lands in the audit trail as a Degraded verdict
    // with overload provenance — refused unjudged, never silently gone.
    let shed_monitor = Arc::clone(&monitor);
    monitor_config.shed_observer = Some(ShedObserver::new(move |request, decision| {
        shed_monitor.record_shed(request, decision);
    }));
    if overload_enabled {
        // The brownout controller samples the shed rate and moves the
        // ladder the monitor and audit log listen to.
        let mut controller = BrownoutController::new(
            Arc::clone(&overload_stats),
            Arc::clone(&brownout),
            BrownoutConfig::default(),
        )
        .with_metrics(monitor.metrics());
        std::thread::Builder::new()
            .name("cm-brownout".into())
            .spawn(move || loop {
                std::thread::sleep(controller.tick_interval());
                controller.tick();
            })
            .map_err(|e| CliError(format!("spawn brownout controller: {e}")))?;
    }
    let monitor_handle = Arc::clone(&monitor);
    let monitor_server = HttpServer::bind_with(
        ("127.0.0.1", port),
        admin.wrap(Arc::new(move |req| monitor_handle.call(&req))),
        monitor_config,
    )
    .map_err(|e| CliError(e.to_string()))?;

    println!("private cloud   : http://{}", cloud_server.local_addr());
    println!("cloud monitor   : http://{}", monitor_server.local_addr());
    println!(
        "transport       : {}, {} workers, keep-alive {}, speculative reads {}",
        match transport {
            cm_httpkit::Transport::Reactor => "reactor (epoll)",
            cm_httpkit::Transport::WorkerPool => "worker pool",
        },
        workers,
        if keep_alive { "on" } else { "off" },
        if speculative_reads { "on" } else { "off" }
    );
    println!(
        "resilience      : {policy:?}, deadline {:?}, breaker threshold {}",
        client.config().request_deadline,
        client.config().breaker_threshold
    );
    if overload_enabled {
        println!(
            "overload        : admission on, queue-wait budget {:?}, read queue limit {} \
             (sheds are marked 503 X-CM-Overload, audited as Degraded; brownout ladder live)",
            overload_deadline, overload_queue_limit
        );
    } else {
        println!("overload        : off (--overload on to enable deadline-aware admission)");
    }
    println!(
        "snapshots       : {snapshot_policy:?}{}",
        if snapshot_policy == cm_core::SnapshotPolicy::Replica {
            if anti_entropy_every > 0 {
                format!(", anti-entropy every {anti_entropy_every} replica serves")
            } else {
                ", anti-entropy on demand".to_string()
            }
        } else {
            String::new()
        }
    );
    println!("observability   : GET /-/metrics, /-/events?tail=N, /-/health (or `cmcli metrics`)");
    if audit_log.is_some() {
        println!(
            "audit stream    : GET /-/events/stream?from=N&max=M&wait_ms=T (resume from `next`)"
        );
    }
    println!("fixture users   : alice/alice-pw (admin), bob (member), carol (user)");
    println!(
        "authenticate    : POST /identity/auth/tokens {{\"auth\":{{\"user\":…,\"password\":…}}}}"
    );
    println!("volumes API     : /v3/1/volumes[/{{id}}] with X-Auth-Token");
    println!("press Ctrl+C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
