//! # cm-cli — command-line tools for model-driven cloud monitors
//!
//! Two binaries:
//!
//! * **`uml2django`** — the paper's exact CLI:
//!   `uml2django ProjectName DiagramsFileinXML` generates the Django
//!   monitor skeleton from an XMI file.
//! * **`cmcli`** — the full toolbox: validate models, render diagrams,
//!   print generated contracts, slice models, run the security audit, and
//!   serve a live monitored cloud over HTTP.
//!
//! Every command is implemented as a library function returning its
//! output as a `String`, so the whole surface is unit-testable without
//! process spawning.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use cm_codegen::{uml2django, Uml2DjangoOptions};
use cm_contracts::{
    generate_with, render_listing, CompiledContractSet, GenerateOptions, TraceabilityMatrix,
};
use cm_model::{
    behavioral_model_dot, behavioral_model_text, resource_model_dot, resource_model_text,
    slice_behavioral_model, validate_behavioral_model, validate_resource_model, SliceCriterion,
};
use cm_rest::RouteTable;
use cm_xmi::{export, import};
use std::fmt::Write as _;
use std::path::Path;

/// A CLI-level error: exit message for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

fn fail(message: impl Into<String>) -> CliError {
    CliError(message.into())
}

/// `cmcli export-cinder <out.xmi>` — write the paper's canned Figure 3
/// models as an XMI file (the starting point for every other command).
///
/// # Errors
///
/// I/O errors writing the file.
pub fn cmd_export_cinder(out_path: &Path) -> Result<String, CliError> {
    let xmi = export(
        Some(&cm_model::cinder::resource_model()),
        &[&cm_model::cinder::behavioral_model()],
    );
    std::fs::write(out_path, &xmi)?;
    Ok(format!(
        "wrote {} bytes to {}",
        xmi.len(),
        out_path.display()
    ))
}

/// `cmcli export-cinder --extended <out.xmi>` — the extended models:
/// volumes *and* snapshots, two state machines in one XMI file.
///
/// # Errors
///
/// I/O errors writing the file.
pub fn cmd_export_cinder_extended(out_path: &Path) -> Result<String, CliError> {
    let xmi = export(
        Some(&cm_model::cinder::extended_resource_model()),
        &[
            &cm_model::cinder::behavioral_model(),
            &cm_model::cinder::snapshot_behavioral_model(),
        ],
    );
    std::fs::write(out_path, &xmi)?;
    Ok(format!(
        "wrote {} bytes to {}",
        xmi.len(),
        out_path.display()
    ))
}

/// `cmcli validate <xmi>` — well-formedness report for both model kinds.
///
/// # Errors
///
/// I/O or XMI parse failures; validation *findings* are part of the
/// report, not an error.
pub fn cmd_validate(xmi_path: &Path) -> Result<String, CliError> {
    let text = std::fs::read_to_string(xmi_path)?;
    let doc = import(&text).map_err(|e| fail(e.to_string()))?;
    let mut out = String::new();
    match &doc.resources {
        Some(r) => {
            let report = validate_resource_model(r);
            let _ = writeln!(out, "resource model `{}`: {report}", r.name);
        }
        None => {
            let _ = writeln!(out, "no resource model in file");
        }
    }
    for b in &doc.behaviors {
        let report = validate_behavioral_model(b, doc.resources.as_ref());
        let _ = writeln!(out, "behavioral model `{}`: {report}", b.name);
        if let Some(resources) = &doc.resources {
            let findings = cm_model::typecheck_behavioral_model(b, resources);
            if findings.is_empty() {
                let _ = writeln!(out, "  OCL types: clean");
            }
            for f in findings {
                let _ = writeln!(out, "  {f}");
            }
        }
    }
    if doc.behaviors.is_empty() {
        let _ = writeln!(out, "no behavioral models in file");
    }
    Ok(out)
}

/// `cmcli models <xmi> [--dot]` — render the models as text or DOT.
///
/// # Errors
///
/// I/O or XMI parse failures.
pub fn cmd_models(xmi_path: &Path, dot: bool) -> Result<String, CliError> {
    let text = std::fs::read_to_string(xmi_path)?;
    let doc = import(&text).map_err(|e| fail(e.to_string()))?;
    let mut out = String::new();
    if let Some(r) = &doc.resources {
        out.push_str(&if dot {
            resource_model_dot(r)
        } else {
            resource_model_text(r)
        });
        out.push('\n');
    }
    for b in &doc.behaviors {
        out.push_str(&if dot {
            behavioral_model_dot(b)
        } else {
            behavioral_model_text(b)
        });
        out.push('\n');
    }
    Ok(out)
}

/// `cmcli contracts <xmi> [--simplify] [--weave-table1] [--stats]` —
/// print the generated contracts for every trigger, Listing 1 style.
/// With `stats`, also compile each set and report the per-contract
/// program sizes, memo-slot counts, and snapshot scopes.
///
/// # Errors
///
/// I/O, XMI parse, or contract-generation failures.
pub fn cmd_contracts(
    xmi_path: &Path,
    simplify: bool,
    weave_table1: bool,
    stats: bool,
) -> Result<String, CliError> {
    let text = std::fs::read_to_string(xmi_path)?;
    let doc = import(&text).map_err(|e| fail(e.to_string()))?;
    if doc.behaviors.is_empty() {
        return Err(fail("no behavioral model in file"));
    }
    let table = cm_rbac::cinder_table_extended();
    let options = GenerateOptions {
        security: weave_table1.then_some(&table),
        simplify,
    };
    let routes = doc.resources.as_ref().map(|r| RouteTable::derive(r, "/v3"));
    let mut out = String::new();
    for behavior in &doc.behaviors {
        let set = generate_with(behavior, &options).map_err(|e| fail(e.message))?;
        for contract in &set.contracts {
            let uri = routes
                .as_ref()
                .and_then(|rt| {
                    rt.route_for_trigger(contract.trigger.method, &contract.trigger.resource)
                })
                .map_or_else(
                    || format!(".../{}", contract.trigger.resource),
                    |r| r.template.to_string(),
                );
            out.push_str(&render_listing(contract, &uri));
            out.push('\n');
        }
        let matrix = TraceabilityMatrix::from_contracts(&set);
        let _ = writeln!(out, "Traceability ({}):", behavior.name);
        out.push_str(&matrix.render());
        out.push('\n');
        if stats {
            let compiled = CompiledContractSet::compile(&set);
            let _ = writeln!(out, "Compiled stats ({}):", behavior.name);
            for cc in compiled.contracts() {
                let pre = cc.pre_program();
                let post = cc.post_program();
                let _ = writeln!(
                    out,
                    "  {}: pre {} nodes / {} memo slots, post {} nodes / {} memo slots",
                    cc.trigger,
                    pre.node_count(),
                    pre.memo_slot_count(),
                    post.node_count(),
                    post.memo_slot_count()
                );
                let _ = writeln!(
                    out,
                    "    pre snapshot scope : {}",
                    scope_line(cc.pre_scope())
                );
                let _ = writeln!(
                    out,
                    "    post snapshot scope: {}",
                    scope_line(cc.post_scope())
                );
            }
            let _ = writeln!(out, "  symbols interned: {}", compiled.symbols().len());
            out.push('\n');
        }
    }
    Ok(out)
}

/// Render an attribute scope as `root.attr, root.attr` plus an
/// exactness marker for the wildcard fallback.
fn scope_line(scope: &cm_ocl::AttrScope) -> String {
    let pairs = scope
        .pairs()
        .iter()
        .map(|(root, attr)| format!("{root}.{attr}"))
        .collect::<Vec<_>>()
        .join(", ");
    let body = if pairs.is_empty() { "(empty)" } else { &pairs };
    if scope.is_exact() {
        body.to_string()
    } else {
        format!("{body} [inexact]")
    }
}

/// `cmcli slice <xmi> (--secreq IDS | --method METHODS) <out.xmi>` —
/// slice the behavioural model and write the sliced XMI.
///
/// # Errors
///
/// I/O, XMI parse, or criterion parse failures.
pub fn cmd_slice(
    xmi_path: &Path,
    criterion: &SliceCriterion,
    out_path: &Path,
) -> Result<String, CliError> {
    let text = std::fs::read_to_string(xmi_path)?;
    let doc = import(&text).map_err(|e| fail(e.to_string()))?;
    let behavior = doc
        .behaviors
        .first()
        .ok_or_else(|| fail("no behavioral model in file"))?;
    let sliced = slice_behavioral_model(behavior, criterion);
    let xmi = export(doc.resources.as_ref(), &[&sliced]);
    std::fs::write(out_path, &xmi)?;
    Ok(format!(
        "sliced `{}`: kept {} of {} transitions, {} of {} states -> {}",
        behavior.name,
        sliced.transitions.len(),
        behavior.transitions.len(),
        sliced.states.len(),
        behavior.states.len(),
        out_path.display()
    ))
}

/// `cmcli table1` — print the security-requirements table and its policy.
#[must_use]
pub fn cmd_table1() -> String {
    let table = cm_rbac::cinder_table1();
    format!("{}\n{}", table.render(), table.to_policy().render())
}

/// `cmcli codegen <project> <xmi> <out-dir> [--cloud-url URL]` — the
/// `uml2django` pipeline with an explicit output directory.
///
/// # Errors
///
/// I/O, XMI parse, or generation failures.
pub fn cmd_codegen(
    project: &str,
    xmi_path: &Path,
    out_dir: &Path,
    cloud_url: &str,
) -> Result<String, CliError> {
    let text = std::fs::read_to_string(xmi_path)?;
    let generated = uml2django(
        project,
        &text,
        &Uml2DjangoOptions {
            cloud_base_url: cloud_url.to_string(),
            security: None,
        },
    )
    .map_err(|e| fail(e.message))?;
    generated.write_to(out_dir)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "generated {} files ({} bytes) under {}",
        generated.files.len(),
        generated.total_bytes(),
        out_dir.display()
    );
    for (path, content) in &generated.files {
        let _ = writeln!(out, "  {:<24} {:>6} bytes", path, content.len());
    }
    Ok(out)
}

/// `cmcli audit` — run the oracle suite and both mutation campaigns
/// against the built-in simulated cloud.
#[must_use]
pub fn cmd_audit() -> String {
    use cm_mutation::{
        paper_mutants, run_campaign, run_extended_campaign, snapshot_catalog, standard_catalog,
    };
    let mut out = String::new();
    let baseline = cm_core::TestOracle.run(cm_cloudsim::PrivateCloud::my_project);
    let _ = writeln!(
        out,
        "baseline: {} scenarios, {} violations ({})",
        baseline.len(),
        baseline.violations().len(),
        if baseline.killed() { "FAULTY" } else { "clean" }
    );
    let paper = run_campaign(&paper_mutants());
    let _ = writeln!(
        out,
        "paper mutants: {}/{} killed",
        paper.killed(),
        paper.total()
    );
    let extended = run_campaign(&standard_catalog());
    out.push_str(&extended.render());
    let snapshots = run_extended_campaign(&snapshot_catalog());
    let _ = writeln!(
        out,
        "snapshot-resource campaign: {}/{} killed",
        snapshots.killed(),
        snapshots.total()
    );
    out
}

/// `cmcli audit replay <log-dir> [--extended]` — re-evaluate a durable
/// audit trace against the current contract set and diff the verdicts.
/// A contract set identical to the recording monitor's reproduces every
/// verdict (including Degraded and requirement attribution); an updated
/// set surfaces *diffs*, never errors. The returned flag is `false`
/// when any record diffs, so CI can gate on unexplained drift.
///
/// # Errors
///
/// I/O failures reading the log, or contract-generation failures.
pub fn cmd_audit_replay(dir: &Path, extended: bool) -> Result<(String, bool), CliError> {
    use cm_core::{ReplayEngine, ReplayOutcome};
    use cm_model::cinder;
    let records = cm_audit::read_records(dir)
        .map_err(|e| fail(format!("read audit log {}: {e}", dir.display())))?;
    let mut engine = if extended {
        ReplayEngine::from_behaviors(
            &[
                &cinder::extended_behavioral_model(),
                &cinder::snapshot_behavioral_model(),
            ],
            None,
        )
    } else {
        ReplayEngine::from_behaviors(&[&cinder::behavioral_model()], None)
    }
    .map_err(|e| fail(e.message))?;
    let report = engine.replay(&records);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "replayed {} records against the current contract set: {} matched, {} diffs",
        report.entries.len(),
        report.matched(),
        report.diff_count()
    );
    for entry in report.diffs() {
        let replayed = match &entry.replayed {
            ReplayOutcome::Verdict { verdict, .. } => verdict.label(),
            ReplayOutcome::Indeterminate(reason) => format!("indeterminate ({reason})"),
        };
        let _ = writeln!(
            out,
            "  seq {:>6} {} {}: recorded {}, replayed {}",
            entry.seq, entry.method, entry.path, entry.recorded, replayed
        );
    }
    if report.is_clean() {
        let _ = writeln!(out, "verdict sequence reproduced exactly");
    }
    Ok((out, report.is_clean()))
}

/// `cmcli audit verify <log-dir>` — integrity-check a durable audit
/// log by running the same recovery a monitor restart would: scan every
/// segment frame by frame, truncate any torn tail, quarantine corrupt
/// segments, and compare the result against the checkpoint. The
/// returned flag is `false` when committed records are missing or
/// segments were quarantined.
///
/// # Errors
///
/// I/O failures reading the log directory.
pub fn cmd_audit_verify(dir: &Path) -> Result<(String, bool), CliError> {
    let (records, recovered) = cm_audit::recover(dir)
        .map_err(|e| fail(format!("scan audit log {}: {e}", dir.display())))?;
    let report = &recovered.report;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} segments, {} records, next offset {}",
        dir.display(),
        report.segments,
        report.records,
        report.next_offset
    );
    if report.truncated_bytes > 0 {
        let _ = writeln!(
            out,
            "  truncated {} bytes of torn tail (uncommitted group)",
            report.truncated_bytes
        );
    }
    if report.quarantined_segments > 0 {
        let _ = writeln!(
            out,
            "  quarantined {} corrupt segment(s)",
            report.quarantined_segments
        );
    }
    match report.checkpoint {
        Some(committed) => {
            let _ = writeln!(
                out,
                "  checkpoint: {committed} committed, {} lost",
                report.lost_committed
            );
        }
        None => {
            let _ = writeln!(out, "  checkpoint: none");
        }
    }
    let violations: u64 = records.iter().filter(|r| r.verdict.is_violation()).count() as u64;
    let _ = writeln!(out, "  violations on record: {violations}");
    let ok = report.lost_committed == 0 && report.quarantined_segments == 0;
    let _ = writeln!(
        out,
        "durability contract {}",
        if ok { "held" } else { "VIOLATED" }
    );
    Ok((out, ok))
}

/// `cmcli mutate campaign [--out FILE] [--baseline FILE]` — run the
/// full kill-matrix campaign: every mutant in the standard and snapshot
/// catalogs against the extended oracle suite, reported as a
/// requirement × mutant matrix. With `--out` the machine-readable
/// matrix is written as JSON; with `--baseline` the run is diffed
/// against a committed baseline and the returned flag is `false` when
/// any baseline-detected mutant is no longer killed (the CI gate).
///
/// # Errors
///
/// I/O failures, or a baseline file that is not a kill-matrix JSON
/// document.
pub fn cmd_mutate_campaign(
    out: Option<&Path>,
    baseline: Option<&Path>,
) -> Result<(String, bool), CliError> {
    use cm_mutation::{full_catalog, run_kill_matrix, KillMatrix};
    let matrix = run_kill_matrix(&full_catalog());
    let mut report = matrix.render();
    let mut ok = true;
    if let Some(path) = out {
        std::fs::write(path, matrix.to_json().to_pretty_string())?;
        let _ = writeln!(report, "wrote kill matrix to {}", path.display());
    }
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| fail(format!("baseline {}: {e}", path.display())))?;
        let json = cm_rest::parse_json(&text)
            .map_err(|e| fail(format!("baseline {}: {e}", path.display())))?;
        let base = KillMatrix::from_json(&json)
            .map_err(|e| fail(format!("baseline {}: {e}", path.display())))?;
        let diff = matrix.diff(&base);
        report.push('\n');
        report.push_str(&diff.render());
        ok = !diff.is_regression();
    }
    Ok((report, ok))
}

/// `cmcli rbac lint [policy.json]` — static policy analysis:
/// contradictory rules, shadowed (unreachable) disjuncts, vacuous
/// grants, and roles that can reach no operation. Without a file the
/// built-in extended Table I policy is linted (it must be clean). The
/// returned flag is `false` when any diagnostic fires.
///
/// # Errors
///
/// I/O failures, or a policy file that is not a JSON object of rule
/// strings in the `policy.json` rule language.
pub fn cmd_rbac_lint(policy_path: Option<&Path>) -> Result<(String, bool), CliError> {
    use cm_rest::Json;
    let policy = match policy_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            let json =
                cm_rest::parse_json(&text).map_err(|e| fail(format!("{}: {e}", path.display())))?;
            let Json::Object(members) = &json else {
                return Err(fail(format!(
                    "{}: policy file must be a JSON object of rule strings",
                    path.display()
                )));
            };
            let entries = members
                .iter()
                .map(|(action, rule)| {
                    rule.as_str().map(|r| (action.as_str(), r)).ok_or_else(|| {
                        fail(format!(
                            "{}: rule for `{action}` must be a string",
                            path.display()
                        ))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            cm_rbac::PolicyFile::from_entries(entries)
                .map_err(|e| fail(format!("{}: {e}", path.display())))?
        }
        None => cm_rbac::cinder_table_extended().to_policy(),
    };
    // The roles of the paper's `myProject` fixture; roles the policy
    // mentions beyond these are added to the universe by the analyzer.
    let analysis = cm_rbac::analyze_policy(&policy, &["admin", "member", "user"]);
    Ok((analysis.render(), analysis.is_clean()))
}

/// `cmcli metrics <addr> [--events N] [--health]` — fetch and
/// pretty-print the observability endpoints of a running monitor proxy
/// (`cmcli serve`): `GET /-/metrics` by default (which includes the
/// transport's retry/shed/breaker-transition counters when the monitor
/// runs over a pooled client), `GET /-/events?tail=N` with `--events`,
/// and `GET /-/health` — per-backend circuit-breaker state — with
/// `--health`.
///
/// # Errors
///
/// Connection failures, non-success responses, or a body-less reply.
pub fn cmd_metrics(
    addr: &str,
    events_tail: Option<usize>,
    health: bool,
) -> Result<String, CliError> {
    use cm_model::HttpMethod;
    use cm_rest::RestRequest;
    let path = if health {
        "/-/health".to_string()
    } else {
        match events_tail {
            Some(n) => format!("/-/events?tail={n}"),
            None => "/-/metrics".to_string(),
        }
    };
    let addr = addr.trim_start_matches("http://").trim_end_matches('/');
    let response = cm_httpkit::send(addr, &RestRequest::new(HttpMethod::Get, path))
        .map_err(|e| fail(format!("could not reach {addr}: {e}")))?;
    if !response.status.is_success() {
        return Err(fail(format!("monitor answered {}", response.status)));
    }
    response
        .body
        .map(|body| body.to_pretty_string())
        .ok_or_else(|| fail("monitor sent an empty body"))
}

/// Parse a `--degraded-policy` value: `fail-closed`, `fail-open`
/// (uncapped), or `fail-open:N` (at most `N` unchecked forwards before
/// failing closed).
///
/// # Errors
///
/// Unknown policy names or an unparsable cap.
pub fn parse_degraded_policy(value: &str) -> Result<cm_core::DegradedPolicy, CliError> {
    use cm_core::DegradedPolicy;
    match value {
        "fail-closed" => Ok(DegradedPolicy::FailClosed),
        "fail-open" => Ok(DegradedPolicy::FailOpen {
            max_unchecked: u64::MAX,
        }),
        other => match other.strip_prefix("fail-open:") {
            Some(cap) => cap
                .parse()
                .map(|max_unchecked| DegradedPolicy::FailOpen { max_unchecked })
                .map_err(|_| fail(format!("fail-open cap must be a number, got `{cap}`"))),
            None => Err(fail(format!(
                "unknown degraded policy `{other}` (expected fail-closed | fail-open[:N])"
            ))),
        },
    }
}

/// Parse a `--snapshot-policy` value: `full`, `minimal`, `scoped`, or
/// `replica`.
///
/// # Errors
///
/// Unknown policy names.
pub fn parse_snapshot_policy(value: &str) -> Result<cm_core::SnapshotPolicy, CliError> {
    use cm_core::SnapshotPolicy;
    match value {
        "full" => Ok(SnapshotPolicy::Full),
        "minimal" => Ok(SnapshotPolicy::Minimal),
        "scoped" => Ok(SnapshotPolicy::Scoped),
        "replica" => Ok(SnapshotPolicy::Replica),
        other => Err(fail(format!(
            "unknown snapshot policy `{other}` (expected full | minimal | scoped | replica)"
        ))),
    }
}

/// Parse a slice criterion from CLI-ish arguments.
///
/// # Errors
///
/// Unknown method names.
pub fn parse_criterion(kind: &str, values: &str) -> Result<SliceCriterion, CliError> {
    let parts: Vec<String> = values.split(',').map(str::trim).map(String::from).collect();
    match kind {
        "--secreq" => Ok(SliceCriterion::Requirements(parts)),
        "--resource" => Ok(SliceCriterion::Resources(parts)),
        "--method" => {
            let methods = parts
                .iter()
                .map(|p| p.parse().map_err(|e| fail(format!("{e}"))))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SliceCriterion::Methods(methods))
        }
        other => Err(fail(format!("unknown slice criterion `{other}`"))),
    }
}

/// Usage text for `cmcli`.
#[must_use]
pub fn usage() -> &'static str {
    "cmcli — model-driven cloud monitor toolbox\n\
     \n\
     USAGE:\n\
       cmcli export-cinder [--extended] <out.xmi>  write the Figure 3 models\n\
       cmcli validate <xmi>                   well-formedness report\n\
       cmcli models <xmi> [--dot]             render models as text or Graphviz\n\
       cmcli contracts <xmi> [--simplify] [--weave-table1] [--stats]\n\
                                              print generated contracts (Listing 1);\n\
                                              --stats adds compiled program sizes,\n\
                                              memo slots, and snapshot scopes\n\
       cmcli slice <xmi> --secreq 1.4 <out>   slice by requirement ids\n\
       cmcli slice <xmi> --method DELETE <out> slice by trigger methods\n\
       cmcli table1                           print Table I + policy.json\n\
       cmcli codegen <name> <xmi> <dir> [--cloud-url URL]\n\
                                              generate the Django monitor\n\
       cmcli audit                            oracle + mutation campaigns\n\
       cmcli audit replay <log-dir> [--extended]\n\
                                              re-evaluate a durable audit trace\n\
                                              against the current contract set\n\
                                              and diff the verdicts; exits 1 on\n\
                                              any diff\n\
       cmcli audit verify <log-dir>           recovery-scan a durable audit log:\n\
                                              truncate torn tails, quarantine\n\
                                              corruption, check the checkpoint;\n\
                                              exits 1 when committed records\n\
                                              are missing\n\
       cmcli mutate campaign [--out FILE] [--baseline FILE]\n\
                                              full kill-matrix campaign; --out\n\
                                              writes KILL_MATRIX.json, --baseline\n\
                                              diffs against a committed matrix\n\
                                              and exits 1 on any regression\n\
       cmcli rbac lint [policy.json]          static policy analysis: contra-\n\
                                              dictions, shadowed rules, roles\n\
                                              with no reachable operation; exits\n\
                                              1 when a diagnostic fires (default:\n\
                                              the built-in Table I policy)\n\
       cmcli serve [--port P] [--extended]    run a live monitored cloud\n\
             [--audit-dir DIR]                durable crash-safe audit log; also\n\
                                              enables GET /-/events/stream\n\
             [--audit-max-age-secs S]         additionally expire audit segments\n\
                                              older than S seconds at rotation\n\
                                              (default: count-based retention\n\
                                              only)\n\
             [--overload on|off]              deadline-aware admission control:\n\
                                              shed requests whose queue wait\n\
                                              exhausts their budget (marked 503\n\
                                              X-CM-Overload, audited Degraded);\n\
                                              admin/health lanes never shed;\n\
                                              drives the brownout ladder\n\
                                              (default off)\n\
             [--overload-deadline-ms MS]      per-request queue-wait budget\n\
                                              (default 500)\n\
             [--overload-queue-limit N]       read-lane run-queue bound per\n\
                                              shard; mutations tolerate 2N\n\
                                              (default 1024)\n\
             [--workers N] [--keep-alive on|off]\n\
                                              size the worker pool and toggle\n\
                                              persistent connections\n\
             [--transport reactor|worker-pool]\n\
                                              serving engine for both hops:\n\
                                              readiness-polled epoll reactor\n\
                                              (default) or thread-per-connection\n\
                                              worker pool\n\
             [--speculative-reads on|off]     pipeline safe GETs with their\n\
                                              probes in one backend batch\n\
                                              (default off; verdicts and\n\
                                              responses are unchanged)\n\
             [--degraded-policy fail-closed|fail-open[:N]]\n\
                                              what Enforce does when the cloud\n\
                                              cannot be snapshotted (default\n\
                                              fail-closed; fail-open:N allows\n\
                                              at most N unchecked forwards)\n\
             [--snapshot-policy full|minimal|scoped|replica]\n\
                                              how the OCL environment is\n\
                                              materialised (default full);\n\
                                              replica = model-derived shadow\n\
                                              state, zero probes steady-state\n\
             [--anti-entropy-every N]         under replica: scheduled probe\n\
                                              reconciliation every N replica-\n\
                                              served requests, surfacing out-\n\
                                              of-band cloud edits as drift\n\
                                              (0 = on-demand only, default)\n\
             [--identity-ttl-secs S] [--identity-cache-cap N]\n\
                                              token-introspection cache tuning\n\
                                              (defaults 60s, 4096 entries);\n\
                                              hit/miss counters in /-/metrics\n\
             [--request-deadline-ms MS] [--breaker-threshold N]\n\
                                              total per-request budget across\n\
                                              retries, and consecutive fresh-\n\
                                              connection failures before the\n\
                                              circuit breaker opens (0 = off)\n\
       cmcli metrics <addr> [--events N] [--health]\n\
                                              query /-/metrics (incl. transport\n\
                                              retry/shed/breaker counters),\n\
                                              /-/events, or /-/health breaker\n\
                                              state of a running monitor\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cmcli-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn export_then_validate_then_models() {
        let path = tmp("a.xmi");
        let msg = cmd_export_cinder(&path).unwrap();
        assert!(msg.contains("wrote"));
        let report = cmd_validate(&path).unwrap();
        assert!(report.contains("resource model `Cinder`: model is well-formed"));
        assert!(report.contains("behavioral model `CinderProject`"));
        assert!(
            report.contains("paper-compat") || report.contains("OCL types"),
            "{report}"
        );
        let text = cmd_models(&path, false).unwrap();
        assert!(text.contains("collection Volumes"));
        let dot = cmd_models(&path, true).unwrap();
        assert!(dot.contains("digraph"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn contracts_command_prints_listings() {
        let path = tmp("b.xmi");
        cmd_export_cinder(&path).unwrap();
        let out = cmd_contracts(&path, false, false, false).unwrap();
        assert!(out.contains("PreCondition(DELETE(/v3/{project_id}/volumes/{volume_id})):"));
        assert!(out.contains("Traceability (CinderProject):"));
        let simplified = cmd_contracts(&path, true, true, false).unwrap();
        assert!(simplified.contains("PostCondition"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn contracts_stats_reports_compiled_programs() {
        let path = tmp("b-stats.xmi");
        cmd_export_cinder(&path).unwrap();
        let out = cmd_contracts(&path, false, false, true).unwrap();
        assert!(out.contains("Compiled stats (CinderProject):"), "{out}");
        assert!(out.contains("DELETE(volume): pre "), "{out}");
        assert!(out.contains("memo slots"), "{out}");
        assert!(out.contains("pre snapshot scope : "), "{out}");
        assert!(out.contains("volume.status"), "{out}");
        assert!(out.contains("symbols interned: "), "{out}");
        // Without the flag, no stats section.
        let plain = cmd_contracts(&path, false, false, false).unwrap();
        assert!(!plain.contains("Compiled stats"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn slice_command_roundtrips() {
        let input = tmp("c.xmi");
        let output = tmp("c-sliced.xmi");
        cmd_export_cinder(&input).unwrap();
        let msg = cmd_slice(
            &input,
            &parse_criterion("--secreq", "1.4").unwrap(),
            &output,
        )
        .unwrap();
        assert!(msg.contains("kept 3 of 11 transitions"), "{msg}");
        // The sliced file validates and regenerates contracts.
        let report = cmd_validate(&output).unwrap();
        assert!(report.contains("well-formed"), "{report}");
        let contracts = cmd_contracts(&output, false, false, false).unwrap();
        assert!(contracts.contains("DELETE"));
        assert!(!contracts.contains("PreCondition(POST"));
        std::fs::remove_file(&input).unwrap();
        std::fs::remove_file(&output).unwrap();
    }

    #[test]
    fn criterion_parsing() {
        assert!(matches!(
            parse_criterion("--method", "GET,DELETE").unwrap(),
            SliceCriterion::Methods(m) if m.len() == 2
        ));
        assert!(parse_criterion("--method", "BREW").is_err());
        assert!(parse_criterion("--bogus", "x").is_err());
        assert!(matches!(
            parse_criterion("--resource", "volume").unwrap(),
            SliceCriterion::Resources(r) if r == vec!["volume".to_string()]
        ));
    }

    #[test]
    fn table1_command() {
        let out = cmd_table1();
        assert!(out.contains("proj_administrator"));
        assert!(out.contains("volume:delete"));
    }

    #[test]
    fn codegen_command_writes_tree() {
        let input = tmp("d.xmi");
        let dir = tmp("d-out");
        cmd_export_cinder(&input).unwrap();
        let msg = cmd_codegen("CMonitor", &input, &dir, "http://cloud:8776").unwrap();
        assert!(msg.contains("generated 5 files"));
        assert!(dir.join("cmonitor/views.py").exists());
        std::fs::remove_file(&input).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn audit_command_reports_kills() {
        let out = cmd_audit();
        assert!(out.contains("baseline"), "{out}");
        assert!(out.contains("clean"));
        assert!(out.contains("paper mutants: 3/3 killed"));
        assert!(out.contains("Overall: 24/25"));
    }

    #[test]
    fn mutate_campaign_writes_matrix_and_gates_on_baseline() {
        let out = tmp("matrix.json");
        let (report, ok) = cmd_mutate_campaign(Some(&out), None).unwrap();
        assert!(ok, "{report}");
        assert!(report.contains("Overall: "), "{report}");
        assert!(out.exists());

        // The matrix it just wrote is, by construction, a clean baseline.
        let (report, ok) = cmd_mutate_campaign(None, Some(&out)).unwrap();
        assert!(ok, "{report}");
        assert!(
            report.contains("kill matrix matches the baseline"),
            "{report}"
        );

        // Doctor the baseline: claim a mutant we actually miss was
        // detected, so the rerun must flag a regression.
        let text = std::fs::read_to_string(&out).unwrap();
        let doctored = text.replacen("\"missed\"", "\"detected\"", 1);
        assert_ne!(text, doctored, "expected at least one missed mutant");
        std::fs::write(&out, &doctored).unwrap();
        let (report, ok) = cmd_mutate_campaign(None, Some(&out)).unwrap();
        assert!(!ok, "{report}");
        assert!(report.contains("REGRESSION"), "{report}");

        // A garbage baseline is an error, not a pass.
        std::fs::write(&out, "[]").unwrap();
        assert!(cmd_mutate_campaign(None, Some(&out)).is_err());
        std::fs::remove_file(&out).unwrap();
    }

    #[test]
    fn rbac_lint_passes_builtin_policy_and_flags_seeded_contradiction() {
        let (report, ok) = cmd_rbac_lint(None).unwrap();
        assert!(ok, "{report}");
        assert!(report.contains("clean"), "{report}");

        let path = tmp("bad-policy.json");
        std::fs::write(
            &path,
            r#"{"volume:get": "role:admin or role:member or role:user",
                "volume:delete": "role:admin and not role:admin"}"#,
        )
        .unwrap();
        let (report, ok) = cmd_rbac_lint(Some(&path)).unwrap();
        assert!(!ok, "{report}");
        assert!(report.contains("contradiction"), "{report}");
        assert!(report.contains("volume:delete"), "{report}");

        std::fs::write(&path, r#"{"volume:get": 7}"#).unwrap();
        assert!(cmd_rbac_lint(Some(&path)).is_err());
        std::fs::write(&path, "not json").unwrap();
        assert!(cmd_rbac_lint(Some(&path)).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn validate_rejects_garbage() {
        let path = tmp("e.xmi");
        std::fs::write(&path, "not xml at all").unwrap();
        assert!(cmd_validate(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn metrics_command_queries_a_live_admin_endpoint() {
        use cm_httpkit::{AdminRoutes, HttpServer};
        use cm_obs::{EventSink, MetricsRegistry, MonitorEvent, RingBufferSink};
        use cm_rest::{parse_json, Json, RestRequest, RestResponse};
        use std::sync::Arc;

        let metrics = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(RingBufferSink::new(8));
        for _ in 0..2 {
            let event = MonitorEvent {
                method: "GET".into(),
                path: "/v3/1/volumes".into(),
                verdict: "pass".into(),
                status: 200,
                ..MonitorEvent::default()
            };
            metrics.observe(&event);
            sink.emit(event);
        }
        let admin = AdminRoutes::new(metrics, sink);
        let server = HttpServer::bind(
            "127.0.0.1:0",
            admin.wrap(Arc::new(|_req: RestRequest| RestResponse::ok(Json::Null))),
        )
        .unwrap();
        let addr = server.local_addr().to_string();

        let metrics_out = cmd_metrics(&addr, None, false).unwrap();
        let parsed = parse_json(&metrics_out).unwrap();
        assert_eq!(parsed.get("requests").unwrap().as_int(), Some(2));

        let events_out = cmd_metrics(&format!("http://{addr}"), Some(1), false).unwrap();
        let parsed = parse_json(&events_out).unwrap();
        assert_eq!(parsed.get("events").unwrap().as_array().unwrap().len(), 1);

        let health_out = cmd_metrics(&addr, None, true).unwrap();
        let parsed = parse_json(&health_out).unwrap();
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("ok"));

        server.shutdown();
        assert!(cmd_metrics(&addr, None, false).is_err());
    }

    #[test]
    fn degraded_policy_parsing() {
        use cm_core::DegradedPolicy;
        assert_eq!(
            parse_degraded_policy("fail-closed").unwrap(),
            DegradedPolicy::FailClosed
        );
        assert_eq!(
            parse_degraded_policy("fail-open").unwrap(),
            DegradedPolicy::FailOpen {
                max_unchecked: u64::MAX
            }
        );
        assert_eq!(
            parse_degraded_policy("fail-open:7").unwrap(),
            DegradedPolicy::FailOpen { max_unchecked: 7 }
        );
        assert!(parse_degraded_policy("fail-open:many").is_err());
        assert!(parse_degraded_policy("shrug").is_err());
    }

    #[test]
    fn usage_mentions_every_command() {
        let u = usage();
        for cmd in [
            "export-cinder",
            "validate",
            "models",
            "contracts",
            "slice",
            "table1",
            "codegen",
            "audit",
            "mutate campaign",
            "--baseline",
            "rbac lint",
            "serve",
            "metrics",
            "--degraded-policy",
            "--request-deadline-ms",
            "--breaker-threshold",
            "--health",
        ] {
            assert!(u.contains(cmd), "usage missing {cmd}");
        }
    }
}

#[cfg(test)]
mod extended_cli_tests {
    use super::*;

    #[test]
    fn extended_export_carries_both_machines() {
        let path = std::env::temp_dir().join(format!("cmcli-ext-{}.xmi", std::process::id()));
        cmd_export_cinder_extended(&path).unwrap();
        let report = cmd_validate(&path).unwrap();
        assert!(report.contains("behavioral model `CinderProject`"));
        assert!(report.contains("behavioral model `CinderSnapshots`"));
        let contracts = cmd_contracts(&path, true, false, false).unwrap();
        assert!(
            contracts
                .contains("PreCondition(POST(/v3/{project_id}/volumes/{volume_id}/snapshots)):"),
            "{contracts}"
        );
        assert!(contracts.contains(
            "PreCondition(DELETE(/v3/{project_id}/volumes/{volume_id}/snapshots/{snapshot_id})):"
        ));
        assert!(contracts.contains("Traceability (CinderSnapshots):"));
        std::fs::remove_file(&path).unwrap();
    }
}
