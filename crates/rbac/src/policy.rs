//! `policy.json`-style access rules.
//!
//! "OpenStack services define the permitted requests based on the access
//! rules introduced in their policy.json files, which follow the RBAC
//! paradigm" (paper, Section IV). This module implements the rule language
//! subset those files use: `role:<name>`, `group:<name>`,
//! `user_id:<id>`, the constants `@` (always) and `!` (never), and the
//! connectives `and`, `or`, `not` with parentheses.

use crate::token::TokenInfo;
use std::collections::HashMap;
use std::fmt;

/// A parsed policy rule expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rule {
    /// `@` — always permitted.
    Always,
    /// `!` — never permitted.
    Never,
    /// `role:<name>` — requester holds the role in the scoped project.
    Role(String),
    /// `group:<name>` — requester belongs to the usergroup.
    Group(String),
    /// `user_id:<id>` — requester is exactly this user.
    UserId(u64),
    /// Negation.
    Not(Box<Rule>),
    /// Conjunction.
    And(Box<Rule>, Box<Rule>),
    /// Disjunction.
    Or(Box<Rule>, Box<Rule>),
}

impl Rule {
    /// Evaluate the rule against a validated token.
    #[must_use]
    pub fn check(&self, token: &TokenInfo) -> bool {
        match self {
            Rule::Always => true,
            Rule::Never => false,
            Rule::Role(r) => token.roles.iter().any(|x| x == r),
            Rule::Group(g) => token.groups.iter().any(|x| x == g),
            Rule::UserId(id) => token.user_id == *id,
            Rule::Not(inner) => !inner.check(token),
            Rule::And(a, b) => a.check(token) && b.check(token),
            Rule::Or(a, b) => a.check(token) || b.check(token),
        }
    }

    /// Convenience: `role:<name>`.
    #[must_use]
    pub fn role(name: impl Into<String>) -> Rule {
        Rule::Role(name.into())
    }

    /// Disjunction of `role:` atoms, `Never` when empty.
    #[must_use]
    pub fn any_role<I: IntoIterator<Item = S>, S: Into<String>>(roles: I) -> Rule {
        let mut it = roles.into_iter();
        match it.next() {
            None => Rule::Never,
            Some(first) => it.fold(Rule::role(first), |acc, r| {
                Rule::Or(Box::new(acc), Box::new(Rule::role(r)))
            }),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::Always => write!(f, "@"),
            Rule::Never => write!(f, "!"),
            Rule::Role(r) => write!(f, "role:{r}"),
            Rule::Group(g) => write!(f, "group:{g}"),
            Rule::UserId(id) => write!(f, "user_id:{id}"),
            Rule::Not(inner) => write!(f, "not ({inner})"),
            Rule::And(a, b) => write!(f, "({a} and {b})"),
            Rule::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

/// Error parsing a rule string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy rule parse error: {}", self.message)
    }
}

impl std::error::Error for RuleParseError {}

/// Parse a rule string, e.g. `"role:admin or role:member"`.
///
/// # Errors
///
/// Returns [`RuleParseError`] on unknown atoms, unbalanced parentheses or
/// trailing junk.
pub fn parse_rule(src: &str) -> Result<Rule, RuleParseError> {
    let tokens = tokenize(src)?;
    let mut p = RuleParser { tokens, pos: 0 };
    let rule = p.or_expr()?;
    if p.pos != p.tokens.len() {
        return Err(RuleParseError {
            message: format!("trailing input near `{}`", p.tokens[p.pos]),
        });
    }
    Ok(rule)
}

fn tokenize(src: &str) -> Result<Vec<String>, RuleParseError> {
    let mut out = Vec::new();
    let mut rest = src.trim();
    while !rest.is_empty() {
        let c = rest.chars().next().expect("non-empty");
        match c {
            '(' | ')' | '@' | '!' => {
                out.push(c.to_string());
                rest = rest[1..].trim_start();
            }
            _ => {
                let end = rest
                    .find(|ch: char| ch.is_whitespace() || ch == '(' || ch == ')')
                    .unwrap_or(rest.len());
                if end == 0 {
                    return Err(RuleParseError {
                        message: format!("unexpected character `{c}`"),
                    });
                }
                out.push(rest[..end].to_string());
                rest = rest[end..].trim_start();
            }
        }
    }
    Ok(out)
}

struct RuleParser {
    tokens: Vec<String>,
    pos: usize,
}

impl RuleParser {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn or_expr(&mut self) -> Result<Rule, RuleParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some("or") {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Rule::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Rule, RuleParseError> {
        let mut lhs = self.unary()?;
        while self.peek() == Some("and") {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Rule::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Rule, RuleParseError> {
        match self.peek() {
            Some("not") => {
                self.pos += 1;
                Ok(Rule::Not(Box::new(self.unary()?)))
            }
            Some("(") => {
                self.pos += 1;
                let inner = self.or_expr()?;
                if self.peek() != Some(")") {
                    return Err(RuleParseError {
                        message: "expected `)`".to_string(),
                    });
                }
                self.pos += 1;
                Ok(inner)
            }
            Some("@") => {
                self.pos += 1;
                Ok(Rule::Always)
            }
            Some("!") => {
                self.pos += 1;
                Ok(Rule::Never)
            }
            Some(atom) => {
                let rule = if let Some(role) = atom.strip_prefix("role:") {
                    Rule::Role(role.to_string())
                } else if let Some(group) = atom.strip_prefix("group:") {
                    Rule::Group(group.to_string())
                } else if let Some(uid) = atom.strip_prefix("user_id:") {
                    Rule::UserId(uid.parse().map_err(|_| RuleParseError {
                        message: format!("bad user id in `{atom}`"),
                    })?)
                } else {
                    return Err(RuleParseError {
                        message: format!("unknown atom `{atom}`"),
                    });
                };
                self.pos += 1;
                Ok(rule)
            }
            None => Err(RuleParseError {
                message: "unexpected end of rule".to_string(),
            }),
        }
    }
}

/// A policy file: a map from action names (e.g. `volume:delete`) to rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicyFile {
    rules: Vec<(String, Rule)>,
}

/// Decision when an action has no explicit rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DefaultDecision {
    /// Deny unlisted actions (fail closed; default).
    #[default]
    Deny,
    /// Allow unlisted actions (OpenStack's historical default-open).
    Allow,
}

impl PolicyFile {
    /// Create an empty policy file.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the rule for an action, replacing any existing rule.
    pub fn set(&mut self, action: impl Into<String>, rule: Rule) -> &mut Self {
        let action = action.into();
        if let Some(entry) = self.rules.iter_mut().find(|(a, _)| *a == action) {
            entry.1 = rule;
        } else {
            self.rules.push((action, rule));
        }
        self
    }

    /// The rule for an action, if present.
    #[must_use]
    pub fn rule(&self, action: &str) -> Option<&Rule> {
        self.rules.iter().find(|(a, _)| a == action).map(|(_, r)| r)
    }

    /// Check whether `token` may perform `action`.
    #[must_use]
    pub fn check(&self, action: &str, token: &TokenInfo, default: DefaultDecision) -> bool {
        match self.rule(action) {
            Some(rule) => rule.check(token),
            None => default == DefaultDecision::Allow,
        }
    }

    /// All actions, in insertion order.
    pub fn actions(&self) -> impl Iterator<Item = &str> {
        self.rules.iter().map(|(a, _)| a.as_str())
    }

    /// Parse a minimal JSON-ish policy map `{"action": "rule", ...}`.
    ///
    /// # Errors
    ///
    /// Returns [`RuleParseError`] for malformed rule strings; the outer
    /// JSON must be an object of string values.
    pub fn from_entries<'a, I>(entries: I) -> Result<Self, RuleParseError>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut pf = PolicyFile::new();
        for (action, rule_src) in entries {
            pf.set(action, parse_rule(rule_src)?);
        }
        Ok(pf)
    }

    /// Render in policy.json style.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (a, r)) in self.rules.iter().enumerate() {
            out.push_str(&format!("  \"{a}\": \"{r}\""));
            if i + 1 < self.rules.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }

    /// A map view of the rules (for diffing in tests).
    #[must_use]
    pub fn as_map(&self) -> HashMap<&str, &Rule> {
        self.rules.iter().map(|(a, r)| (a.as_str(), r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token(roles: &[&str], groups: &[&str]) -> TokenInfo {
        TokenInfo {
            token: "tok-x".into(),
            user_id: 7,
            user_name: "u".into(),
            project_id: 1,
            roles: roles.iter().map(|s| s.to_string()).collect(),
            groups: groups.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn parses_simple_role_rule() {
        let r = parse_rule("role:admin").unwrap();
        assert!(r.check(&token(&["admin"], &[])));
        assert!(!r.check(&token(&["member"], &[])));
    }

    #[test]
    fn parses_or_chain() {
        let r = parse_rule("role:admin or role:member").unwrap();
        assert!(r.check(&token(&["member"], &[])));
        assert!(!r.check(&token(&["user"], &[])));
    }

    #[test]
    fn parses_and_with_group() {
        let r = parse_rule("role:admin and group:proj_administrator").unwrap();
        assert!(r.check(&token(&["admin"], &["proj_administrator"])));
        assert!(!r.check(&token(&["admin"], &["other"])));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let r = parse_rule("role:a or role:b and role:c").unwrap();
        // a | (b & c)
        assert!(r.check(&token(&["a"], &[])));
        assert!(r.check(&token(&["b", "c"], &[])));
        assert!(!r.check(&token(&["b"], &[])));
    }

    #[test]
    fn parentheses_and_not() {
        let r = parse_rule("not (role:a or role:b)").unwrap();
        assert!(r.check(&token(&["c"], &[])));
        assert!(!r.check(&token(&["a"], &[])));
    }

    #[test]
    fn constants() {
        assert!(parse_rule("@").unwrap().check(&token(&[], &[])));
        assert!(!parse_rule("!").unwrap().check(&token(&["admin"], &[])));
    }

    #[test]
    fn user_id_atom() {
        let r = parse_rule("user_id:7").unwrap();
        assert!(r.check(&token(&[], &[])));
        let r2 = parse_rule("user_id:8").unwrap();
        assert!(!r2.check(&token(&[], &[])));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_rule("").is_err());
        assert!(parse_rule("role:")
            .map(|r| r.check(&token(&[""], &[])))
            .unwrap_or(true));
        assert!(parse_rule("badatom").is_err());
        assert!(parse_rule("(role:a").is_err());
        assert!(parse_rule("role:a role:b").is_err());
        assert!(parse_rule("user_id:xyz").is_err());
    }

    #[test]
    fn display_reparses() {
        for src in [
            "role:admin or role:member",
            "not (role:a and group:g)",
            "@",
            "!",
        ] {
            let r = parse_rule(src).unwrap();
            let printed = r.to_string();
            let r2 = parse_rule(&printed).unwrap();
            assert_eq!(r, r2, "{src} -> {printed}");
        }
    }

    #[test]
    fn policy_file_check_with_defaults() {
        let mut pf = PolicyFile::new();
        pf.set("volume:delete", parse_rule("role:admin").unwrap());
        let admin = token(&["admin"], &[]);
        let member = token(&["member"], &[]);
        assert!(pf.check("volume:delete", &admin, DefaultDecision::Deny));
        assert!(!pf.check("volume:delete", &member, DefaultDecision::Deny));
        assert!(!pf.check("volume:ghost", &admin, DefaultDecision::Deny));
        assert!(pf.check("volume:ghost", &admin, DefaultDecision::Allow));
    }

    #[test]
    fn policy_set_replaces() {
        let mut pf = PolicyFile::new();
        pf.set("a", Rule::Always);
        pf.set("a", Rule::Never);
        assert_eq!(pf.rule("a"), Some(&Rule::Never));
        assert_eq!(pf.actions().count(), 1);
    }

    #[test]
    fn from_entries_and_render() {
        let pf = PolicyFile::from_entries([
            ("volume:get", "role:admin or role:member or role:user"),
            ("volume:delete", "role:admin"),
        ])
        .unwrap();
        let text = pf.render();
        assert!(text.contains("\"volume:delete\""));
        assert!(text.starts_with('{') && text.ends_with('}'));
    }

    #[test]
    fn any_role_builder() {
        let r = Rule::any_role(["admin", "member"]);
        assert!(r.check(&token(&["member"], &[])));
        assert_eq!(Rule::any_role(Vec::<String>::new()), Rule::Never);
    }
}
