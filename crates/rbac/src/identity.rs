//! Identity store: users, usergroups, roles and projects.
//!
//! Mirrors the slice of Keystone the paper relies on: "The projects are
//! created by the cloud administrator using Keystone and users or
//! usergroups are assigned the roles in these projects" (Section IV-B).
//! Users belong to usergroups; a usergroup is assigned a *role* in a
//! project; a user's effective roles in a project follow from its group
//! memberships.

use std::fmt;

/// A role name (e.g. `admin`, `member`, `user`).
pub type RoleName = String;

/// A user of the private cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct User {
    /// Unique user id.
    pub id: u64,
    /// Login name.
    pub name: String,
    /// Password for Keystone-style authentication (plaintext in the
    /// simulator — this is a test substrate, not a production IdP).
    pub password: String,
    /// Names of the usergroups the user belongs to.
    pub groups: Vec<String>,
}

/// A usergroup with its assigned role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserGroup {
    /// Group name, e.g. `proj_administrator`.
    pub name: String,
    /// Role the group holds in its project, e.g. `admin`.
    pub role: RoleName,
}

/// A project (tenant) of the private cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Project {
    /// Unique project id.
    pub id: u64,
    /// Project name, e.g. `myProject`.
    pub name: String,
    /// Usergroups assigned to the project.
    pub groups: Vec<UserGroup>,
}

impl Project {
    /// Role of a group in this project, if assigned.
    #[must_use]
    pub fn role_of_group(&self, group: &str) -> Option<&str> {
        self.groups
            .iter()
            .find(|g| g.name == group)
            .map(|g| g.role.as_str())
    }
}

/// Errors raised by the identity store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdentityError {
    /// Referenced user does not exist.
    UnknownUser(String),
    /// Referenced project does not exist.
    UnknownProject(u64),
    /// A uniqueness constraint was violated.
    Duplicate(String),
}

impl fmt::Display for IdentityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdentityError::UnknownUser(name) => write!(f, "unknown user `{name}`"),
            IdentityError::UnknownProject(id) => write!(f, "unknown project `{id}`"),
            IdentityError::Duplicate(what) => write!(f, "duplicate {what}"),
        }
    }
}

impl std::error::Error for IdentityError {}

/// The identity store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IdentityStore {
    users: Vec<User>,
    projects: Vec<Project>,
    next_user_id: u64,
    next_project_id: u64,
}

impl IdentityStore {
    /// Create an empty store.
    #[must_use]
    pub fn new() -> Self {
        IdentityStore {
            users: Vec::new(),
            projects: Vec::new(),
            next_user_id: 1,
            next_project_id: 1,
        }
    }

    /// Create a project with the given usergroup/role assignments.
    ///
    /// # Errors
    ///
    /// Returns [`IdentityError::Duplicate`] when the project name or one of
    /// its group names is already taken within the project.
    pub fn create_project(
        &mut self,
        name: impl Into<String>,
        groups: Vec<UserGroup>,
    ) -> Result<u64, IdentityError> {
        let name = name.into();
        if self.projects.iter().any(|p| p.name == name) {
            return Err(IdentityError::Duplicate(format!("project name `{name}`")));
        }
        for (i, g) in groups.iter().enumerate() {
            if groups[..i].iter().any(|h| h.name == g.name) {
                return Err(IdentityError::Duplicate(format!("group `{}`", g.name)));
            }
        }
        let id = self.next_project_id;
        self.next_project_id += 1;
        self.projects.push(Project { id, name, groups });
        Ok(id)
    }

    /// Create a user belonging to the given groups.
    ///
    /// # Errors
    ///
    /// Returns [`IdentityError::Duplicate`] when the user name is taken.
    pub fn create_user(
        &mut self,
        name: impl Into<String>,
        password: impl Into<String>,
        groups: Vec<String>,
    ) -> Result<u64, IdentityError> {
        let name = name.into();
        if self.users.iter().any(|u| u.name == name) {
            return Err(IdentityError::Duplicate(format!("user name `{name}`")));
        }
        let id = self.next_user_id;
        self.next_user_id += 1;
        self.users.push(User {
            id,
            name,
            password: password.into(),
            groups,
        });
        Ok(id)
    }

    /// Look up a user by name.
    #[must_use]
    pub fn user_by_name(&self, name: &str) -> Option<&User> {
        self.users.iter().find(|u| u.name == name)
    }

    /// Look up a user by id.
    #[must_use]
    pub fn user_by_id(&self, id: u64) -> Option<&User> {
        self.users.iter().find(|u| u.id == id)
    }

    /// Look up a project by id.
    #[must_use]
    pub fn project(&self, id: u64) -> Option<&Project> {
        self.projects.iter().find(|p| p.id == id)
    }

    /// Look up a project by name.
    #[must_use]
    pub fn project_by_name(&self, name: &str) -> Option<&Project> {
        self.projects.iter().find(|p| p.name == name)
    }

    /// All projects.
    #[must_use]
    pub fn projects(&self) -> &[Project] {
        &self.projects
    }

    /// Effective roles of a user in a project (via group assignments),
    /// in group order, deduplicated.
    ///
    /// # Errors
    ///
    /// Returns an error when the user or project does not exist.
    pub fn roles_of(
        &self,
        user_name: &str,
        project_id: u64,
    ) -> Result<Vec<RoleName>, IdentityError> {
        let user = self
            .user_by_name(user_name)
            .ok_or_else(|| IdentityError::UnknownUser(user_name.to_string()))?;
        let project = self
            .project(project_id)
            .ok_or(IdentityError::UnknownProject(project_id))?;
        let mut roles = Vec::new();
        for g in &user.groups {
            if let Some(role) = project.role_of_group(g) {
                if !roles.iter().any(|r| r == role) {
                    roles.push(role.to_string());
                }
            }
        }
        Ok(roles)
    }

    /// Verify a user's password; returns the user on success.
    #[must_use]
    pub fn authenticate(&self, user_name: &str, password: &str) -> Option<&User> {
        self.user_by_name(user_name)
            .filter(|u| u.password == password)
    }

    /// Reassign the role of a group within a project — used by the mutation
    /// harness to inject wrong-authorization faults.
    ///
    /// # Errors
    ///
    /// Returns an error when the project or group does not exist.
    pub fn set_group_role(
        &mut self,
        project_id: u64,
        group: &str,
        role: impl Into<RoleName>,
    ) -> Result<(), IdentityError> {
        let project = self
            .projects
            .iter_mut()
            .find(|p| p.id == project_id)
            .ok_or(IdentityError::UnknownProject(project_id))?;
        let g = project
            .groups
            .iter_mut()
            .find(|g| g.name == group)
            .ok_or_else(|| IdentityError::UnknownUser(group.to_string()))?;
        g.role = role.into();
        Ok(())
    }
}

/// Build the paper's `myProject` setup: three usergroups mapped to the
/// three roles of Table I, with one user in each group.
///
/// Users: `alice` (proj_administrator/admin), `bob`
/// (service_architect/member), `carol` (business_analyst/user), and
/// `mallory` (group `outsiders`, which holds **no role** in the project —
/// an authenticated but unauthorized principal, used to observe
/// policy-widening faults). All passwords equal the user name with the
/// suffix `-pw`.
#[must_use]
pub fn my_project_fixture() -> (IdentityStore, u64) {
    let mut store = IdentityStore::new();
    let project_id = store
        .create_project(
            "myProject",
            vec![
                UserGroup {
                    name: "proj_administrator".into(),
                    role: "admin".into(),
                },
                UserGroup {
                    name: "service_architect".into(),
                    role: "member".into(),
                },
                UserGroup {
                    name: "business_analyst".into(),
                    role: "user".into(),
                },
            ],
        )
        .expect("fresh store has no duplicates");
    store
        .create_user("alice", "alice-pw", vec!["proj_administrator".into()])
        .expect("fresh store");
    store
        .create_user("bob", "bob-pw", vec!["service_architect".into()])
        .expect("fresh store");
    store
        .create_user("carol", "carol-pw", vec!["business_analyst".into()])
        .expect("fresh store");
    store
        .create_user("mallory", "mallory-pw", vec!["outsiders".into()])
        .expect("fresh store");
    (store, project_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_has_three_users_with_roles() {
        let (store, pid) = my_project_fixture();
        assert_eq!(store.roles_of("alice", pid).unwrap(), vec!["admin"]);
        assert_eq!(store.roles_of("bob", pid).unwrap(), vec!["member"]);
        assert_eq!(store.roles_of("carol", pid).unwrap(), vec!["user"]);
        assert!(store.roles_of("mallory", pid).unwrap().is_empty());
    }

    #[test]
    fn authenticate_checks_password() {
        let (store, _) = my_project_fixture();
        assert!(store.authenticate("alice", "alice-pw").is_some());
        assert!(store.authenticate("alice", "wrong").is_none());
        assert!(store.authenticate("mallory", "x").is_none());
    }

    #[test]
    fn duplicate_project_name_rejected() {
        let (mut store, _) = my_project_fixture();
        assert!(matches!(
            store.create_project("myProject", vec![]),
            Err(IdentityError::Duplicate(_))
        ));
    }

    #[test]
    fn duplicate_user_rejected() {
        let (mut store, _) = my_project_fixture();
        assert!(store.create_user("alice", "x", vec![]).is_err());
    }

    #[test]
    fn duplicate_group_in_project_rejected() {
        let mut store = IdentityStore::new();
        let groups = vec![
            UserGroup {
                name: "g".into(),
                role: "admin".into(),
            },
            UserGroup {
                name: "g".into(),
                role: "member".into(),
            },
        ];
        assert!(store.create_project("p", groups).is_err());
    }

    #[test]
    fn roles_of_unknown_entities_error() {
        let (store, pid) = my_project_fixture();
        assert!(matches!(
            store.roles_of("nobody", pid),
            Err(IdentityError::UnknownUser(_))
        ));
        assert!(matches!(
            store.roles_of("alice", 999),
            Err(IdentityError::UnknownProject(_))
        ));
    }

    #[test]
    fn user_in_unassigned_group_has_no_role() {
        let (mut store, pid) = my_project_fixture();
        store
            .create_user("dave", "d", vec!["outsiders".into()])
            .unwrap();
        assert!(store.roles_of("dave", pid).unwrap().is_empty());
    }

    #[test]
    fn set_group_role_mutates() {
        let (mut store, pid) = my_project_fixture();
        store
            .set_group_role(pid, "business_analyst", "admin")
            .unwrap();
        assert_eq!(store.roles_of("carol", pid).unwrap(), vec!["admin"]);
        assert!(store.set_group_role(999, "x", "y").is_err());
        assert!(store.set_group_role(pid, "ghost", "y").is_err());
    }

    #[test]
    fn multiple_groups_deduplicate_roles() {
        let mut store = IdentityStore::new();
        let pid = store
            .create_project(
                "p",
                vec![
                    UserGroup {
                        name: "g1".into(),
                        role: "admin".into(),
                    },
                    UserGroup {
                        name: "g2".into(),
                        role: "admin".into(),
                    },
                ],
            )
            .unwrap();
        store
            .create_user("u", "pw", vec!["g1".into(), "g2".into()])
            .unwrap();
        assert_eq!(store.roles_of("u", pid).unwrap(), vec!["admin"]);
    }
}
