//! Keystone-style token service.
//!
//! "Cinder uses Keystone service to validate the user's credentials and
//! authorization requests" (paper, Section IV). The token service issues
//! scoped tokens (user × project) after password authentication and
//! validates them on each request, returning the user's effective roles
//! and groups in the scoped project.

use crate::identity::{IdentityStore, RoleName};
use std::collections::HashMap;
use std::fmt;

/// Data bound to a validated token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenInfo {
    /// The token string itself.
    pub token: String,
    /// User id.
    pub user_id: u64,
    /// User name.
    pub user_name: String,
    /// Project the token is scoped to.
    pub project_id: u64,
    /// Effective roles in the project.
    pub roles: Vec<RoleName>,
    /// Usergroups of the user.
    pub groups: Vec<String>,
}

impl TokenInfo {
    /// True if the token holds `role` in its project.
    #[must_use]
    pub fn has_role(&self, role: &str) -> bool {
        self.roles.iter().any(|r| r == role)
    }
}

/// Errors raised when issuing or validating tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenError {
    /// Bad user name or password.
    InvalidCredentials,
    /// The project does not exist.
    UnknownProject(u64),
    /// The token is unknown, expired or revoked.
    InvalidToken,
}

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenError::InvalidCredentials => write!(f, "invalid credentials"),
            TokenError::UnknownProject(id) => write!(f, "unknown project `{id}`"),
            TokenError::InvalidToken => write!(f, "invalid token"),
        }
    }
}

impl std::error::Error for TokenError {}

/// The token service. Owns no identity data; it is given an
/// [`IdentityStore`] reference per call so identity mutations (e.g. fault
/// injection) take effect immediately, as they would in a live Keystone.
///
/// Tokens expire after a configurable number of logical *ticks*
/// ([`TokenService::advance_time`]); the default lifetime is effectively
/// unlimited so tests that don't care about expiry never see it.
#[derive(Debug, Clone)]
pub struct TokenService {
    tokens: HashMap<String, TokenInfo>,
    issued_at: HashMap<String, u64>,
    counter: u64,
    now: u64,
    lifetime: u64,
}

impl Default for TokenService {
    fn default() -> Self {
        TokenService {
            tokens: HashMap::new(),
            issued_at: HashMap::new(),
            counter: 0,
            now: 0,
            lifetime: u64::MAX,
        }
    }
}

impl TokenService {
    /// Create an empty token service.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the token lifetime in logical ticks (Keystone's
    /// `[token] expiration`). Tokens older than this fail validation.
    #[must_use]
    pub fn with_lifetime(mut self, ticks: u64) -> Self {
        self.lifetime = ticks;
        self
    }

    /// Advance the logical clock (the simulator has no wall clock — time
    /// is a test input, as it should be).
    pub fn advance_time(&mut self, ticks: u64) {
        self.now = self.now.saturating_add(ticks);
    }

    /// Authenticate and issue a token scoped to `project_id`.
    ///
    /// # Errors
    ///
    /// [`TokenError::InvalidCredentials`] on bad user/password,
    /// [`TokenError::UnknownProject`] when the project does not exist.
    pub fn issue(
        &mut self,
        store: &IdentityStore,
        user_name: &str,
        password: &str,
        project_id: u64,
    ) -> Result<TokenInfo, TokenError> {
        let user = store
            .authenticate(user_name, password)
            .ok_or(TokenError::InvalidCredentials)?;
        if store.project(project_id).is_none() {
            return Err(TokenError::UnknownProject(project_id));
        }
        let roles = store
            .roles_of(user_name, project_id)
            .map_err(|_| TokenError::InvalidCredentials)?;
        self.counter += 1;
        let token = format!("tok-{:08}", self.counter);
        self.issued_at.insert(token.clone(), self.now);
        let info = TokenInfo {
            token: token.clone(),
            user_id: user.id,
            user_name: user.name.clone(),
            project_id,
            roles,
            groups: user.groups.clone(),
        };
        self.tokens.insert(token, info.clone());
        Ok(info)
    }

    /// Validate a token, refreshing its role view from the current
    /// identity store (so a role reassignment is visible without
    /// re-authentication — matching Keystone's validate-on-use model).
    ///
    /// # Errors
    ///
    /// [`TokenError::InvalidToken`] when the token is unknown or revoked.
    pub fn validate(&self, store: &IdentityStore, token: &str) -> Result<TokenInfo, TokenError> {
        let cached = self.tokens.get(token).ok_or(TokenError::InvalidToken)?;
        let issued = self.issued_at.get(token).copied().unwrap_or(0);
        if self.now.saturating_sub(issued) >= self.lifetime {
            return Err(TokenError::InvalidToken);
        }
        let roles = store
            .roles_of(&cached.user_name, cached.project_id)
            .map_err(|_| TokenError::InvalidToken)?;
        Ok(TokenInfo {
            roles,
            ..cached.clone()
        })
    }

    /// Revoke a token; returns whether it existed.
    pub fn revoke(&mut self, token: &str) -> bool {
        self.issued_at.remove(token);
        self.tokens.remove(token).is_some()
    }

    /// Number of live tokens.
    #[must_use]
    pub fn live_tokens(&self) -> usize {
        self.tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::my_project_fixture;

    #[test]
    fn issue_and_validate() {
        let (store, pid) = my_project_fixture();
        let mut svc = TokenService::new();
        let info = svc.issue(&store, "alice", "alice-pw", pid).unwrap();
        assert!(info.has_role("admin"));
        let validated = svc.validate(&store, &info.token).unwrap();
        assert_eq!(validated.user_name, "alice");
        assert_eq!(validated.project_id, pid);
        assert_eq!(validated.groups, vec!["proj_administrator"]);
    }

    #[test]
    fn bad_password_rejected() {
        let (store, pid) = my_project_fixture();
        let mut svc = TokenService::new();
        assert_eq!(
            svc.issue(&store, "alice", "nope", pid),
            Err(TokenError::InvalidCredentials)
        );
    }

    #[test]
    fn unknown_project_rejected() {
        let (store, _) = my_project_fixture();
        let mut svc = TokenService::new();
        assert_eq!(
            svc.issue(&store, "alice", "alice-pw", 999),
            Err(TokenError::UnknownProject(999))
        );
    }

    #[test]
    fn unknown_token_rejected() {
        let (store, _) = my_project_fixture();
        let svc = TokenService::new();
        assert_eq!(
            svc.validate(&store, "tok-zzz"),
            Err(TokenError::InvalidToken)
        );
    }

    #[test]
    fn revoked_token_rejected() {
        let (store, pid) = my_project_fixture();
        let mut svc = TokenService::new();
        let info = svc.issue(&store, "bob", "bob-pw", pid).unwrap();
        assert!(svc.revoke(&info.token));
        assert!(!svc.revoke(&info.token));
        assert_eq!(
            svc.validate(&store, &info.token),
            Err(TokenError::InvalidToken)
        );
    }

    #[test]
    fn validation_sees_role_reassignment() {
        let (mut store, pid) = my_project_fixture();
        let mut svc = TokenService::new();
        let info = svc.issue(&store, "carol", "carol-pw", pid).unwrap();
        assert_eq!(info.roles, vec!["user"]);
        store
            .set_group_role(pid, "business_analyst", "admin")
            .unwrap();
        let refreshed = svc.validate(&store, &info.token).unwrap();
        assert_eq!(refreshed.roles, vec!["admin"]);
    }

    #[test]
    fn tokens_are_unique() {
        let (store, pid) = my_project_fixture();
        let mut svc = TokenService::new();
        let a = svc.issue(&store, "alice", "alice-pw", pid).unwrap();
        let b = svc.issue(&store, "alice", "alice-pw", pid).unwrap();
        assert_ne!(a.token, b.token);
        assert_eq!(svc.live_tokens(), 2);
    }
}

#[cfg(test)]
mod expiry_tests {
    use super::*;
    use crate::identity::my_project_fixture;

    #[test]
    fn tokens_expire_after_lifetime() {
        let (store, pid) = my_project_fixture();
        let mut svc = TokenService::new().with_lifetime(10);
        let info = svc.issue(&store, "alice", "alice-pw", pid).unwrap();
        assert!(svc.validate(&store, &info.token).is_ok());
        svc.advance_time(9);
        assert!(svc.validate(&store, &info.token).is_ok());
        svc.advance_time(1);
        assert_eq!(
            svc.validate(&store, &info.token),
            Err(TokenError::InvalidToken)
        );
    }

    #[test]
    fn fresh_tokens_outlive_expired_ones() {
        let (store, pid) = my_project_fixture();
        let mut svc = TokenService::new().with_lifetime(5);
        let old = svc.issue(&store, "bob", "bob-pw", pid).unwrap();
        svc.advance_time(5);
        let fresh = svc.issue(&store, "bob", "bob-pw", pid).unwrap();
        assert!(svc.validate(&store, &old.token).is_err());
        assert!(svc.validate(&store, &fresh.token).is_ok());
    }

    #[test]
    fn default_lifetime_never_expires() {
        let (store, pid) = my_project_fixture();
        let mut svc = TokenService::new();
        let info = svc.issue(&store, "carol", "carol-pw", pid).unwrap();
        svc.advance_time(u64::MAX / 2);
        assert!(svc.validate(&store, &info.token).is_ok());
    }
}
