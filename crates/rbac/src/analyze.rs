//! Static analysis over `policy.json` rules — automated reasoning about
//! the access policy *before* any request is served, in the spirit of
//! CloudSec-style policy analysis.
//!
//! [`analyze_policy`] model-checks every rule over the finite universe of
//! atoms it mentions (roles, usergroups, user ids) plus a caller-supplied
//! role universe, and reports structured [`PolicyDiagnostic`]s:
//!
//! * **contradictions** — a rule that is not the explicit deny `!` yet
//!   can never grant (e.g. `role:admin and not role:admin`): the action
//!   is unreachable and the mistake is invisible at runtime until an
//!   authorized user is locked out;
//! * **shadowed rules** — a disjunct that can never fire (unsatisfiable)
//!   or is entirely covered by earlier disjuncts, and conjuncts implied
//!   by the rest of their conjunction (dead weight that hides intent);
//! * **vacuous rules** — a rule that grants *everyone* without being the
//!   explicit `@` (e.g. `role:a or not role:a`): almost always a widened
//!   policy written by accident;
//! * **unreachable roles** — a role in the universe that cannot perform
//!   a single action under the policy (deny-by-default assumed).
//!
//! The analysis is exact for rules with at most [`MAX_ATOMS`] distinct
//! atoms (exhaustive truth-table over the atoms); larger rules are
//! reported as [`DiagnosticKind::Unanalyzable`] rather than silently
//! skipped.

use crate::policy::{PolicyFile, Rule};
use crate::token::TokenInfo;
use std::collections::BTreeSet;
use std::fmt;

/// Exhaustive-enumeration cap: rules mentioning more distinct role/group
/// atoms than this are reported as unanalyzable instead of analyzed.
pub const MAX_ATOMS: usize = 14;

/// What a diagnostic is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// The rule can never grant although it is not the explicit `!`.
    Contradiction,
    /// A disjunct or conjunct that cannot affect the decision.
    ShadowedRule,
    /// The rule grants every authenticated principal although it is not
    /// the explicit `@`.
    VacuousGrant,
    /// A role in the universe with no reachable operation.
    UnreachableRole,
    /// The rule exceeds [`MAX_ATOMS`] and was not analyzed.
    Unanalyzable,
}

impl DiagnosticKind {
    /// Stable lowercase name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DiagnosticKind::Contradiction => "contradiction",
            DiagnosticKind::ShadowedRule => "shadowed-rule",
            DiagnosticKind::VacuousGrant => "vacuous-grant",
            DiagnosticKind::UnreachableRole => "unreachable-role",
            DiagnosticKind::Unanalyzable => "unanalyzable",
        }
    }
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding of the static pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyDiagnostic {
    /// What kind of defect this is.
    pub kind: DiagnosticKind,
    /// The action whose rule is at fault (`None` for role-level
    /// findings, which span the whole file).
    pub action: Option<String>,
    /// The rule or sub-rule text the finding points at.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for PolicyDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.action {
            Some(action) => write!(f, "{}: `{action}`: {}", self.kind, self.message),
            None => write!(f, "{}: {}", self.kind, self.message),
        }
    }
}

/// Result of [`analyze_policy`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyAnalysis {
    /// All findings, in policy order (role-level findings last).
    pub diagnostics: Vec<PolicyDiagnostic>,
}

impl PolicyAnalysis {
    /// True when the policy is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings of one kind.
    #[must_use]
    pub fn of_kind(&self, kind: DiagnosticKind) -> Vec<&PolicyDiagnostic> {
        self.diagnostics.iter().filter(|d| d.kind == kind).collect()
    }

    /// Render the findings one per line (`clean` when empty).
    #[must_use]
    pub fn render(&self) -> String {
        if self.diagnostics.is_empty() {
            return "policy analysis: clean\n".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for PolicyAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The atoms a rule (or rule set) mentions.
#[derive(Debug, Clone, Default)]
struct Atoms {
    roles: Vec<String>,
    groups: Vec<String>,
    user_ids: Vec<u64>,
}

impl Atoms {
    fn collect(&mut self, rule: &Rule) {
        match rule {
            Rule::Always | Rule::Never => {}
            Rule::Role(r) => {
                if !self.roles.contains(r) {
                    self.roles.push(r.clone());
                }
            }
            Rule::Group(g) => {
                if !self.groups.contains(g) {
                    self.groups.push(g.clone());
                }
            }
            Rule::UserId(id) => {
                if !self.user_ids.contains(id) {
                    self.user_ids.push(*id);
                }
            }
            Rule::Not(inner) => self.collect(inner),
            Rule::And(a, b) | Rule::Or(a, b) => {
                self.collect(a);
                self.collect(b);
            }
        }
    }

    fn len(&self) -> usize {
        self.roles.len() + self.groups.len()
    }

    /// A user id no rule mentions (the "anonymous" principal).
    fn fresh_user_id(&self) -> u64 {
        (1..).find(|id| !self.user_ids.contains(id)).expect("ℕ")
    }

    /// Every token shape distinguishable by these atoms: all subsets of
    /// the mentioned roles × subsets of the mentioned groups × each
    /// mentioned user id plus one fresh id.
    fn tokens(&self) -> Vec<TokenInfo> {
        let mut ids = self.user_ids.clone();
        ids.push(self.fresh_user_id());
        let mut out = Vec::new();
        for role_bits in 0..(1u32 << self.roles.len()) {
            for group_bits in 0..(1u32 << self.groups.len()) {
                for &user_id in &ids {
                    out.push(token(
                        pick(&self.roles, role_bits),
                        pick(&self.groups, group_bits),
                        user_id,
                    ));
                }
            }
        }
        out
    }

    /// As [`Atoms::tokens`], but with the role set pinned to exactly
    /// `role` (groups and user id still free).
    fn tokens_with_role(&self, role: &str) -> Vec<TokenInfo> {
        let mut ids = self.user_ids.clone();
        ids.push(self.fresh_user_id());
        let mut out = Vec::new();
        for group_bits in 0..(1u32 << self.groups.len()) {
            for &user_id in &ids {
                out.push(token(
                    vec![role.to_string()],
                    pick(&self.groups, group_bits),
                    user_id,
                ));
            }
        }
        out
    }
}

fn pick(atoms: &[String], bits: u32) -> Vec<String> {
    atoms
        .iter()
        .enumerate()
        .filter(|(i, _)| bits & (1 << i) != 0)
        .map(|(_, a)| a.clone())
        .collect()
}

fn token(roles: Vec<String>, groups: Vec<String>, user_id: u64) -> TokenInfo {
    TokenInfo {
        token: String::new(),
        user_id,
        user_name: String::new(),
        project_id: 0,
        roles,
        groups,
    }
}

/// Flatten a top-level `or` chain into its disjuncts, left to right.
fn disjuncts(rule: &Rule) -> Vec<&Rule> {
    match rule {
        Rule::Or(a, b) => {
            let mut out = disjuncts(a);
            out.extend(disjuncts(b));
            out
        }
        other => vec![other],
    }
}

/// Flatten a top-level `and` chain into its conjuncts, left to right.
fn conjuncts(rule: &Rule) -> Vec<&Rule> {
    match rule {
        Rule::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other],
    }
}

/// Rebuild an `and` chain from conjuncts (`@` for the empty chain).
fn and_all(parts: &[&Rule]) -> Rule {
    parts.iter().fold(Rule::Always, |acc, part| match acc {
        Rule::Always => (*part).clone(),
        acc => Rule::And(Box::new(acc), Box::new((*part).clone())),
    })
}

/// Statically analyze a policy over a role universe.
///
/// `role_universe` lists the roles that exist in the deployment (the
/// identity store's role vocabulary); roles mentioned by rules are added
/// automatically. Deny-by-default is assumed: an action is reachable for
/// a role exactly when some rule grants one of its token shapes.
#[must_use]
pub fn analyze_policy(policy: &PolicyFile, role_universe: &[&str]) -> PolicyAnalysis {
    let mut analysis = PolicyAnalysis::default();

    for action in policy.actions() {
        let rule = policy.rule(action).expect("listed action has a rule");
        let mut atoms = Atoms::default();
        atoms.collect(rule);
        if atoms.len() > MAX_ATOMS {
            analysis.diagnostics.push(PolicyDiagnostic {
                kind: DiagnosticKind::Unanalyzable,
                action: Some(action.to_string()),
                subject: rule.to_string(),
                message: format!(
                    "rule mentions {} atoms (limit {MAX_ATOMS}); not analyzed",
                    atoms.len()
                ),
            });
            continue;
        }
        let tokens = atoms.tokens();
        let granting: Vec<&TokenInfo> = tokens.iter().filter(|t| rule.check(t)).collect();

        // Contradiction: never grants, but is not the explicit deny.
        if granting.is_empty() && *rule != Rule::Never {
            analysis.diagnostics.push(PolicyDiagnostic {
                kind: DiagnosticKind::Contradiction,
                action: Some(action.to_string()),
                subject: rule.to_string(),
                message: format!(
                    "rule `{rule}` can never grant — contradictory grant/deny \
                     (write `!` if the action is meant to be disabled)"
                ),
            });
            continue; // Shadowing inside a dead rule is noise.
        }

        // Vacuous grant: always grants, but is not the explicit allow.
        if granting.len() == tokens.len() && *rule != Rule::Always {
            analysis.diagnostics.push(PolicyDiagnostic {
                kind: DiagnosticKind::VacuousGrant,
                action: Some(action.to_string()),
                subject: rule.to_string(),
                message: format!(
                    "rule `{rule}` grants every authenticated principal — \
                     equivalent to `@`"
                ),
            });
        }

        // Shadowed disjuncts: dead or fully covered by earlier ones.
        let parts = disjuncts(rule);
        if parts.len() > 1 {
            for (i, part) in parts.iter().enumerate() {
                let alone: Vec<&TokenInfo> = tokens.iter().filter(|t| part.check(t)).collect();
                if alone.is_empty() {
                    analysis.diagnostics.push(PolicyDiagnostic {
                        kind: DiagnosticKind::ShadowedRule,
                        action: Some(action.to_string()),
                        subject: part.to_string(),
                        message: format!("disjunct `{part}` can never match"),
                    });
                    continue;
                }
                if i > 0 {
                    let earlier = &parts[..i];
                    let covered = alone.iter().all(|t| earlier.iter().any(|e| e.check(t)));
                    if covered {
                        analysis.diagnostics.push(PolicyDiagnostic {
                            kind: DiagnosticKind::ShadowedRule,
                            action: Some(action.to_string()),
                            subject: part.to_string(),
                            message: format!(
                                "disjunct `{part}` is shadowed by the disjuncts before it"
                            ),
                        });
                    }
                }
            }
        }

        // Redundant conjuncts: implied by the rest of their conjunction.
        let con = conjuncts(rule);
        if con.len() > 1 {
            for (i, part) in con.iter().enumerate() {
                let rest: Vec<&Rule> = con
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, p)| *p)
                    .collect();
                let rest_rule = and_all(&rest);
                let implied = tokens.iter().all(|t| !rest_rule.check(t) || part.check(t));
                if implied {
                    analysis.diagnostics.push(PolicyDiagnostic {
                        kind: DiagnosticKind::ShadowedRule,
                        action: Some(action.to_string()),
                        subject: part.to_string(),
                        message: format!("conjunct `{part}` is implied by the rest of the rule"),
                    });
                }
            }
        }
    }

    // Roles with no reachable operation (deny-by-default).
    let mut roles: BTreeSet<String> = role_universe.iter().map(|r| (*r).to_string()).collect();
    for action in policy.actions() {
        let mut atoms = Atoms::default();
        atoms.collect(policy.rule(action).expect("listed action has a rule"));
        roles.extend(atoms.roles);
    }
    for role in roles {
        let reachable = policy.actions().any(|action| {
            let rule = policy.rule(action).expect("listed action has a rule");
            let mut atoms = Atoms::default();
            atoms.collect(rule);
            if atoms.len() > MAX_ATOMS {
                // Unanalyzable rules are conservatively assumed to grant
                // (they already carry their own diagnostic; piling
                // unreachable-role noise on top helps nobody).
                return true;
            }
            atoms.tokens_with_role(&role).iter().any(|t| rule.check(t))
        });
        if !reachable {
            analysis.diagnostics.push(PolicyDiagnostic {
                kind: DiagnosticKind::UnreachableRole,
                action: None,
                subject: role.clone(),
                message: format!("role `{role}` cannot perform any action under this policy"),
            });
        }
    }

    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::parse_rule;
    use crate::requirements::{cinder_table1, cinder_table_extended};

    const UNIVERSE: [&str; 3] = ["admin", "member", "user"];

    fn policy(entries: &[(&str, &str)]) -> PolicyFile {
        PolicyFile::from_entries(entries.iter().copied()).unwrap()
    }

    #[test]
    fn table_policies_are_clean() {
        for table in [cinder_table1(), cinder_table_extended()] {
            let analysis = analyze_policy(&table.to_policy(), &UNIVERSE);
            assert!(analysis.is_clean(), "{analysis}");
        }
    }

    #[test]
    fn contradictory_rule_is_flagged_at_rule_level() {
        let pf = policy(&[
            ("volume:get", "role:admin or role:member or role:user"),
            ("volume:delete", "role:admin and not role:admin"),
        ]);
        let analysis = analyze_policy(&pf, &UNIVERSE);
        let findings = analysis.of_kind(DiagnosticKind::Contradiction);
        assert_eq!(findings.len(), 1, "{analysis}");
        assert_eq!(findings[0].action.as_deref(), Some("volume:delete"));
        assert!(findings[0].subject.contains("role:admin"));
        assert!(findings[0].to_string().contains("volume:delete"));
    }

    #[test]
    fn explicit_deny_is_not_a_contradiction() {
        let pf = policy(&[("volume:get", "@"), ("volume:wipe", "!")]);
        let analysis = analyze_policy(&pf, &[]);
        assert!(analysis.of_kind(DiagnosticKind::Contradiction).is_empty());
    }

    #[test]
    fn conjoined_deny_is_a_contradiction() {
        let pf = policy(&[("volume:get", "@"), ("volume:put", "role:admin and !")]);
        let analysis = analyze_policy(&pf, &[]);
        assert_eq!(analysis.of_kind(DiagnosticKind::Contradiction).len(), 1);
    }

    #[test]
    fn shadowed_disjuncts_are_flagged() {
        // Duplicate disjunct.
        let pf = policy(&[("a:get", "role:admin or role:admin")]);
        let analysis = analyze_policy(&pf, &UNIVERSE);
        assert_eq!(analysis.of_kind(DiagnosticKind::ShadowedRule).len(), 1);

        // `@` swallows everything after it (also a vacuous grant).
        let pf = policy(&[("a:get", "@ or role:member")]);
        let analysis = analyze_policy(&pf, &UNIVERSE);
        assert_eq!(analysis.of_kind(DiagnosticKind::ShadowedRule).len(), 1);
        assert_eq!(analysis.of_kind(DiagnosticKind::VacuousGrant).len(), 1);

        // A dead disjunct never matches.
        let pf = policy(&[("a:get", "role:admin or (role:member and !)")]);
        let analysis = analyze_policy(&pf, &UNIVERSE);
        let shadowed = analysis.of_kind(DiagnosticKind::ShadowedRule);
        assert_eq!(shadowed.len(), 1, "{analysis}");
        assert!(shadowed[0].message.contains("never match"));

        // A broader earlier disjunct covers a narrower later one.
        let pf = policy(&[("a:get", "role:admin or (role:admin and group:ops)")]);
        let analysis = analyze_policy(&pf, &UNIVERSE);
        assert_eq!(analysis.of_kind(DiagnosticKind::ShadowedRule).len(), 1);
    }

    #[test]
    fn redundant_conjunct_is_flagged() {
        let pf = policy(&[("a:get", "role:admin and role:admin")]);
        let analysis = analyze_policy(&pf, &UNIVERSE);
        // Both copies imply each other.
        assert_eq!(analysis.of_kind(DiagnosticKind::ShadowedRule).len(), 2);
    }

    #[test]
    fn vacuous_grant_is_flagged() {
        let pf = policy(&[("a:get", "role:admin or not role:admin")]);
        let analysis = analyze_policy(&pf, &UNIVERSE);
        assert_eq!(analysis.of_kind(DiagnosticKind::VacuousGrant).len(), 1);
    }

    #[test]
    fn role_with_no_reachable_operation_is_flagged() {
        let pf = policy(&[
            ("volume:get", "role:admin or role:member"),
            ("volume:delete", "role:admin"),
        ]);
        let analysis = analyze_policy(&pf, &["admin", "member", "auditor"]);
        let findings = analysis.of_kind(DiagnosticKind::UnreachableRole);
        assert_eq!(findings.len(), 1, "{analysis}");
        assert_eq!(findings[0].subject, "auditor");
    }

    #[test]
    fn empty_policy_makes_every_role_unreachable() {
        let analysis = analyze_policy(&PolicyFile::new(), &["admin"]);
        assert_eq!(analysis.of_kind(DiagnosticKind::UnreachableRole).len(), 1);
    }

    #[test]
    fn negated_role_reachability_is_exact() {
        // `not role:admin` admits member but locks admin out; with a
        // second admin-only action both roles are reachable.
        let pf = policy(&[("a:get", "not role:admin")]);
        let analysis = analyze_policy(&pf, &["admin", "member"]);
        let unreachable = analysis.of_kind(DiagnosticKind::UnreachableRole);
        assert_eq!(unreachable.len(), 1);
        assert_eq!(unreachable[0].subject, "admin");

        let pf = policy(&[("a:get", "not role:admin"), ("a:put", "role:admin")]);
        let analysis = analyze_policy(&pf, &["admin", "member"]);
        assert!(analysis.of_kind(DiagnosticKind::UnreachableRole).is_empty());
    }

    #[test]
    fn group_and_user_id_atoms_participate() {
        // Satisfiable only through the group atom — not a contradiction.
        let pf = policy(&[("a:get", "role:admin and group:ops")]);
        let analysis = analyze_policy(&pf, &["admin"]);
        assert!(analysis.of_kind(DiagnosticKind::Contradiction).is_empty());

        // user_id pinning: `user_id:7 and not user_id:7` is dead.
        let pf = policy(&[("a:get", "@"), ("a:put", "user_id:7 and not user_id:7")]);
        let analysis = analyze_policy(&pf, &[]);
        assert_eq!(analysis.of_kind(DiagnosticKind::Contradiction).len(), 1);
    }

    #[test]
    fn oversized_rule_is_reported_not_skipped() {
        let atoms: Vec<String> = (0..=MAX_ATOMS).map(|i| format!("role:r{i}")).collect();
        let rule = atoms.join(" or ");
        let mut pf = PolicyFile::new();
        pf.set("a:get", parse_rule(&rule).unwrap());
        let analysis = analyze_policy(&pf, &[]);
        assert_eq!(analysis.of_kind(DiagnosticKind::Unanalyzable).len(), 1);
    }

    #[test]
    fn render_lists_findings_or_clean() {
        let clean = analyze_policy(&cinder_table1().to_policy(), &UNIVERSE);
        assert!(clean.render().contains("clean"));
        let dirty = analyze_policy(&policy(&[("x:get", "role:a and not role:a")]), &["a"]);
        let text = dirty.render();
        assert!(text.contains("contradiction"), "{text}");
        assert!(text.contains("x:get"), "{text}");
    }
}
