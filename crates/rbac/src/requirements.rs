//! The tabular security-requirements specification (the paper's Table I).
//!
//! "In the current industrial practice, this information is usually given
//! in a tabular format. We specify this information as the guards in the
//! OCL format, which makes it amenable to an automated translation into
//! the method contracts" (Section IV-C). This module holds the table,
//! renders it in the paper's layout, compiles it into a
//! [`PolicyFile`] and synthesises the OCL
//! authorization guards that the contract generator weaves into
//! pre-conditions.

use crate::policy::{PolicyFile, Rule};
use cm_model::HttpMethod;
use cm_ocl::{BinOp, Expr};
use std::fmt::Write as _;

/// One requirement row-group of the table: a (resource, method) pair with
/// its requirement id and permitted role/usergroup pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityRequirement {
    /// Resource-definition name, e.g. `Volume`.
    pub resource: String,
    /// Requirement id, e.g. `1.4` (the traceability key).
    pub id: String,
    /// HTTP method the requirement governs.
    pub method: HttpMethod,
    /// Permitted (role, usergroup) pairs.
    pub permitted: Vec<(String, String)>,
}

impl SecurityRequirement {
    /// Roles permitted by this requirement, in table order.
    #[must_use]
    pub fn roles(&self) -> Vec<&str> {
        self.permitted.iter().map(|(r, _)| r.as_str()).collect()
    }

    /// Usergroups permitted by this requirement, in table order.
    #[must_use]
    pub fn usergroups(&self) -> Vec<&str> {
        self.permitted.iter().map(|(_, g)| g.as_str()).collect()
    }
}

/// The full requirements table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SecurityRequirementsTable {
    /// Requirement row-groups, in table order.
    pub requirements: Vec<SecurityRequirement>,
}

impl SecurityRequirementsTable {
    /// Create an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a requirement (builder style).
    pub fn add(&mut self, req: SecurityRequirement) -> &mut Self {
        self.requirements.push(req);
        self
    }

    /// The requirement for a (resource, method) pair, case-insensitive on
    /// the resource name (the paper's table says `Volume`, the model says
    /// `volume`).
    #[must_use]
    pub fn requirement_for(
        &self,
        resource: &str,
        method: HttpMethod,
    ) -> Option<&SecurityRequirement> {
        self.requirements
            .iter()
            .find(|r| r.resource.eq_ignore_ascii_case(resource) && r.method == method)
    }

    /// The requirement with the given id.
    #[must_use]
    pub fn by_id(&self, id: &str) -> Option<&SecurityRequirement> {
        self.requirements.iter().find(|r| r.id == id)
    }

    /// Compile into a policy file with `resource:method` action names
    /// (lowercase), e.g. `volume:delete -> role:admin`.
    #[must_use]
    pub fn to_policy(&self) -> PolicyFile {
        let mut pf = PolicyFile::new();
        for req in &self.requirements {
            let action = format!(
                "{}:{}",
                req.resource.to_ascii_lowercase(),
                req.method.as_str().to_ascii_lowercase()
            );
            pf.set(action, Rule::any_role(req.roles()));
        }
        pf
    }

    /// Synthesise the OCL authorization guard for a (resource, method)
    /// pair: a disjunction `user.groups = 'r1' or user.groups = 'r2' …`
    /// over the permitted *roles* — the paper's guard vocabulary
    /// (Figure 3 uses the role names `admin`, `member` as group labels).
    ///
    /// Returns `None` when the table has no entry for the pair, meaning
    /// the method must be rejected outright.
    #[must_use]
    pub fn guard(&self, resource: &str, method: HttpMethod) -> Option<Expr> {
        let req = self.requirement_for(resource, method)?;
        let disjuncts: Vec<Expr> = req
            .roles()
            .iter()
            .map(|role| Expr::Binary {
                op: BinOp::Eq,
                lhs: Box::new(Expr::nav_path("user", &["groups"])),
                rhs: Box::new(Expr::Str((*role).to_string())),
            })
            .collect();
        Some(Expr::any_of(disjuncts))
    }

    /// Render the table in the paper's Table I layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| {:<8} | {:<6} | {:<7} | {:<6} | {:<18} |",
            "Resource", "SecReq", "Request", "Role", "UserGroup"
        );
        let _ = writeln!(
            out,
            "|{}|{}|{}|{}|{}|",
            "-".repeat(10),
            "-".repeat(8),
            "-".repeat(9),
            "-".repeat(8),
            "-".repeat(20)
        );
        let mut last_resource = String::new();
        for req in &self.requirements {
            let mut first_row = true;
            for (role, group) in &req.permitted {
                let resource_cell = if req.resource != last_resource && first_row {
                    req.resource.clone()
                } else {
                    String::new()
                };
                let (id_cell, method_cell) = if first_row {
                    (req.id.clone(), req.method.to_string())
                } else {
                    (String::new(), String::new())
                };
                let _ = writeln!(
                    out,
                    "| {:<8} | {:<6} | {:<7} | {:<6} | {:<18} |",
                    resource_cell, id_cell, method_cell, role, group
                );
                first_row = false;
                last_resource = req.resource.clone();
            }
        }
        out
    }
}

/// The paper's Table I: security requirements for the Cinder API excerpt.
#[must_use]
pub fn cinder_table1() -> SecurityRequirementsTable {
    let mut t = SecurityRequirementsTable::new();
    t.add(SecurityRequirement {
        resource: "Volume".into(),
        id: "1.1".into(),
        method: HttpMethod::Get,
        permitted: vec![
            ("admin".into(), "proj_administrator".into()),
            ("member".into(), "service_architect".into()),
            ("user".into(), "business_analyst".into()),
        ],
    });
    t.add(SecurityRequirement {
        resource: "Volume".into(),
        id: "1.2".into(),
        method: HttpMethod::Put,
        permitted: vec![
            ("admin".into(), "proj_administrator".into()),
            ("member".into(), "service_architect".into()),
        ],
    });
    t.add(SecurityRequirement {
        resource: "Volume".into(),
        id: "1.3".into(),
        method: HttpMethod::Post,
        permitted: vec![
            ("admin".into(), "proj_administrator".into()),
            ("member".into(), "service_architect".into()),
        ],
    });
    t.add(SecurityRequirement {
        resource: "Volume".into(),
        id: "1.4".into(),
        method: HttpMethod::Delete,
        permitted: vec![("admin".into(), "proj_administrator".into())],
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_ocl::to_string as ocl_to_string;

    #[test]
    fn table1_has_four_requirements() {
        let t = cinder_table1();
        assert_eq!(t.requirements.len(), 4);
        assert_eq!(t.by_id("1.4").unwrap().method, HttpMethod::Delete);
    }

    #[test]
    fn requirement_lookup_is_case_insensitive() {
        let t = cinder_table1();
        assert!(t.requirement_for("volume", HttpMethod::Get).is_some());
        assert!(t.requirement_for("Volume", HttpMethod::Get).is_some());
        assert!(t.requirement_for("server", HttpMethod::Get).is_none());
    }

    #[test]
    fn delete_permits_only_admin() {
        let t = cinder_table1();
        let req = t.requirement_for("volume", HttpMethod::Delete).unwrap();
        assert_eq!(req.roles(), vec!["admin"]);
        assert_eq!(req.usergroups(), vec!["proj_administrator"]);
    }

    #[test]
    fn get_permits_all_three_roles() {
        let t = cinder_table1();
        let req = t.requirement_for("volume", HttpMethod::Get).unwrap();
        assert_eq!(req.roles(), vec!["admin", "member", "user"]);
    }

    #[test]
    fn to_policy_builds_role_disjunctions() {
        use crate::token::TokenInfo;
        let pf = cinder_table1().to_policy();
        let admin = TokenInfo {
            token: "t".into(),
            user_id: 1,
            user_name: "a".into(),
            project_id: 1,
            roles: vec!["admin".into()],
            groups: vec![],
        };
        let user = TokenInfo {
            roles: vec!["user".into()],
            ..admin.clone()
        };
        use crate::policy::DefaultDecision;
        assert!(pf.check("volume:delete", &admin, DefaultDecision::Deny));
        assert!(!pf.check("volume:delete", &user, DefaultDecision::Deny));
        assert!(pf.check("volume:get", &user, DefaultDecision::Deny));
        assert!(pf.check("volume:post", &admin, DefaultDecision::Deny));
    }

    #[test]
    fn guard_synthesises_role_disjunction() {
        let t = cinder_table1();
        let g = t.guard("volume", HttpMethod::Put).unwrap();
        assert_eq!(
            ocl_to_string(&g),
            "user.groups = 'admin' or user.groups = 'member'"
        );
        let g_del = t.guard("volume", HttpMethod::Delete).unwrap();
        assert_eq!(ocl_to_string(&g_del), "user.groups = 'admin'");
        assert!(t.guard("server", HttpMethod::Get).is_none());
    }

    #[test]
    fn render_matches_paper_layout() {
        let text = cinder_table1().render();
        assert!(text.contains("Resource"), "{text}");
        assert!(text.contains("1.4"));
        assert!(text.contains("DELETE"));
        assert!(text.contains("proj_administrator"));
        assert!(text.contains("business_analyst"));
        // Resource name appears once (grouped rows).
        assert_eq!(text.matches("Volume").count(), 1, "{text}");
    }
}

/// The extended requirements table: Table I plus the snapshot resource
/// (SecReq 2.1–2.3), matching the extended Cinder models.
#[must_use]
pub fn cinder_table_extended() -> SecurityRequirementsTable {
    let mut t = cinder_table1();
    t.add(SecurityRequirement {
        resource: "Snapshot".into(),
        id: "2.1".into(),
        method: HttpMethod::Get,
        permitted: vec![
            ("admin".into(), "proj_administrator".into()),
            ("member".into(), "service_architect".into()),
            ("user".into(), "business_analyst".into()),
        ],
    });
    t.add(SecurityRequirement {
        resource: "Snapshot".into(),
        id: "2.2".into(),
        method: HttpMethod::Post,
        permitted: vec![
            ("admin".into(), "proj_administrator".into()),
            ("member".into(), "service_architect".into()),
        ],
    });
    t.add(SecurityRequirement {
        resource: "Snapshot".into(),
        id: "2.3".into(),
        method: HttpMethod::Delete,
        permitted: vec![("admin".into(), "proj_administrator".into())],
    });
    t
}

#[cfg(test)]
mod extended_table_tests {
    use super::*;

    #[test]
    fn extended_table_adds_snapshot_rows() {
        let t = cinder_table_extended();
        assert_eq!(t.requirements.len(), 7);
        assert_eq!(
            t.requirement_for("snapshot", HttpMethod::Delete)
                .unwrap()
                .roles(),
            vec!["admin"]
        );
        let policy = t.to_policy();
        assert!(policy.rule("snapshot:post").is_some());
        assert!(policy.rule("volume:delete").is_some());
    }

    #[test]
    fn extended_render_groups_by_resource() {
        let text = cinder_table_extended().render();
        assert_eq!(text.matches("Volume").count(), 1);
        assert_eq!(text.matches("Snapshot").count(), 1);
        assert!(text.contains("2.3"));
    }
}
