//! # cm-rbac — role-based access control for the cloud monitor
//!
//! The authorization substrate of the DSN 2018 reproduction, covering the
//! Keystone slice the paper relies on:
//!
//! * [`IdentityStore`] — users, usergroups, roles and projects
//!   ([`my_project_fixture`] recreates the paper's `myProject` with its
//!   three usergroups);
//! * [`TokenService`] — Keystone-style scoped tokens
//!   (authenticate → issue → validate on use);
//! * [`PolicyFile`]/[`Rule`] — the `policy.json` rule language subset
//!   (`role:`, `group:`, `user_id:`, `@`, `!`, `and`/`or`/`not`);
//! * [`SecurityRequirementsTable`] — the paper's Table I, renderable in
//!   the paper's layout, compilable to a policy file, and the source of
//!   the OCL authorization guards woven into generated contracts.
//!
//! ## Example
//!
//! ```
//! use cm_rbac::{cinder_table1, my_project_fixture, DefaultDecision, TokenService};
//!
//! let (store, project_id) = my_project_fixture();
//! let mut keystone = TokenService::new();
//! let token = keystone.issue(&store, "carol", "carol-pw", project_id)?;
//!
//! // carol is a `user`: she may GET volumes but not DELETE them (Table I).
//! let policy = cinder_table1().to_policy();
//! assert!(policy.check("volume:get", &token, DefaultDecision::Deny));
//! assert!(!policy.check("volume:delete", &token, DefaultDecision::Deny));
//! # Ok::<(), cm_rbac::TokenError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod identity;
pub mod policy;
pub mod requirements;
pub mod token;

pub use analyze::{analyze_policy, DiagnosticKind, PolicyAnalysis, PolicyDiagnostic};
pub use identity::{my_project_fixture, IdentityError, IdentityStore, Project, User, UserGroup};
pub use policy::{parse_rule, DefaultDecision, PolicyFile, Rule, RuleParseError};
pub use requirements::{
    cinder_table1, cinder_table_extended, SecurityRequirement, SecurityRequirementsTable,
};
pub use token::{TokenError, TokenInfo, TokenService};
