//! Transport-level battery for the persistent-connection HTTP stack:
//! keep-alive reuse, connection caps, timeouts, malformed-framing
//! rejection, and pooled-client failover across a backend restart.
//!
//! Everything here runs over live loopback TCP — these are the tests
//! that pin down the *connection lifecycle* semantics the unit tests in
//! `src/` can't see from inside one process half.
//!
//! Every scenario runs against **both** engines ([`Transport::Reactor`]
//! and [`Transport::WorkerPool`]) via the `transport_battery!` macro at
//! the bottom: the reactor must be observably indistinguishable from
//! the blocking baseline across the whole lifecycle, and a `poll(2)`
//! smoke group keeps the non-epoll fallback honest on Linux too.

use cm_httpkit::{
    send, HttpServer, PooledClient, ReactorBackend, RemoteService, ServerConfig, Transport,
};
use cm_model::HttpMethod;
use cm_rest::{Json, RestRequest, RestResponse, SharedRestService, StatusCode};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

type Handler = dyn Fn(RestRequest) -> RestResponse + Send + Sync;

/// Echo the path back so tests can tie responses to requests.
fn echo_handler() -> Arc<Handler> {
    Arc::new(|req: RestRequest| {
        RestResponse::ok(Json::object(vec![("path", Json::Str(req.path.clone()))]))
    })
}

fn path_of(resp: &RestResponse) -> String {
    resp.body
        .as_ref()
        .and_then(|b| b.get("path"))
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

/// Default config pinned to one transport.
fn cfg(transport: Transport) -> ServerConfig {
    ServerConfig {
        transport,
        ..ServerConfig::default()
    }
}

/// Bind a server on `addr`, retrying briefly — used to rebind the same
/// port after a shutdown while old sockets may linger in TIME_WAIT.
fn bind_retrying(addr: SocketAddr, config: ServerConfig) -> HttpServer {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match HttpServer::bind_with(addr, echo_handler(), config.clone()) {
            Ok(server) => return server,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("could not rebind {addr}: {e}"),
        }
    }
}

/// One pooled client, many requests: the whole burst must ride on a
/// single accepted connection, reused for every request after the first.
fn keep_alive_reuses_one_connection(config: ServerConfig) {
    let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config).unwrap();
    let addr = server.local_addr();
    let client = PooledClient::default();
    for i in 0..20 {
        let resp = client
            .request(addr, &RestRequest::new(HttpMethod::Get, format!("/r/{i}")))
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(path_of(&resp), format!("/r/{i}"));
    }
    assert_eq!(server.connections_accepted(), 1, "one TCP connect total");
    assert_eq!(client.connections_opened(), 1);
    assert_eq!(client.connections_reused(), 19);
    server.shutdown();
}

/// A connection idle past `idle_timeout` is closed by the server; the
/// pooled client notices the stale socket at checkout and transparently
/// opens a fresh one.
fn idle_timeout_closes_and_client_recovers(config: ServerConfig) {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(100),
        ..config
    };
    let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config).unwrap();
    let addr = server.local_addr();
    let client = PooledClient::default();

    let resp = client
        .request(addr, &RestRequest::new(HttpMethod::Get, "/warm"))
        .unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(client.idle_count(addr), 1, "connection parked for reuse");

    // Sit out the idle window; the server must close its end.
    std::thread::sleep(Duration::from_millis(500));

    let resp = client
        .request(addr, &RestRequest::new(HttpMethod::Get, "/after-idle"))
        .unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(path_of(&resp), "/after-idle");
    assert_eq!(
        server.connections_accepted(),
        2,
        "idle-closed connection was replaced, not resurrected"
    );
    server.shutdown();
}

/// The server closes a connection after `max_requests_per_conn`
/// requests; a 5-request burst against a cap of 2 costs exactly 3
/// connections and loses no response.
fn max_requests_per_conn_caps_reuse(config: ServerConfig) {
    let config = ServerConfig {
        max_requests_per_conn: 2,
        ..config
    };
    let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config).unwrap();
    let addr = server.local_addr();
    let client = PooledClient::default();
    for i in 0..5 {
        let resp = client
            .request(addr, &RestRequest::new(HttpMethod::Get, format!("/n/{i}")))
            .unwrap();
        assert_eq!(path_of(&resp), format!("/n/{i}"));
    }
    assert_eq!(
        server.connections_accepted(),
        3,
        "ceil(5 / 2) connections for 5 requests at cap 2"
    );
    server.shutdown();
}

/// A request declaring an absurd `Content-Length` is answered with 400
/// and the connection is closed — the body is never buffered.
fn oversized_content_length_is_rejected_with_400(config: ServerConfig) {
    let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"POST /v3/1/volumes HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap(); // server closes after answering
    assert!(
        raw.starts_with("HTTP/1.1 400"),
        "expected a 400 reject, got: {raw:?}"
    );
    assert!(raw.to_ascii_lowercase().contains("connection: close"));
    server.shutdown();
}

/// A client that starts a request and then stalls mid-parse is cut off
/// by the slow-client read timeout rather than pinning a worker (or a
/// reactor shard's attention) forever.
fn slow_client_is_disconnected_by_read_timeout(config: ServerConfig) {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(200),
        idle_timeout: Duration::from_secs(30),
        ..config
    };
    let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Half a request line, then silence.
    stream.write_all(b"GET /stalled HT").unwrap();
    let start = Instant::now();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap(); // must return once the server gives up
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "server should cut the stalled connection promptly"
    );
    let raw = String::from_utf8_lossy(&raw);
    assert!(
        raw.is_empty() || raw.starts_with("HTTP/1.1 400"),
        "stalled parse either closes silently or answers 400, got: {raw:?}"
    );
    server.shutdown();
}

/// Kill the backend and bring a new one up on the same port: the pooled
/// client's parked connection is dead, and the next request must
/// transparently reconnect instead of failing.
fn pooled_client_reconnects_after_backend_restart(config: ServerConfig) {
    let first = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config.clone()).unwrap();
    let addr = first.local_addr();
    let client = PooledClient::default();
    let resp = client
        .request(addr, &RestRequest::new(HttpMethod::Get, "/before"))
        .unwrap();
    assert_eq!(path_of(&resp), "/before");
    first.shutdown();

    let second = bind_retrying(addr, config);
    let resp = client
        .request(addr, &RestRequest::new(HttpMethod::Get, "/after"))
        .unwrap();
    assert_eq!(path_of(&resp), "/after");
    assert_eq!(
        client.connections_opened(),
        2,
        "exactly one reconnect for the restart"
    );
    second.shutdown();
}

/// The failure contract from DESIGN §4f: a *stale* pooled connection
/// surfaces as a silent retry-once inside `RemoteService::call`, never
/// as a 502 to the monitor. Only a backend that is actually down maps
/// to BAD_GATEWAY.
fn stale_pooled_connection_is_retried_not_bad_gateway(config: ServerConfig) {
    let first = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config.clone()).unwrap();
    let addr = first.local_addr();
    let service = RemoteService::new(addr);
    assert_eq!(
        service
            .call(&RestRequest::new(HttpMethod::Get, "/seed"))
            .status,
        StatusCode::OK
    );
    first.shutdown();

    // Backend restarted: the parked connection is stale but the service
    // must come back with the real answer, not BAD_GATEWAY.
    let second = bind_retrying(addr, config);
    let resp = service.call(&RestRequest::new(HttpMethod::Get, "/again"));
    assert_eq!(
        resp.status,
        StatusCode::OK,
        "stale conn must retry: {resp:?}"
    );
    assert_eq!(path_of(&resp), "/again");
    second.shutdown();

    // Backend gone for real: now — and only now — 502.
    let resp = service.call(&RestRequest::new(HttpMethod::Get, "/down"));
    assert_eq!(resp.status, StatusCode::BAD_GATEWAY);
}

/// `call_batch` issues all requests of a probe cycle back-to-back over
/// one pooled connection.
fn call_batch_rides_one_connection(config: ServerConfig) {
    let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config).unwrap();
    let service = RemoteService::new(server.local_addr());
    let requests: Vec<RestRequest> = (0..6)
        .map(|i| RestRequest::new(HttpMethod::Get, format!("/probe/{i}")))
        .collect();
    let responses = service.call_batch(&requests);
    assert_eq!(responses.len(), 6);
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(path_of(resp), format!("/probe/{i}"));
    }
    assert_eq!(server.connections_accepted(), 1, "whole batch on one conn");
    server.shutdown();
}

/// Keep-alive off restores the historical connection-per-request
/// behaviour: every response carries `Connection: close` and each
/// request costs one accepted connection even through a pooled client.
fn keep_alive_off_closes_every_connection(config: ServerConfig) {
    let config = ServerConfig {
        keep_alive: false,
        ..config
    };
    let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config).unwrap();
    let addr = server.local_addr();
    let client = PooledClient::default();
    for i in 0..4 {
        let resp = client
            .request(addr, &RestRequest::new(HttpMethod::Get, format!("/c/{i}")))
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
    }
    assert_eq!(server.connections_accepted(), 4);
    assert_eq!(client.idle_count(addr), 0, "closed conns are never parked");
    server.shutdown();
}

/// The one-shot `send` client and the pooled client interoperate against
/// the same server without stealing each other's responses.
fn one_shot_and_pooled_clients_coexist(config: ServerConfig) {
    let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config).unwrap();
    let addr = server.local_addr();
    let client = PooledClient::default();
    for i in 0..3 {
        let pooled = client
            .request(addr, &RestRequest::new(HttpMethod::Get, format!("/p/{i}")))
            .unwrap();
        assert_eq!(path_of(&pooled), format!("/p/{i}"));
        let oneshot = send(addr, &RestRequest::new(HttpMethod::Get, format!("/o/{i}"))).unwrap();
        assert_eq!(path_of(&oneshot), format!("/o/{i}"));
    }
    // 1 pooled connection + 3 one-shot connections.
    assert_eq!(server.connections_accepted(), 4);
    server.shutdown();
}

/// Instantiate every scenario once per transport (and once on the
/// forced-`poll(2)` reactor, keeping the fallback path green on Linux).
macro_rules! transport_battery {
    ($($name:ident),* $(,)?) => {
        mod reactor {
            use super::*;
            $(
                #[test]
                fn $name() {
                    super::$name(cfg(Transport::Reactor));
                }
            )*
        }
        mod worker_pool {
            use super::*;
            $(
                #[test]
                fn $name() {
                    super::$name(cfg(Transport::WorkerPool));
                }
            )*
        }
        mod reactor_poll_backend {
            use super::*;
            $(
                #[test]
                fn $name() {
                    super::$name(ServerConfig {
                        reactor_backend: ReactorBackend::Poll,
                        ..cfg(Transport::Reactor)
                    });
                }
            )*
        }
    };
}

transport_battery!(
    keep_alive_reuses_one_connection,
    idle_timeout_closes_and_client_recovers,
    max_requests_per_conn_caps_reuse,
    oversized_content_length_is_rejected_with_400,
    slow_client_is_disconnected_by_read_timeout,
    pooled_client_reconnects_after_backend_restart,
    stale_pooled_connection_is_retried_not_bad_gateway,
    call_batch_rides_one_connection,
    keep_alive_off_closes_every_connection,
    one_shot_and_pooled_clients_coexist,
);
