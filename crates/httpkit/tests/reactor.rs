//! Reactor-transport battery: pipelining parity against the blocking
//! baseline, long-poll parking liveness, and a many-connection soak.
//!
//! The parity tests drive both engines with identical raw byte streams
//! and assert the responses are **byte-identical** — the reactor is only
//! correct if a client cannot tell it from the worker pool. The soak
//! proves the flagship scaling claim: thousands of concurrent keep-alive
//! connections on a constant thread budget, bounded only by
//! `RLIMIT_NOFILE` (the test raises the limit when it can and scales
//! down gracefully when it cannot).

#![cfg(unix)]

use cm_httpkit::{
    read_response_buf, send, serialize_request, AdminRoutes, ConnectionMode, HttpServer,
    ServerConfig, Transport,
};
use cm_model::HttpMethod;
use cm_obs::{MetricsRegistry, RingBufferSink, StreamBatch, TailStream};
use cm_rest::{Json, RestRequest, RestResponse, StatusCode};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

type Handler = dyn Fn(RestRequest) -> RestResponse + Send + Sync;

fn echo_handler() -> Arc<Handler> {
    Arc::new(|req: RestRequest| {
        RestResponse::ok(Json::object(vec![
            ("path", Json::Str(req.path.clone())),
            ("body", req.body.clone().unwrap_or(Json::Null)),
        ]))
    })
}

fn cfg(transport: Transport) -> ServerConfig {
    ServerConfig {
        transport,
        ..ServerConfig::default()
    }
}

/// Write `payload` in one shot and collect every byte the server sends
/// until it closes the connection.
fn exchange_raw(addr: std::net::SocketAddr, payload: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(payload).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    raw
}

/// A burst of pipelined keep-alive requests (the last one `close`) must
/// come back in order, one response per request — and the reactor's
/// bytes must equal the worker pool's exactly.
#[test]
fn pipelined_requests_are_answered_in_order_and_byte_identical() {
    const N: usize = 8;
    let mut payload = Vec::new();
    for i in 0..N {
        let req = RestRequest::new(HttpMethod::Post, format!("/pipe/{i}"))
            .json(Json::object(vec![("seq", Json::Int(i as i64))]));
        let mode = if i == N - 1 {
            ConnectionMode::Close
        } else {
            ConnectionMode::KeepAlive
        };
        serialize_request(&mut payload, &req, mode);
    }

    let mut outputs = Vec::new();
    for transport in [Transport::Reactor, Transport::WorkerPool] {
        let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), cfg(transport)).unwrap();
        let raw = exchange_raw(server.local_addr(), &payload);
        server.shutdown();

        // One well-formed response per request, in request order.
        let mut reader = BufReader::new(raw.as_slice());
        for i in 0..N {
            let resp = read_response_buf(&mut reader)
                .unwrap_or_else(|e| panic!("{transport:?} response {i}: {e}"));
            assert_eq!(resp.status, StatusCode::OK);
            let body = resp.body.unwrap();
            assert_eq!(
                body.get("path").unwrap().as_str(),
                Some(format!("/pipe/{i}").as_str()),
                "{transport:?} must answer pipelined requests in order"
            );
            assert_eq!(
                body.get("body").unwrap().get("seq").unwrap().as_int(),
                Some(i as i64)
            );
        }
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(
            rest.is_empty(),
            "{transport:?} sent trailing bytes: {rest:?}"
        );
        outputs.push(raw);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "reactor and worker pool must be byte-identical on a pipelined burst"
    );
}

/// An oversized `Content-Length` arriving *mid-pipeline* must still be
/// answered with 400-and-close after the earlier requests got their
/// responses — identically on both transports.
#[test]
fn oversized_content_length_mid_pipeline_is_rejected_identically() {
    let mut payload = Vec::new();
    for i in 0..2 {
        serialize_request(
            &mut payload,
            &RestRequest::new(HttpMethod::Get, format!("/ok/{i}")),
            ConnectionMode::KeepAlive,
        );
    }
    payload.extend_from_slice(b"POST /huge HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n");
    // A trailing request that must never be answered (conn closed by 400).
    serialize_request(
        &mut payload,
        &RestRequest::new(HttpMethod::Get, "/never"),
        ConnectionMode::KeepAlive,
    );

    let mut outputs = Vec::new();
    for transport in [Transport::Reactor, Transport::WorkerPool] {
        let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), cfg(transport)).unwrap();
        let raw = exchange_raw(server.local_addr(), &payload);
        server.shutdown();

        let mut reader = BufReader::new(raw.as_slice());
        for i in 0..2 {
            let resp = read_response_buf(&mut reader).unwrap();
            assert_eq!(resp.status, StatusCode::OK, "{transport:?} response {i}");
        }
        let reject = read_response_buf(&mut reader).unwrap();
        assert_eq!(
            reject.status,
            StatusCode::BAD_REQUEST,
            "{transport:?} must reject the oversized declaration"
        );
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(
            rest.is_empty(),
            "{transport:?} must close after the 400, got: {rest:?}"
        );
        outputs.push(raw);
    }
    assert_eq!(outputs[0], outputs[1], "both transports byte-identical");
}

/// In-memory tail used to exercise the long-poll park protocol: records
/// appear when the test pushes them.
#[derive(Debug, Default)]
struct LiveTail {
    records: Mutex<Vec<Json>>,
}

impl LiveTail {
    fn push(&self, record: Json) {
        self.records.lock().unwrap().push(record);
    }
}

impl TailStream for LiveTail {
    fn tail_from(&self, from: u64, max: usize, _wait_ms: u64) -> StreamBatch {
        let records = self.records.lock().unwrap();
        let end = records.len() as u64;
        let start = from.min(end);
        let next = (start + max as u64).min(end);
        StreamBatch {
            start,
            next,
            lagged: 0,
            end,
            records: records[start as usize..next as usize].to_vec(),
        }
    }
}

/// A `wait_ms` long-poll on the reactor parks on the timer wheel: while
/// it waits, the *same single shard* keeps serving other requests, and
/// the parked response is delivered promptly once a record is committed
/// — long before the wait budget expires.
#[test]
fn parked_longpoll_does_not_block_the_shard_and_wakes_on_data() {
    let tail = Arc::new(LiveTail::default());
    let routes = AdminRoutes::new(
        Arc::new(MetricsRegistry::new()),
        Arc::new(RingBufferSink::new(16)),
    )
    .with_stream(Arc::clone(&tail) as Arc<dyn TailStream>);
    let config = ServerConfig {
        shards: 1, // the parked poll and the echo traffic share one shard
        ..cfg(Transport::Reactor)
    };
    let server = HttpServer::bind_with("127.0.0.1:0", routes.wrap(echo_handler()), config).unwrap();
    let addr = server.local_addr();

    // Park a long-poll with a 10s budget on its own connection.
    let poller = std::thread::spawn(move || {
        let started = Instant::now();
        let resp = send(
            addr,
            &RestRequest::new(HttpMethod::Get, "/-/events/stream?from=0&wait_ms=10000"),
        )
        .unwrap();
        (resp, started.elapsed())
    });

    // While it waits, the shard must keep serving echo traffic.
    std::thread::sleep(Duration::from_millis(150));
    for i in 0..5 {
        let started = Instant::now();
        let resp = send(
            addr,
            &RestRequest::new(HttpMethod::Get, format!("/live/{i}")),
        )
        .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shard must stay responsive while a poll is parked"
        );
    }

    // Commit a record: the parked poll must deliver it promptly.
    tail.push(Json::object(vec![("offset", Json::Int(0))]));
    let (resp, waited) = poller.join().unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let body = resp.body.unwrap();
    assert_eq!(
        body.get("records").unwrap().as_array().unwrap().len(),
        1,
        "the committed record rides the parked response"
    );
    assert!(
        waited >= Duration::from_millis(150),
        "the poll actually waited for data ({waited:?})"
    );
    assert!(
        waited < Duration::from_secs(8),
        "parked poll must wake on data, not ride out its budget ({waited:?})"
    );
    server.shutdown();
}

/// An empty long-poll whose budget expires is answered with an empty
/// batch (and a usable resume cursor), not an error or a hang.
#[test]
fn parked_longpoll_times_out_with_an_empty_batch() {
    let tail = Arc::new(LiveTail::default());
    let routes = AdminRoutes::new(
        Arc::new(MetricsRegistry::new()),
        Arc::new(RingBufferSink::new(16)),
    )
    .with_stream(Arc::clone(&tail) as Arc<dyn TailStream>);
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        routes.wrap(echo_handler()),
        cfg(Transport::Reactor),
    )
    .unwrap();
    let started = Instant::now();
    let resp = send(
        server.local_addr(),
        &RestRequest::new(HttpMethod::Get, "/-/events/stream?from=0&wait_ms=300"),
    )
    .unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(250),
        "budget honoured ({waited:?})"
    );
    assert!(waited < Duration::from_secs(5), "no hang ({waited:?})");
    let body = resp.body.unwrap();
    assert!(body.get("records").unwrap().as_array().unwrap().is_empty());
    assert_eq!(body.get("next").unwrap().as_int(), Some(0));
    server.shutdown();
}

/// `RLIMIT_NOFILE` introspection for the soak, via the same thin-FFI
/// style the reactor itself uses.
mod rlimit {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    /// The current soft fd limit, after a best-effort attempt to raise
    /// it to at least `want` (needs privilege to lift the hard cap).
    pub fn nofile_soft_after_raising_to(want: u64) -> u64 {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return 1024;
        }
        if lim.cur < want {
            let raised = RLimit {
                cur: want.max(lim.cur),
                max: want.max(lim.max),
            };
            if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
                return raised.cur;
            }
            // Could not lift the hard cap; use all of what is allowed.
            let best = RLimit {
                cur: lim.max,
                max: lim.max,
            };
            if unsafe { setrlimit(RLIMIT_NOFILE, &best) } == 0 {
                return best.cur;
            }
        }
        lim.cur
    }
}

/// The flagship scaling claim: ≥10k concurrent keep-alive connections
/// on one reactor (client *and* server share this process's fd budget,
/// so each connection costs two fds). When `RLIMIT_NOFILE` cannot cover
/// 10k the soak scales down; below a useful floor it skips.
#[test]
fn soak_ten_thousand_concurrent_keep_alive_connections() {
    const TARGET: u64 = 10_000;
    const SLACK: u64 = 512; // test harness, poller, wake pipes, stdio…
    let soft = rlimit::nofile_soft_after_raising_to(TARGET * 2 + SLACK);
    let conns = TARGET.min((soft.saturating_sub(SLACK)) / 2) as usize;
    if conns < 1_000 {
        eprintln!("skipping soak: RLIMIT_NOFILE={soft} leaves room for only {conns} connections");
        return;
    }

    let config = ServerConfig {
        idle_timeout: Duration::from_secs(120),
        max_requests_per_conn: 1 << 20,
        ..cfg(Transport::Reactor)
    };
    let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config).unwrap();
    let addr = server.local_addr();

    // Ramp: connect, round-trip one request, keep the socket open.
    let mut conns_alive: Vec<TcpStream> = Vec::with_capacity(conns);
    let mut buf = Vec::new();
    for i in 0..conns {
        let mut stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| panic!("connect #{i} of {conns} failed: {e}"));
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        buf.clear();
        serialize_request(
            &mut buf,
            &RestRequest::new(HttpMethod::Get, format!("/soak/{i}")),
            ConnectionMode::KeepAlive,
        );
        stream.write_all(&buf).unwrap();
        let resp = cm_httpkit::read_response(&mut stream)
            .unwrap_or_else(|e| panic!("response #{i} of {conns} failed: {e}"));
        assert_eq!(resp.status, StatusCode::OK);
        conns_alive.push(stream);
    }
    assert_eq!(server.connections_accepted(), conns as u64);

    // Every connection is still live: revisit a spread of them with a
    // second request after the whole fleet is parked.
    for i in (0..conns).step_by((conns / 97).max(1)) {
        let stream = &mut conns_alive[i];
        buf.clear();
        serialize_request(
            &mut buf,
            &RestRequest::new(HttpMethod::Get, format!("/again/{i}")),
            ConnectionMode::KeepAlive,
        );
        stream.write_all(&buf).unwrap();
        let resp = cm_httpkit::read_response(&mut *stream)
            .unwrap_or_else(|e| panic!("revisit #{i} failed: {e}"));
        assert_eq!(resp.status, StatusCode::OK);
        let body = resp.body.unwrap();
        assert_eq!(
            body.get("path").unwrap().as_str(),
            Some(format!("/again/{i}").as_str()),
            "revisited connection must still be wired to its own state"
        );
    }
    assert_eq!(
        server.connections_accepted(),
        conns as u64,
        "revisits must reuse the parked connections, not reconnect"
    );

    eprintln!("soaked {conns} concurrent keep-alive connections");
    drop(conns_alive);
    server.shutdown();
}

/// Shutdown with thousands of connections still open must join cleanly
/// and promptly — no hang, no leaked threads.
#[test]
fn shutdown_with_open_connections_joins_promptly() {
    let server =
        HttpServer::bind_with("127.0.0.1:0", echo_handler(), cfg(Transport::Reactor)).unwrap();
    let addr = server.local_addr();
    let mut open = Vec::new();
    for i in 0..64 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut buf = Vec::new();
        serialize_request(
            &mut buf,
            &RestRequest::new(HttpMethod::Get, format!("/open/{i}")),
            ConnectionMode::KeepAlive,
        );
        stream.write_all(&buf).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let resp = cm_httpkit::read_response(&mut stream).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        open.push(stream);
    }
    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must not wait on idle connections"
    );
}
