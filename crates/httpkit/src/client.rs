//! Persistent-connection HTTP client: a per-address pool of keep-alive
//! connections, and the [`RemoteService`] adapter the monitor uses to
//! reach a backend cloud over the network.
//!
//! Every monitored call used to pay one TCP connect/teardown per hop
//! *and* one more per snapshot probe (~12 backend connections for a
//! single pre+post cycle). [`PooledClient`] amortises all of that: it
//! keeps a bounded stack of idle keep-alive connections per address,
//! health-checks them on checkout, reconnects exactly once when a pooled
//! connection turns out to be stale (the backend restarted or timed the
//! connection out), and offers [`PooledClient::batch`] to issue a whole
//! snapshot's probe GETs back-to-back over a single connection.

use crate::wire::{read_response_buf, serialize_request, wants_close, ConnectionMode, WireError};
use cm_rest::{RestRequest, RestResponse, SharedRestService, StatusCode};
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs for [`PooledClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Idle connections retained per address (default 8); checkins
    /// beyond this close the connection instead.
    pub max_idle_per_addr: usize,
    /// Socket read timeout while waiting for a response (default 10s).
    pub read_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_idle_per_addr: 8,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// One pooled connection: a persistent buffered reader over the stream
/// plus a reusable request-serialisation buffer.
struct Conn {
    reader: BufReader<TcpStream>,
    buf: Vec<u8>,
}

impl Conn {
    fn connect(addr: SocketAddr, cfg: &ClientConfig) -> Result<Conn, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::with_capacity(8 * 1024, stream),
            buf: Vec::with_capacity(1024),
        })
    }

    /// One request/response exchange over this connection. Returns the
    /// response and whether the server asked for the connection to close.
    fn roundtrip(&mut self, request: &RestRequest) -> Result<(RestResponse, bool), WireError> {
        self.buf.clear();
        serialize_request(&mut self.buf, request, ConnectionMode::KeepAlive);
        let stream = self.reader.get_mut();
        stream.write_all(&self.buf)?;
        stream.flush()?;
        let response = read_response_buf(&mut self.reader)?;
        let close = wants_close(&response.headers);
        Ok((response, close))
    }

    /// Is this idle connection still usable? A healthy idle keep-alive
    /// connection has nothing to read (the peek would block); readable
    /// EOF means the server closed it, stray bytes mean a desynchronised
    /// exchange — both are discarded.
    fn healthy(&self) -> bool {
        if !self.reader.buffer().is_empty() {
            return false;
        }
        let stream = self.reader.get_ref();
        if stream.set_nonblocking(true).is_err() {
            return false;
        }
        let mut probe = [0u8; 1];
        let verdict = match stream.peek(&mut probe) {
            Ok(0) => false,                                               // peer closed
            Ok(_) => false,                                               // stray bytes
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true, // quiet = healthy
            Err(_) => false,
        };
        stream.set_nonblocking(false).is_ok() && verdict
    }
}

/// A thread-safe pool of keep-alive connections, keyed by address.
pub struct PooledClient {
    config: ClientConfig,
    pools: Mutex<HashMap<SocketAddr, Vec<Conn>>>,
    opened: AtomicU64,
    reused: AtomicU64,
}

impl std::fmt::Debug for PooledClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledClient")
            .field("opened", &self.opened.load(Ordering::Relaxed))
            .field("reused", &self.reused.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for PooledClient {
    fn default() -> Self {
        PooledClient::new(ClientConfig::default())
    }
}

impl PooledClient {
    /// A pool with the given configuration.
    #[must_use]
    pub fn new(config: ClientConfig) -> Self {
        PooledClient {
            config,
            pools: Mutex::new(HashMap::new()),
            opened: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// TCP connections this client has opened so far — keep-alive tests
    /// assert reuse through this counter.
    #[must_use]
    pub fn connections_opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Exchanges served by a pooled (reused) connection.
    #[must_use]
    pub fn connections_reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Idle connections currently pooled for `addr`.
    #[must_use]
    pub fn idle_count(&self, addr: SocketAddr) -> usize {
        self.pools.lock().unwrap().get(&addr).map_or(0, Vec::len)
    }

    /// Check out a healthy pooled connection (`reused = true`) or open a
    /// fresh one.
    fn checkout(&self, addr: SocketAddr) -> Result<(Conn, bool), WireError> {
        loop {
            let candidate = self.pools.lock().unwrap().get_mut(&addr).and_then(Vec::pop);
            match candidate {
                Some(conn) if conn.healthy() => {
                    self.reused.fetch_add(1, Ordering::Relaxed);
                    return Ok((conn, true));
                }
                Some(_) => continue, // stale: drop and try the next one
                None => {
                    self.opened.fetch_add(1, Ordering::Relaxed);
                    return Ok((Conn::connect(addr, &self.config)?, false));
                }
            }
        }
    }

    fn checkin(&self, addr: SocketAddr, conn: Conn) {
        let mut pools = self.pools.lock().unwrap();
        let pool = pools.entry(addr).or_default();
        if pool.len() < self.config.max_idle_per_addr {
            pool.push(conn);
        }
    }

    /// Send one request, reusing a pooled connection when possible.
    ///
    /// A stale pooled connection (closed by the server since checkin)
    /// surfaces as *reconnect-once*, not as an error: the exchange is
    /// retried on a single fresh connection before any failure
    /// propagates.
    ///
    /// # Errors
    ///
    /// [`WireError`] when a fresh connection cannot be established or
    /// the exchange fails on it.
    pub fn request(
        &self,
        addr: SocketAddr,
        request: &RestRequest,
    ) -> Result<RestResponse, WireError> {
        loop {
            let (mut conn, reused) = self.checkout(addr)?;
            match conn.roundtrip(request) {
                Ok((response, close)) => {
                    if !close {
                        self.checkin(addr, conn);
                    }
                    return Ok(response);
                }
                // The pool's health check is a point-in-time peek: a
                // connection can still die between checkout and write.
                // Retry exactly once, on a connection we know is fresh.
                Err(_) if reused => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Issue `requests` back-to-back over a **single** connection — the
    /// snapshot-probe fast path: one monitored call's pre+post probe
    /// cycle reuses one backend connection instead of opening one per
    /// GET. Responses come back in request order. If the server closes
    /// the connection mid-batch (`max_requests_per_conn`), the remainder
    /// continues on one fresh connection.
    ///
    /// # Errors
    ///
    /// As [`PooledClient::request`]; a stale pooled connection is retried
    /// once from the top of the batch before the first response commits.
    pub fn batch(
        &self,
        addr: SocketAddr,
        requests: &[RestRequest],
    ) -> Result<Vec<RestResponse>, WireError> {
        let mut responses = Vec::with_capacity(requests.len());
        let (mut conn, mut reused) = self.checkout(addr)?;
        let mut alive = true;
        for request in requests {
            if !alive {
                conn = self.checkout(addr)?.0;
                reused = false;
            }
            match conn.roundtrip(request) {
                Ok((response, close)) => {
                    responses.push(response);
                    alive = !close;
                }
                Err(e) => {
                    // Reconnect-once applies only before any response
                    // committed — afterwards a retry would re-issue a
                    // probe the server already answered.
                    if reused && responses.is_empty() {
                        self.opened.fetch_add(1, Ordering::Relaxed);
                        conn = Conn::connect(addr, &self.config)?;
                        reused = false;
                        let (response, close) = conn.roundtrip(request)?;
                        responses.push(response);
                        alive = !close;
                    } else {
                        return Err(e);
                    }
                }
            }
        }
        if alive {
            self.checkin(addr, conn);
        }
        Ok(responses)
    }
}

/// A [`cm_rest::SharedRestService`] adapter that forwards every request
/// to a remote HTTP server — this is how the monitor wraps a private
/// cloud reachable only over the network (the paper's deployment, where
/// the monitor runs on the laptop and OpenStack in VirtualBox).
///
/// By default the adapter holds a shared [`PooledClient`], so forwards
/// and snapshot probes reuse keep-alive connections; a stale pooled
/// connection surfaces as a silent reconnect-once, and only a failure on
/// a *fresh* connection becomes `502 BAD_GATEWAY`.
/// [`RemoteService::connection_per_request`] restores the historical
/// one-connection-per-call transport (the benchmark baseline).
#[derive(Debug, Clone)]
pub struct RemoteService {
    addr: SocketAddr,
    client: Option<Arc<PooledClient>>,
}

impl RemoteService {
    /// Point the adapter at a server address, pooling connections.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        RemoteService {
            addr,
            client: Some(Arc::new(PooledClient::default())),
        }
    }

    /// Pooled adapter sharing an existing client (so several services —
    /// or several clones across worker threads — draw from one pool).
    #[must_use]
    pub fn with_client(addr: SocketAddr, client: Arc<PooledClient>) -> Self {
        RemoteService {
            addr,
            client: Some(client),
        }
    }

    /// The historical transport: one fresh TCP connection per call.
    #[must_use]
    pub fn connection_per_request(addr: SocketAddr) -> Self {
        RemoteService { addr, client: None }
    }

    /// The connection pool, when this adapter pools.
    #[must_use]
    pub fn client(&self) -> Option<&Arc<PooledClient>> {
        self.client.as_ref()
    }
}

impl SharedRestService for RemoteService {
    fn call(&self, request: &RestRequest) -> RestResponse {
        let result = match &self.client {
            Some(client) => client.request(self.addr, request),
            None => crate::server::send(self.addr, request),
        };
        match result {
            Ok(resp) => resp,
            Err(e) => RestResponse::error(StatusCode::BAD_GATEWAY, e.to_string()),
        }
    }

    fn call_batch(&self, requests: &[RestRequest]) -> Vec<RestResponse> {
        let Some(client) = &self.client else {
            return requests.iter().map(|r| self.call(r)).collect();
        };
        match client.batch(self.addr, requests) {
            Ok(responses) => responses,
            // Mid-batch transport failure: fall back to per-request
            // calls, which carry their own retry-once and BAD_GATEWAY
            // mapping, so a partial batch never loses probe responses.
            Err(_) => requests.iter().map(|r| self.call(r)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Handler, HttpServer};
    use cm_model::HttpMethod;
    use cm_rest::{Json, RestService};

    fn path_echo() -> Arc<Handler> {
        Arc::new(|req: RestRequest| RestResponse::ok(Json::Str(req.path)))
    }

    #[test]
    fn remote_service_forwards() {
        let server = HttpServer::bind("127.0.0.1:0", path_echo()).unwrap();
        let mut remote = RemoteService::new(server.local_addr());
        let resp = remote.handle(&RestRequest::new(HttpMethod::Get, "/ping"));
        assert_eq!(resp.body, Some(Json::Str("/ping".into())));
        server.shutdown();
    }

    #[test]
    fn remote_service_reports_unreachable_as_bad_gateway() {
        // Bind and immediately drop a listener to get a dead port.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut remote = RemoteService::new(addr);
        let resp = remote.handle(&RestRequest::new(HttpMethod::Get, "/"));
        assert_eq!(resp.status, StatusCode::BAD_GATEWAY);
    }

    #[test]
    fn remote_service_reuses_one_connection() {
        let server = HttpServer::bind("127.0.0.1:0", path_echo()).unwrap();
        let remote = RemoteService::new(server.local_addr());
        for i in 0..5 {
            let resp = remote.call(&RestRequest::new(HttpMethod::Get, format!("/{i}")));
            assert_eq!(resp.status, StatusCode::OK);
        }
        assert_eq!(server.connections_accepted(), 1);
        assert_eq!(remote.client().unwrap().connections_opened(), 1);
        server.shutdown();
    }

    #[test]
    fn call_batch_runs_over_one_connection() {
        let server = HttpServer::bind("127.0.0.1:0", path_echo()).unwrap();
        let remote = RemoteService::new(server.local_addr());
        let requests: Vec<RestRequest> = (0..6)
            .map(|i| RestRequest::new(HttpMethod::Get, format!("/probe/{i}")))
            .collect();
        let responses = remote.call_batch(&requests);
        assert_eq!(responses.len(), 6);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.body, Some(Json::Str(format!("/probe/{i}"))));
        }
        assert_eq!(server.connections_accepted(), 1);
        server.shutdown();
    }
}
