//! Persistent-connection HTTP client: a per-address pool of keep-alive
//! connections, and the [`RemoteService`] adapter the monitor uses to
//! reach a backend cloud over the network.
//!
//! Every monitored call used to pay one TCP connect/teardown per hop
//! *and* one more per snapshot probe (~12 backend connections for a
//! single pre+post cycle). [`PooledClient`] amortises all of that: it
//! keeps a bounded stack of idle keep-alive connections per address,
//! health-checks them on checkout, reconnects exactly once when a pooled
//! connection turns out to be stale (the backend restarted or timed the
//! connection out), and offers [`PooledClient::batch`] to issue a whole
//! snapshot's probe GETs back-to-back over a single connection.
//!
//! On top of the pool sits the resilience layer ([`crate::resilience`]):
//! every logical request carries a **deadline budget** that caps connect
//! and read timeouts across all attempts, idempotent (GET) requests are
//! retried with **capped, seeded-jitter exponential backoff**, and each
//! backend address has a **circuit breaker** so a down cloud sheds
//! requests in microseconds instead of burning a connect timeout per
//! call.

use crate::resilience::{
    Admission, BackoffSchedule, BreakerState, CircuitBreaker, DeadlineBudget, TransportError,
    TransportStats,
};
use crate::wire::{read_response_buf, serialize_request, wants_close, ConnectionMode, WireError};
use cm_model::HttpMethod;
use cm_rest::{
    RestRequest, RestResponse, SharedRestService, StatusCode, OVERLOAD_HEADER,
    TRANSPORT_FAULT_HEADER,
};
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Lock a mutex, recovering from poisoning: a panic in one requester
/// must not wedge the shared pool/breaker state for every later caller.
fn plock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`PooledClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Idle connections retained per address (default 8); checkins
    /// beyond this close the connection instead.
    pub max_idle_per_addr: usize,
    /// Socket read timeout while waiting for a response (default 10s).
    /// Each attempt's effective timeout is additionally capped by the
    /// request's remaining deadline budget.
    pub read_timeout: Duration,
    /// Wall-clock budget for one logical request including all retries
    /// and backoff sleeps (default 10s).
    pub request_deadline: Duration,
    /// Retries after the first failed attempt, idempotent (GET)
    /// requests only (default 2; 0 disables retries).
    pub max_retries: u32,
    /// Base delay of the exponential backoff (default 25ms).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay (default 1s).
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Consecutive fresh-connection failures that trip a backend's
    /// circuit breaker (default 5; 0 disables the breaker).
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before admitting one
    /// half-open probe (default 500ms).
    pub breaker_cooldown: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_idle_per_addr: 8,
            read_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(10),
            max_retries: 2,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            jitter_seed: 0xC10D_F00D,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(500),
        }
    }
}

/// One pooled connection: a persistent buffered reader over the stream
/// plus a reusable request-serialisation buffer.
struct Conn {
    reader: BufReader<TcpStream>,
    buf: Vec<u8>,
    /// The read timeout currently programmed into the socket, tracked
    /// so per-attempt re-capping only pays a syscall when it changes.
    read_timeout: Duration,
    /// When this connection was last checked in (or opened). A
    /// connection idle for less than [`WARM_CHECKOUT_WINDOW`] skips the
    /// three-syscall [`Conn::healthy`] peek on checkout.
    idle_since: Instant,
}

/// Idle span under which a pooled connection is trusted without the
/// checkout health peek. Far below any server idle timeout in practice;
/// the rare conn that did die inside the window is caught by the
/// existing stale-reuse recovery (free retry / reconnect-once), so the
/// skip trades a vanishing failure-path cost for three fewer syscalls
/// on every hot-path checkout.
const WARM_CHECKOUT_WINDOW: Duration = Duration::from_millis(50);

impl Conn {
    /// Open a fresh connection, capping both the connect and the read
    /// timeout by `limit` (the request's remaining deadline budget).
    fn connect(addr: SocketAddr, cfg: &ClientConfig, limit: Duration) -> Result<Conn, WireError> {
        let timeout = effective_timeout(cfg.read_timeout, limit);
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::with_capacity(8 * 1024, stream),
            buf: Vec::with_capacity(1024),
            read_timeout: timeout,
            idle_since: Instant::now(),
        })
    }

    /// One request/response exchange over this connection. Returns the
    /// response and whether the server asked for the connection to close.
    fn roundtrip(&mut self, request: &RestRequest) -> Result<(RestResponse, bool), WireError> {
        self.buf.clear();
        serialize_request(&mut self.buf, request, ConnectionMode::KeepAlive);
        let stream = self.reader.get_mut();
        stream.write_all(&self.buf)?;
        stream.flush()?;
        let response = read_response_buf(&mut self.reader)?;
        let close = wants_close(&response.headers);
        Ok((response, close))
    }

    /// Write every request in `requests` back-to-back in **one** wire
    /// payload, then read the responses in order — HTTP/1.1 pipelining,
    /// the snapshot-probe fast path. A reactor-transport server drains
    /// the whole batch per readiness event (one read, N handlers, one
    /// `writev`), so a batch costs ~one round trip instead of N.
    ///
    /// Committed responses are pushed into `responses`. Returns how many
    /// requests were answered before the server asked for the connection
    /// to close — fewer than `requests.len()` means the server recycled
    /// the connection mid-batch (`max_requests_per_conn`) and the caller
    /// should continue the remainder on a fresh one.
    fn pipeline(
        &mut self,
        requests: &[RestRequest],
        responses: &mut Vec<RestResponse>,
    ) -> Result<usize, WireError> {
        self.buf.clear();
        for request in requests {
            serialize_request(&mut self.buf, request, ConnectionMode::KeepAlive);
        }
        let stream = self.reader.get_mut();
        stream.write_all(&self.buf)?;
        stream.flush()?;
        for served in 1..=requests.len() {
            let response = read_response_buf(&mut self.reader)?;
            let close = wants_close(&response.headers);
            responses.push(response);
            if close {
                return Ok(served);
            }
        }
        Ok(requests.len())
    }

    /// Is this idle connection still usable? A healthy idle keep-alive
    /// connection has nothing to read (the peek would block); readable
    /// EOF means the server closed it, stray bytes mean a desynchronised
    /// exchange — both are discarded.
    fn healthy(&self) -> bool {
        if !self.reader.buffer().is_empty() {
            return false;
        }
        let stream = self.reader.get_ref();
        if stream.set_nonblocking(true).is_err() {
            return false;
        }
        let mut probe = [0u8; 1];
        let verdict = match stream.peek(&mut probe) {
            Ok(0) => false,                                               // peer closed
            Ok(_) => false,                                               // stray bytes
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true, // quiet = healthy
            Err(_) => false,
        };
        stream.set_nonblocking(false).is_ok() && verdict
    }
}

/// A per-attempt socket timeout: the configured read timeout capped by
/// the remaining deadline budget, floored so the OS accepts it.
fn effective_timeout(read_timeout: Duration, remaining: Duration) -> Duration {
    read_timeout.min(remaining).max(Duration::from_millis(1))
}

/// How one attempt on one connection ended.
enum AttemptError {
    /// A *reused* pooled connection died between checkout and exchange —
    /// a staleness artefact, not a backend-health signal. Retried free.
    Stale,
    /// The deadline budget ran out before the attempt could start.
    Deadline,
    /// A fresh connection failed: the backend is genuinely unwell.
    Fresh(WireError),
}

/// A thread-safe pool of keep-alive connections, keyed by address, with
/// per-address circuit breakers and deadline-budgeted retries.
pub struct PooledClient {
    config: ClientConfig,
    pools: Mutex<HashMap<SocketAddr, Vec<Conn>>>,
    breakers: Mutex<HashMap<SocketAddr, CircuitBreaker>>,
    /// Number of breakers currently *not* pristine (closed with zero
    /// failures). While this is zero — the overwhelmingly common case —
    /// admission and success bookkeeping skip the breaker map entirely,
    /// keeping the per-request hot path lock-free. The count is advisory:
    /// a momentarily stale read only delays breaker bookkeeping by one
    /// in-flight request, never corrupts it, because all state changes
    /// still happen under the map lock.
    turbulence: AtomicU64,
    backoff: Mutex<BackoffSchedule>,
    stats: TransportStats,
    opened: AtomicU64,
    reused: AtomicU64,
}

impl std::fmt::Debug for PooledClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledClient")
            .field("opened", &self.opened.load(Ordering::Relaxed))
            .field("reused", &self.reused.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for PooledClient {
    fn default() -> Self {
        PooledClient::new(ClientConfig::default())
    }
}

impl PooledClient {
    /// A pool with the given configuration.
    #[must_use]
    pub fn new(config: ClientConfig) -> Self {
        let backoff =
            BackoffSchedule::new(config.backoff_base, config.backoff_cap, config.jitter_seed);
        PooledClient {
            config,
            pools: Mutex::new(HashMap::new()),
            breakers: Mutex::new(HashMap::new()),
            turbulence: AtomicU64::new(0),
            backoff: Mutex::new(backoff),
            stats: TransportStats::default(),
            opened: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// The configuration this pool runs with.
    #[must_use]
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// TCP connections this client has opened so far — keep-alive tests
    /// assert reuse through this counter.
    #[must_use]
    pub fn connections_opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Exchanges served by a pooled (reused) connection.
    #[must_use]
    pub fn connections_reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Idle connections currently pooled for `addr`.
    #[must_use]
    pub fn idle_count(&self, addr: SocketAddr) -> usize {
        plock(&self.pools).get(&addr).map_or(0, Vec::len)
    }

    /// Resilience counters (retries, sheds, breaker transitions).
    #[must_use]
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// Current breaker state per backend this client has talked to,
    /// sorted by address for stable output.
    #[must_use]
    pub fn breaker_snapshot(&self) -> Vec<(SocketAddr, BreakerState)> {
        let breakers = plock(&self.breakers);
        let mut states: Vec<_> = breakers.iter().map(|(a, b)| (*a, b.state())).collect();
        states.sort_by_key(|(a, _)| a.to_string());
        states
    }

    /// Ask `addr`'s breaker whether this request may proceed.
    fn admit(&self, addr: SocketAddr) -> Admission {
        if self.config.breaker_threshold == 0 || self.turbulence.load(Ordering::Relaxed) == 0 {
            // Every breaker is pristine, so admission cannot be anything
            // but Allow — skip the map lock. Entries are created lazily
            // by `record_failure`; admitting Open→HalfOpen keeps a
            // breaker turbulent, so the slow path below stays reachable
            // whenever it could matter.
            return Admission::Allow;
        }
        let mut breakers = plock(&self.breakers);
        let breaker = breakers.entry(addr).or_insert_with(|| {
            CircuitBreaker::new(self.config.breaker_threshold, self.config.breaker_cooldown)
        });
        let admission = breaker.admit(Instant::now());
        match admission {
            Admission::Probe => {
                self.stats
                    .breaker_half_opened
                    .fetch_add(1, Ordering::Relaxed);
            }
            Admission::Shed => {
                self.stats.sheds.fetch_add(1, Ordering::Relaxed);
            }
            Admission::Allow => {}
        }
        admission
    }

    /// Record a successful exchange with `addr`'s breaker.
    fn record_success(&self, addr: SocketAddr) {
        if self.config.breaker_threshold == 0 || self.turbulence.load(Ordering::Relaxed) == 0 {
            // A pristine breaker is a fixpoint under success; nothing to
            // record, no lock to take.
            return;
        }
        let mut breakers = plock(&self.breakers);
        if let Some(breaker) = breakers.get_mut(&addr) {
            let was_turbulent = !breaker.is_pristine();
            if breaker.on_success() {
                self.stats.breaker_closed.fetch_add(1, Ordering::Relaxed);
            }
            if was_turbulent {
                self.turbulence.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Record a fresh-connection failure with `addr`'s breaker.
    fn record_failure(&self, addr: SocketAddr) {
        if self.config.breaker_threshold == 0 {
            return;
        }
        let mut breakers = plock(&self.breakers);
        let breaker = breakers.entry(addr).or_insert_with(|| {
            CircuitBreaker::new(self.config.breaker_threshold, self.config.breaker_cooldown)
        });
        let was_pristine = breaker.is_pristine();
        if breaker.on_failure(Instant::now()) {
            self.stats.breaker_opened.fetch_add(1, Ordering::Relaxed);
        }
        if was_pristine {
            self.turbulence.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Check out a healthy pooled connection (`reused = true`) or open a
    /// fresh one, capping connect/read timeouts by `limit`.
    ///
    /// A pooled connection may have been programmed under an earlier
    /// request's budget, so its read timeout is re-capped here to what
    /// *this* request can still afford — otherwise a stalling backend
    /// could hold a reused connection for the previous caller's full
    /// `read_timeout`, blowing straight through `limit`.
    fn checkout(&self, addr: SocketAddr, limit: Duration) -> Result<(Conn, bool), WireError> {
        loop {
            let candidate = plock(&self.pools).get_mut(&addr).and_then(Vec::pop);
            // A warm connection (checked in moments ago, nothing
            // buffered) is trusted without the health peek.
            let usable = |conn: &Conn| {
                (conn.idle_since.elapsed() < WARM_CHECKOUT_WINDOW
                    && conn.reader.buffer().is_empty())
                    || conn.healthy()
            };
            match candidate {
                Some(mut conn) if usable(&conn) => {
                    let timeout = effective_timeout(self.config.read_timeout, limit);
                    if timeout != conn.read_timeout {
                        // Pay the syscall only when the value changes; a
                        // socket we cannot re-arm is not safe to reuse.
                        if conn
                            .reader
                            .get_ref()
                            .set_read_timeout(Some(timeout))
                            .is_err()
                        {
                            continue;
                        }
                        conn.read_timeout = timeout;
                    }
                    self.reused.fetch_add(1, Ordering::Relaxed);
                    return Ok((conn, true));
                }
                Some(_) => continue, // stale: drop and try the next one
                None => {
                    self.opened.fetch_add(1, Ordering::Relaxed);
                    return Ok((Conn::connect(addr, &self.config, limit)?, false));
                }
            }
        }
    }

    fn checkin(&self, addr: SocketAddr, mut conn: Conn) {
        conn.idle_since = Instant::now();
        let mut pools = plock(&self.pools);
        let pool = pools.entry(addr).or_default();
        if pool.len() < self.config.max_idle_per_addr {
            pool.push(conn);
        }
    }

    /// One attempt: check out (or open) a connection within the budget
    /// and run a single exchange on it.
    fn attempt_once(
        &self,
        addr: SocketAddr,
        request: &RestRequest,
        budget: &DeadlineBudget,
    ) -> Result<RestResponse, AttemptError> {
        let Some(remaining) = budget.remaining() else {
            return Err(AttemptError::Deadline);
        };
        let (mut conn, reused) = match self.checkout(addr, remaining) {
            Ok(pair) => pair,
            Err(e) => return Err(AttemptError::Fresh(e)),
        };
        match conn.roundtrip(request) {
            Ok((response, close)) => {
                if !close {
                    self.checkin(addr, conn);
                }
                Ok(response)
            }
            // The pool's health check is a point-in-time peek: a
            // connection can still die between checkout and write.
            // Retry exactly once, on a connection we know is fresh.
            Err(_) if reused => Err(AttemptError::Stale),
            Err(e) => Err(AttemptError::Fresh(e)),
        }
    }

    /// Send one request, reusing a pooled connection when possible.
    ///
    /// The exchange runs under the configured per-request deadline
    /// budget. Idempotent (GET) requests that fail on a fresh connection
    /// are retried up to `max_retries` times with capped exponential
    /// backoff and deterministic jitter, re-consulting the breaker
    /// before each retry; non-GET requests are never re-sent once a
    /// fresh connection has failed. A stale *pooled* connection still
    /// surfaces as reconnect-once for any method — the request provably
    /// never reached the backend.
    ///
    /// # Errors
    ///
    /// [`TransportError::Wire`] when a fresh connection fails and no
    /// retry is permitted; [`TransportError::CircuitOpen`] when the
    /// backend's breaker sheds the request; and
    /// [`TransportError::DeadlineExceeded`] when the budget runs out
    /// (possibly mid-retry, before an affordable backoff remains).
    pub fn request(
        &self,
        addr: SocketAddr,
        request: &RestRequest,
    ) -> Result<RestResponse, TransportError> {
        self.request_on_budget(
            addr,
            request,
            &DeadlineBudget::new(self.config.request_deadline),
        )
    }

    /// As [`PooledClient::request`], but drawing on a caller-supplied
    /// deadline budget instead of starting a fresh one — this is how a
    /// batch's per-request fallback keeps a whole snapshot inside one
    /// logical deadline instead of granting every re-issued probe its
    /// own full budget.
    ///
    /// # Errors
    ///
    /// As [`PooledClient::request`].
    pub fn request_on_budget(
        &self,
        addr: SocketAddr,
        request: &RestRequest,
        budget: &DeadlineBudget,
    ) -> Result<RestResponse, TransportError> {
        let retryable = request.method == HttpMethod::Get;
        let mut attempt: u32 = 0;
        let mut need_admission = true;
        let mut probe = false;
        loop {
            if need_admission {
                probe = match self.admit(addr) {
                    Admission::Allow => false,
                    Admission::Probe => true,
                    Admission::Shed => return Err(TransportError::CircuitOpen { addr }),
                };
                need_admission = false;
            }
            match self.attempt_once(addr, request, budget) {
                Ok(response) => {
                    self.record_success(addr);
                    return Ok(response);
                }
                // Keep the current admission: the stale retry is part of
                // the same attempt (the backend never saw the request).
                Err(AttemptError::Stale) => continue,
                Err(AttemptError::Deadline) => {
                    self.stats
                        .deadline_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                    // An exhausted budget says nothing about backend
                    // health, so it normally leaves the breaker alone —
                    // but an in-flight half-open probe MUST resolve, or
                    // the breaker would stay HalfOpen and shed every
                    // later request. A probe that could not finish
                    // within budget re-trips the breaker to Open.
                    if probe {
                        self.record_failure(addr);
                    }
                    return Err(TransportError::DeadlineExceeded {
                        budget: budget.budget(),
                    });
                }
                Err(AttemptError::Fresh(e)) => {
                    self.record_failure(addr);
                    if probe || !retryable || attempt >= self.config.max_retries {
                        return Err(e.into());
                    }
                    let delay = plock(&self.backoff).delay(attempt);
                    if !budget.affords(delay) {
                        self.stats
                            .deadline_exhausted
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(TransportError::DeadlineExceeded {
                            budget: budget.budget(),
                        });
                    }
                    std::thread::sleep(delay);
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    // The breaker may have opened (or entered half-open)
                    // while we slept — re-admit before retrying.
                    need_admission = true;
                }
            }
        }
    }

    /// Issue `requests` back-to-back over a **single** connection — the
    /// snapshot-probe fast path: one monitored call's pre+post probe
    /// cycle reuses one backend connection instead of opening one per
    /// GET. Responses come back in request order. If the server closes
    /// the connection mid-batch (`max_requests_per_conn`), the remainder
    /// continues on one fresh connection.
    ///
    /// The whole batch shares one deadline budget and one breaker
    /// admission; only a *fresh-connection* failure counts against the
    /// breaker — a reused connection dying mid-batch or an exhausted
    /// budget is no evidence of backend ill health.
    ///
    /// # Errors
    ///
    /// As [`PooledClient::request`]; a stale pooled connection is retried
    /// once from the top of the batch before the first response commits.
    pub fn batch(
        &self,
        addr: SocketAddr,
        requests: &[RestRequest],
    ) -> Result<Vec<RestResponse>, TransportError> {
        let budget = DeadlineBudget::new(self.config.request_deadline);
        let probe = match self.admit(addr) {
            Admission::Shed => return Err(TransportError::CircuitOpen { addr }),
            Admission::Probe => true,
            Admission::Allow => false,
        };
        let mut responses = Vec::with_capacity(requests.len());
        match self.batch_on_budget(addr, requests, &budget, &mut responses) {
            Ok(()) => {
                self.record_success(addr);
                Ok(responses)
            }
            Err(e) => {
                self.settle_batch_failure(addr, probe, &e);
                Err(e.into_transport())
            }
        }
    }

    /// [`PooledClient::batch`] with a per-request fallback: always
    /// returns exactly one entry per request, in request order. Committed
    /// batch responses are kept; after a mid-batch failure only the
    /// *unanswered tail* is re-issued, each request drawing on what is
    /// left of the **same** deadline budget — so one logical snapshot
    /// costs at most one `request_deadline` of wall clock, never
    /// `batch + N × request_deadline`. Requests the transport could not
    /// answer carry their [`TransportError`] instead of a response.
    pub fn batch_settled(
        &self,
        addr: SocketAddr,
        requests: &[RestRequest],
    ) -> Vec<Result<RestResponse, TransportError>> {
        let budget = DeadlineBudget::new(self.config.request_deadline);
        let probe = match self.admit(addr) {
            Admission::Shed => {
                return requests
                    .iter()
                    .map(|_| Err(TransportError::CircuitOpen { addr }))
                    .collect();
            }
            Admission::Probe => true,
            Admission::Allow => false,
        };
        let mut committed = Vec::with_capacity(requests.len());
        let outcome = self.batch_on_budget(addr, requests, &budget, &mut committed);
        let mut settled: Vec<Result<RestResponse, TransportError>> =
            committed.into_iter().map(Ok).collect();
        match outcome {
            Ok(()) => self.record_success(addr),
            Err(e) => {
                self.settle_batch_failure(addr, probe, &e);
                // Re-issue only the unanswered tail on the shared budget.
                // Once the budget (or the breaker, after the recorded
                // failure) gives out, the remaining entries fail fast
                // without touching the network.
                for request in &requests[settled.len()..] {
                    settled.push(self.request_on_budget(addr, request, &budget));
                }
            }
        }
        settled
    }

    /// Feed a failed batch's outcome to the breaker: only fresh-
    /// connection failures indict the backend. A soft failure (exhausted
    /// budget, reused connection dying mid-batch) records nothing —
    /// unless this batch was the half-open probe, which must resolve
    /// one way or the other lest the breaker shed forever.
    fn settle_batch_failure(&self, addr: SocketAddr, probe: bool, error: &BatchError) {
        match error {
            BatchError::Fresh(_) => self.record_failure(addr),
            BatchError::Soft(_) if probe => self.record_failure(addr),
            BatchError::Soft(_) => {}
        }
    }

    /// Run the batch, pushing each committed response into `responses`
    /// (so callers keep the answered prefix even when the batch dies
    /// mid-flight).
    fn batch_on_budget(
        &self,
        addr: SocketAddr,
        requests: &[RestRequest],
        budget: &DeadlineBudget,
        responses: &mut Vec<RestResponse>,
    ) -> Result<(), BatchError> {
        let remaining = || {
            budget.remaining().ok_or_else(|| {
                self.stats
                    .deadline_exhausted
                    .fetch_add(1, Ordering::Relaxed);
                BatchError::Soft(TransportError::DeadlineExceeded {
                    budget: budget.budget(),
                })
            })
        };
        let fresh = |e: WireError| BatchError::Fresh(e.into());
        let committed_at_entry = responses.len();
        let (mut conn, mut reused) = self.checkout(addr, remaining()?).map_err(fresh)?;
        if requests.is_empty() {
            self.checkin(addr, conn);
            return Ok(());
        }
        let mut done = 0;
        while done < requests.len() {
            match conn.pipeline(&requests[done..], responses) {
                Ok(served) => {
                    done += served;
                    if done < requests.len() {
                        // The server asked to close mid-batch (connection
                        // recycling): the unanswered tail was discarded
                        // unread, so re-pipelining it is safe. Continue
                        // on another connection.
                        conn = self.checkout(addr, remaining()?).map_err(fresh)?.0;
                        reused = false;
                    } else {
                        self.checkin(addr, conn);
                        return Ok(());
                    }
                }
                Err(e) => {
                    // Reconnect-once applies only before any response
                    // committed — afterwards a retry would re-issue a
                    // probe the server already answered.
                    if reused && responses.len() == committed_at_entry {
                        self.opened.fetch_add(1, Ordering::Relaxed);
                        conn = Conn::connect(addr, &self.config, remaining()?).map_err(fresh)?;
                        reused = false;
                    } else if reused {
                        // A reused keep-alive connection died after
                        // committing responses: a staleness artefact of
                        // the pool, not a backend-health signal.
                        return Err(BatchError::Soft(e.into()));
                    } else {
                        return Err(fresh(e));
                    }
                }
            }
        }
        Ok(())
    }
}

/// How a batch attempt failed — split so the breaker only ever hears
/// about failures that actually indict the backend.
enum BatchError {
    /// A fresh-connection failure: the backend is genuinely unwell.
    Fresh(TransportError),
    /// An exhausted deadline budget or a reused connection dying
    /// mid-batch: says nothing about backend health.
    Soft(TransportError),
}

impl BatchError {
    fn into_transport(self) -> TransportError {
        match self {
            BatchError::Fresh(e) | BatchError::Soft(e) => e,
        }
    }
}

/// A [`cm_rest::SharedRestService`] adapter that forwards every request
/// to a remote HTTP server — this is how the monitor wraps a private
/// cloud reachable only over the network (the paper's deployment, where
/// the monitor runs on the laptop and OpenStack in VirtualBox).
///
/// By default the adapter holds a shared [`PooledClient`], so forwards
/// and snapshot probes reuse keep-alive connections; a stale pooled
/// connection surfaces as a silent reconnect-once, and only a failure on
/// a *fresh* connection becomes an error response. Transport failures
/// are synthesised as **marked** gateway responses
/// ([`RestResponse::transport_fault`]): `502` for a wire failure, `503`
/// for a request shed by an open circuit breaker, `504` for an
/// exhausted deadline budget — so the monitor can tell "the path is
/// sick" apart from "the cloud denied the request".
///
/// The marker is a *trust boundary*: this adapter strips
/// [`TRANSPORT_FAULT_HEADER`] from every response that actually arrived
/// over the wire, so only responses synthesised by the monitor's own
/// client ever carry it. A misbehaving backend cannot set the header
/// itself to masquerade as transport weather and dodge the monitor's
/// post-condition checks.
/// [`RemoteService::connection_per_request`] restores the historical
/// one-connection-per-call transport (the benchmark baseline).
#[derive(Debug, Clone)]
pub struct RemoteService {
    addr: SocketAddr,
    client: Option<Arc<PooledClient>>,
}

impl RemoteService {
    /// Point the adapter at a server address, pooling connections.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        RemoteService {
            addr,
            client: Some(Arc::new(PooledClient::default())),
        }
    }

    /// Pooled adapter sharing an existing client (so several services —
    /// or several clones across worker threads — draw from one pool).
    #[must_use]
    pub fn with_client(addr: SocketAddr, client: Arc<PooledClient>) -> Self {
        RemoteService {
            addr,
            client: Some(client),
        }
    }

    /// The historical transport: one fresh TCP connection per call.
    #[must_use]
    pub fn connection_per_request(addr: SocketAddr) -> Self {
        RemoteService { addr, client: None }
    }

    /// The connection pool, when this adapter pools.
    #[must_use]
    pub fn client(&self) -> Option<&Arc<PooledClient>> {
        self.client.as_ref()
    }

    /// Map a transport error to its marked gateway response.
    fn fault_response(error: &TransportError) -> RestResponse {
        let status = match error {
            TransportError::Wire(_) => StatusCode::BAD_GATEWAY,
            TransportError::CircuitOpen { .. } => StatusCode::SERVICE_UNAVAILABLE,
            TransportError::DeadlineExceeded { .. } => StatusCode::GATEWAY_TIMEOUT,
        };
        RestResponse::transport_fault(status, error.to_string())
    }

    /// Enforce the transport-fault trust boundary on a response that
    /// actually arrived over the wire: whatever the peer claims, it
    /// *did* answer, so it must not carry the synthesised-by-transport
    /// marker. Without this scrub a malicious cloud could set the header
    /// itself and have every misdeed written off as transport weather.
    /// The overload-shed marker is scrubbed for the same reason: only
    /// the monitor's own admission control may flag a request as shed,
    /// else a backend 503 could masquerade as local load shedding and
    /// be audited as `Degraded` instead of judged on its merits.
    fn scrub(mut response: RestResponse) -> RestResponse {
        response.headers.retain(|(name, _)| {
            !name.eq_ignore_ascii_case(TRANSPORT_FAULT_HEADER)
                && !name.eq_ignore_ascii_case(OVERLOAD_HEADER)
        });
        response
    }
}

impl SharedRestService for RemoteService {
    fn call(&self, request: &RestRequest) -> RestResponse {
        let result = match &self.client {
            Some(client) => client.request(self.addr, request),
            None => crate::server::send(self.addr, request).map_err(TransportError::from),
        };
        match result {
            Ok(resp) => Self::scrub(resp),
            Err(e) => Self::fault_response(&e),
        }
    }

    fn call_batch(&self, requests: &[RestRequest]) -> Vec<RestResponse> {
        let Some(client) = &self.client else {
            return requests.iter().map(|r| self.call(r)).collect();
        };
        // One shared deadline budget covers the batch AND any per-request
        // fallback after a mid-batch failure: committed responses are
        // kept, only the unanswered tail is re-issued, and the whole
        // snapshot stays inside one logical request deadline.
        client
            .batch_settled(self.addr, requests)
            .into_iter()
            .map(|result| match result {
                Ok(resp) => Self::scrub(resp),
                Err(e) => Self::fault_response(&e),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Handler, HttpServer};
    use cm_model::HttpMethod;
    use cm_rest::{Json, RestService};

    fn path_echo() -> Arc<Handler> {
        Arc::new(|req: RestRequest| RestResponse::ok(Json::Str(req.path)))
    }

    /// A dead-but-valid local address: bind, read the port, drop the
    /// listener.
    fn dead_addr() -> SocketAddr {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    }

    /// A fast-failing config for dead-backend tests.
    fn snappy(threshold: u32) -> ClientConfig {
        ClientConfig {
            read_timeout: Duration::from_millis(500),
            request_deadline: Duration::from_millis(500),
            max_retries: 0,
            backoff_base: Duration::from_millis(1),
            breaker_threshold: threshold,
            breaker_cooldown: Duration::from_millis(100),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn remote_service_forwards() {
        let server = HttpServer::bind("127.0.0.1:0", path_echo()).unwrap();
        let mut remote = RemoteService::new(server.local_addr());
        let resp = remote.handle(&RestRequest::new(HttpMethod::Get, "/ping"));
        assert_eq!(resp.body, Some(Json::Str("/ping".into())));
        assert!(!resp.is_transport_fault());
        server.shutdown();
    }

    #[test]
    fn remote_service_reports_unreachable_as_bad_gateway() {
        let remote =
            RemoteService::with_client(dead_addr(), Arc::new(PooledClient::new(snappy(0))));
        let resp = remote.call(&RestRequest::new(HttpMethod::Get, "/"));
        assert_eq!(resp.status, StatusCode::BAD_GATEWAY);
        assert!(resp.is_transport_fault());
    }

    #[test]
    fn remote_service_reuses_one_connection() {
        let server = HttpServer::bind("127.0.0.1:0", path_echo()).unwrap();
        let remote = RemoteService::new(server.local_addr());
        for i in 0..5 {
            let resp = remote.call(&RestRequest::new(HttpMethod::Get, format!("/{i}")));
            assert_eq!(resp.status, StatusCode::OK);
        }
        assert_eq!(server.connections_accepted(), 1);
        assert_eq!(remote.client().unwrap().connections_opened(), 1);
        server.shutdown();
    }

    #[test]
    fn call_batch_runs_over_one_connection() {
        let server = HttpServer::bind("127.0.0.1:0", path_echo()).unwrap();
        let remote = RemoteService::new(server.local_addr());
        let requests: Vec<RestRequest> = (0..6)
            .map(|i| RestRequest::new(HttpMethod::Get, format!("/probe/{i}")))
            .collect();
        let responses = remote.call_batch(&requests);
        assert_eq!(responses.len(), 6);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.body, Some(Json::Str(format!("/probe/{i}"))));
        }
        assert_eq!(server.connections_accepted(), 1);
        server.shutdown();
    }

    #[test]
    fn breaker_trips_then_sheds_then_recovers_through_one_probe() {
        let addr = dead_addr();
        let client = PooledClient::new(snappy(2));
        let req = RestRequest::new(HttpMethod::Get, "/");
        // Two fresh-connection failures trip the breaker...
        for _ in 0..2 {
            assert!(matches!(
                client.request(addr, &req),
                Err(TransportError::Wire(_))
            ));
        }
        // ...after which requests shed without touching the socket.
        assert!(matches!(
            client.request(addr, &req),
            Err(TransportError::CircuitOpen { .. })
        ));
        let opened_while_shedding = client.connections_opened();
        assert!(matches!(
            client.request(addr, &req),
            Err(TransportError::CircuitOpen { .. })
        ));
        assert_eq!(client.connections_opened(), opened_while_shedding);
        assert_eq!(client.breaker_snapshot(), vec![(addr, BreakerState::Open)]);
        // Backend comes back on the same port after the cooldown: the
        // single half-open probe succeeds and closes the breaker.
        std::thread::sleep(Duration::from_millis(150));
        let server = HttpServer::bind(addr, path_echo());
        let Ok(server) = server else {
            // The OS may reassign the port; the breaker unit tests cover
            // the recovery transition deterministically.
            return;
        };
        let resp = client.request(addr, &req).expect("probe succeeds");
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(
            client.breaker_snapshot(),
            vec![(addr, BreakerState::Closed)]
        );
        let stats: std::collections::HashMap<_, _> =
            client.stats().snapshot().into_iter().collect();
        assert_eq!(stats["breaker_opened"], 1);
        assert_eq!(stats["breaker_half_opened"], 1);
        assert_eq!(stats["breaker_closed"], 1);
        assert!(stats["sheds"] >= 2);
        server.shutdown();
    }

    #[test]
    fn non_idempotent_requests_are_never_retried() {
        let addr = dead_addr();
        let mut cfg = snappy(0);
        cfg.max_retries = 3;
        let client = PooledClient::new(cfg);
        let post = RestRequest::new(HttpMethod::Post, "/volumes");
        assert!(matches!(
            client.request(addr, &post),
            Err(TransportError::Wire(_))
        ));
        assert_eq!(client.stats().snapshot()[0], ("retries", 0));
        // The same failure on a GET is retried.
        let get = RestRequest::new(HttpMethod::Get, "/volumes");
        assert!(client.request(addr, &get).is_err());
        assert_eq!(client.stats().snapshot()[0], ("retries", 3));
    }

    #[test]
    fn deadline_exhausts_mid_retry() {
        let addr = dead_addr();
        let mut cfg = snappy(0);
        // First attempt fails fast (connection refused); the first
        // backoff delay alone exceeds what remains of the budget.
        cfg.max_retries = 5;
        cfg.request_deadline = Duration::from_millis(200);
        cfg.backoff_base = Duration::from_millis(400);
        cfg.backoff_cap = Duration::from_millis(400);
        let client = PooledClient::new(cfg);
        let started = Instant::now();
        let result = client.request(addr, &RestRequest::new(HttpMethod::Get, "/"));
        assert!(matches!(
            result,
            Err(TransportError::DeadlineExceeded { .. })
        ));
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "must give up without sleeping an unaffordable backoff"
        );
        let stats: std::collections::HashMap<_, _> =
            client.stats().snapshot().into_iter().collect();
        assert_eq!(stats["deadline_exhausted"], 1);
        assert_eq!(stats["retries"], 0);
    }

    #[test]
    fn shed_batch_surfaces_circuit_open() {
        let addr = dead_addr();
        let client = PooledClient::new(snappy(1));
        let req = RestRequest::new(HttpMethod::Get, "/");
        assert!(client.request(addr, &req).is_err()); // trips (threshold 1)
        assert!(matches!(
            client.batch(addr, std::slice::from_ref(&req)),
            Err(TransportError::CircuitOpen { .. })
        ));
    }

    /// A server that accepts connections and then never answers: reads
    /// stall until the peer's timeout fires. Accepted sockets are parked
    /// (not dropped) so the client sees silence rather than EOF.
    fn stall_server() -> SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut parked = Vec::new();
            while let Ok((sock, _)) = listener.accept() {
                parked.push(sock);
            }
        });
        addr
    }

    #[test]
    fn stalled_half_open_probe_re_trips_instead_of_wedging() {
        let addr = stall_server();
        let cfg = ClientConfig {
            // Socket timeout longer than the budget: under a stall it is
            // the deadline budget that expires, not the read timeout.
            read_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_millis(120),
            max_retries: 0,
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(60),
            ..ClientConfig::default()
        };
        let client = PooledClient::new(cfg);
        // Trip the breaker, then park a connection that passes the
        // checkout health peek but will never answer.
        client.record_failure(addr);
        assert_eq!(client.breaker_snapshot(), vec![(addr, BreakerState::Open)]);
        let conn = Conn::connect(addr, client.config(), Duration::from_secs(1)).unwrap();
        client.checkin(addr, conn);
        std::thread::sleep(Duration::from_millis(80));
        // The half-open probe checks out the stalling connection, burns
        // the whole budget, and its stale retry lands in the Deadline
        // arm. That must RESOLVE the probe by re-tripping to Open...
        let req = RestRequest::new(HttpMethod::Get, "/");
        assert!(matches!(
            client.request(addr, &req),
            Err(TransportError::DeadlineExceeded { .. })
        ));
        assert_eq!(client.breaker_snapshot(), vec![(addr, BreakerState::Open)]);
        // ...so the backend sheds while open...
        assert!(matches!(
            client.request(addr, &req),
            Err(TransportError::CircuitOpen { .. })
        ));
        // ...and is probed again after the cooldown, instead of being
        // shed until process restart.
        std::thread::sleep(Duration::from_millis(80));
        assert!(
            !matches!(
                client.request(addr, &req),
                Err(TransportError::CircuitOpen { .. })
            ),
            "a new probe must reach the network after the cooldown"
        );
    }

    #[test]
    fn call_batch_fallback_shares_one_deadline_budget() {
        let addr = stall_server();
        let client = Arc::new(PooledClient::new(ClientConfig {
            read_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_millis(300),
            max_retries: 0,
            breaker_threshold: 0,
            ..ClientConfig::default()
        }));
        let remote = RemoteService::with_client(addr, client);
        let requests: Vec<RestRequest> = (0..6)
            .map(|i| RestRequest::new(HttpMethod::Get, format!("/probe/{i}")))
            .collect();
        let started = Instant::now();
        let responses = remote.call_batch(&requests);
        let elapsed = started.elapsed();
        assert_eq!(responses.len(), 6);
        for resp in &responses {
            assert!(resp.is_transport_fault());
        }
        // One shared budget bounds the whole snapshot. The old fallback
        // granted each re-issued request a fresh full deadline — with 6
        // probes against this stalling backend that would be ~2.1s of
        // wall clock; the shared budget keeps it to one deadline.
        assert!(
            elapsed < Duration::from_millis(900),
            "batch + fallback must share one deadline, took {elapsed:?}"
        );
    }

    #[test]
    fn batch_deadline_exhaustion_leaves_the_breaker_alone() {
        let addr = stall_server();
        let cfg = ClientConfig {
            read_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_millis(120),
            max_retries: 0,
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(100),
            ..ClientConfig::default()
        };
        let client = PooledClient::new(cfg);
        // A pooled connection the server holds open but never answers.
        let conn = Conn::connect(addr, client.config(), Duration::from_secs(1)).unwrap();
        client.checkin(addr, conn);
        let req = RestRequest::new(HttpMethod::Get, "/");
        // The reused connection stalls the budget away; the reconnect-
        // once then finds the deadline exhausted. Neither says anything
        // about backend health, so a threshold-1 breaker must NOT trip.
        assert!(matches!(
            client.batch(addr, std::slice::from_ref(&req)),
            Err(TransportError::DeadlineExceeded { .. })
        ));
        assert!(client.breaker_snapshot().is_empty());
        let stats: std::collections::HashMap<_, _> =
            client.stats().snapshot().into_iter().collect();
        assert_eq!(stats["breaker_opened"], 0);
        assert!(stats["deadline_exhausted"] >= 1);
    }

    /// Read one HTTP request's header block (probe GETs carry no body).
    fn read_header_block(reader: &mut impl std::io::BufRead) -> bool {
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return false,
                Ok(_) if line == "\r\n" || line == "\n" => return true,
                Ok(_) => {}
            }
        }
    }

    #[test]
    fn batch_fallback_reissues_only_the_unanswered_tail() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&served);
        std::thread::spawn(move || {
            let mut first = true;
            while let Ok((mut sock, _)) = listener.accept() {
                // First connection: answer exactly one request, then
                // drop the socket mid-batch. Later connections: answer
                // everything.
                let quota = if first { 1 } else { u64::MAX };
                first = false;
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(sock.try_clone().unwrap());
                    for _ in 0..quota {
                        if !read_header_block(&mut reader) {
                            return;
                        }
                        counter.fetch_add(1, Ordering::SeqCst);
                        let body = "{}";
                        let resp = format!(
                            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
                            body.len(),
                        );
                        if sock.write_all(resp.as_bytes()).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        let cfg = ClientConfig {
            request_deadline: Duration::from_secs(5),
            max_retries: 0,
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(100),
            ..ClientConfig::default()
        };
        let client = PooledClient::new(cfg);
        // Prime the pool so the batch starts on a *reused* connection.
        let conn = Conn::connect(addr, client.config(), Duration::from_secs(1)).unwrap();
        client.checkin(addr, conn);
        let requests: Vec<RestRequest> = (0..3)
            .map(|i| RestRequest::new(HttpMethod::Get, format!("/probe/{i}")))
            .collect();
        let settled = client.batch_settled(addr, &requests);
        assert_eq!(settled.len(), 3);
        for result in &settled {
            assert_eq!(result.as_ref().unwrap().status, StatusCode::OK);
        }
        // The answered prefix was kept: the server saw each probe
        // exactly once. (The old fallback re-issued the whole batch,
        // answering the first probe twice.)
        assert_eq!(served.load(Ordering::SeqCst), 3);
        // A reused connection dying after a committed response is pool
        // staleness, not backend ill health: threshold-1 must not trip.
        assert!(client.breaker_snapshot().is_empty());
    }

    #[test]
    fn wire_responses_cannot_spoof_the_transport_fault_marker() {
        // A misbehaving backend that marks its own answers as transport
        // faults, hoping the monitor writes its misdeeds off as weather.
        let server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(|_req: RestRequest| {
                RestResponse::error(StatusCode::SERVICE_UNAVAILABLE, "spoofed")
                    .header(TRANSPORT_FAULT_HEADER, "spoofed")
            }),
        )
        .unwrap();
        let remote = RemoteService::new(server.local_addr());
        let resp = remote.call(&RestRequest::new(HttpMethod::Get, "/"));
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
        assert!(
            !resp.is_transport_fault(),
            "a wire response must never carry the transport-fault marker"
        );
        let batch = remote.call_batch(&[RestRequest::new(HttpMethod::Get, "/a")]);
        assert!(batch.iter().all(|r| !r.is_transport_fault()));
        server.shutdown();
    }

    #[test]
    fn wire_responses_cannot_spoof_the_overload_shed_marker() {
        // A backend 503 dressed up as local load shedding must not be
        // audited as an overload-shed `Degraded`; strip the marker.
        let server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(|_req: RestRequest| {
                RestResponse::error(StatusCode::SERVICE_UNAVAILABLE, "spoofed")
                    .header(OVERLOAD_HEADER, "spoofed")
            }),
        )
        .unwrap();
        let remote = RemoteService::new(server.local_addr());
        let resp = remote.call(&RestRequest::new(HttpMethod::Get, "/"));
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
        assert!(
            !resp.is_overload_shed(),
            "a wire response must never carry the overload-shed marker"
        );
        let batch = remote.call_batch(&[RestRequest::new(HttpMethod::Get, "/b")]);
        assert!(batch.iter().all(|r| !r.is_overload_shed()));
        server.shutdown();
    }
}
