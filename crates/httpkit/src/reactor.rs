//! Readiness-driven reactor transport: a non-blocking epoll/poll event
//! loop serving many connections per thread.
//!
//! The blocking worker-pool server costs one thread per *in-flight
//! connection* and a steady tax of `setsockopt` timeout syscalls per
//! request. This module replaces that with per-core **reactor shards**:
//! a dedicated acceptor thread round-robins accepted sockets to `N`
//! single-threaded shards, and each shard drives its connections through
//! a readiness loop — `epoll_wait` (Linux, via thin FFI declared here; no
//! external crates) or a portable `poll(2)` fallback — so
//! accept→parse→dispatch→respond never crosses a thread.
//!
//! Per connection the shard keeps a byte-accumulating read buffer fed to
//! [`crate::wire::try_parse_request`] (every complete pipelined request
//! already buffered is parsed and answered before the socket is
//! re-armed), reused head/body response buffers flushed with **vectored
//! writes** (`writev`), and a logical deadline on the shard's
//! [`crate::timer::TimerWheel`] — idle timeout, slow-read guard,
//! long-poll parking and close-drain all become wheel entries instead of
//! per-socket `SO_RCVTIMEO` syscalls.
//!
//! Long-poll handlers (the `/-/events/stream` admin route) cooperate via
//! [`crate::server::try_request_park`]: instead of blocking the shard
//! they return immediately and the connection is *parked* on the wheel,
//! retried at a short cadence until data arrives or its wait budget
//! expires. A parked connection costs a wheel entry, not a thread.

use crate::server::{
    with_park_scope, Handler, ReactorBackend, ServerConfig, ShedCause, ShedDecision,
};
use crate::timer::{TimerWheel, DEFAULT_SLOTS, DEFAULT_TICK};
use crate::wire::{serialize_response_parts, try_parse_request, wants_close, ConnectionMode};
use cm_model::HttpMethod;
use cm_obs::{Lane, OverloadStats, LANES};
use cm_rest::{RestRequest, RestResponse, StatusCode};
use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Thin FFI over the handful of syscalls the reactor needs. Declared
/// directly (the workspace builds offline with no external crates); the
/// epoll family is Linux-only, everything else is portable POSIX.
mod sys {
    use std::os::raw::{c_int, c_void};

    #[cfg(target_os = "linux")]
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_ADD: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_DEL: c_int = 2;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_MOD: c_int = 3;
    #[cfg(target_os = "linux")]
    pub const EPOLLIN: u32 = 0x001;
    #[cfg(target_os = "linux")]
    pub const EPOLLOUT: u32 = 0x004;
    #[cfg(target_os = "linux")]
    pub const EPOLLERR: u32 = 0x008;
    #[cfg(target_os = "linux")]
    pub const EPOLLHUP: u32 = 0x010;
    #[cfg(target_os = "linux")]
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    pub const F_SETFL: c_int = 4;
    pub const F_SETFD: c_int = 2;
    pub const FD_CLOEXEC: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x0004;

    /// `struct epoll_event`; packed on x86 per the kernel ABI.
    #[cfg(target_os = "linux")]
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// `struct pollfd`.
    #[derive(Clone, Copy)]
    #[repr(C)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    /// `struct iovec` for `writev`.
    #[repr(C)]
    pub struct IoVec {
        pub base: *const c_void,
        pub len: usize,
    }

    #[cfg(target_os = "linux")]
    pub type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub type NFds = std::os::raw::c_uint;

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    }
}

/// One readiness event, normalised across backends.
#[derive(Debug, Clone, Copy)]
struct Event {
    token: u64,
    readable: bool,
    writable: bool,
    /// Error or hang-up: handled through the read path (which observes
    /// EOF / the socket error) rather than as a separate close.
    broken: bool,
}

/// The readiness poller: epoll on Linux, `poll(2)` everywhere else (or
/// when forced by [`ReactorBackend::Poll`] so the fallback stays tested
/// on Linux too).
enum Poller {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: i32,
        buf: Vec<sys::EpollEvent>,
    },
    Poll {
        entries: Vec<sys::PollFd>,
        tokens: Vec<u64>,
    },
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Poller::Epoll { epfd, .. } = self {
            unsafe { sys::close(*epfd) };
        }
    }
}

impl Poller {
    fn new(backend: ReactorBackend) -> std::io::Result<Poller> {
        match backend {
            ReactorBackend::Poll => Ok(Poller::Poll {
                entries: Vec::new(),
                tokens: Vec::new(),
            }),
            #[cfg(target_os = "linux")]
            ReactorBackend::Auto | ReactorBackend::Epoll => {
                let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(std::io::Error::last_os_error());
                }
                Ok(Poller::Epoll {
                    epfd,
                    buf: vec![sys::EpollEvent { events: 0, data: 0 }; 512],
                })
            }
            #[cfg(not(target_os = "linux"))]
            ReactorBackend::Auto => Ok(Poller::Poll {
                entries: Vec::new(),
                tokens: Vec::new(),
            }),
            #[cfg(not(target_os = "linux"))]
            ReactorBackend::Epoll => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "epoll backend requires Linux",
            )),
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll_mask(writable: bool) -> u32 {
        let mut mask = sys::EPOLLIN | sys::EPOLLRDHUP;
        if writable {
            mask |= sys::EPOLLOUT;
        }
        mask
    }

    fn poll_mask(writable: bool) -> i16 {
        if writable {
            sys::POLLIN | sys::POLLOUT
        } else {
            sys::POLLIN
        }
    }

    fn register(&mut self, fd: i32, token: u64, writable: bool) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, .. } => {
                let mut ev = sys::EpollEvent {
                    events: Self::epoll_mask(writable),
                    data: token,
                };
                if unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) } < 0 {
                    return Err(std::io::Error::last_os_error());
                }
                Ok(())
            }
            Poller::Poll { entries, tokens } => {
                entries.push(sys::PollFd {
                    fd,
                    events: Self::poll_mask(writable),
                    revents: 0,
                });
                tokens.push(token);
                Ok(())
            }
        }
    }

    fn reregister(&mut self, fd: i32, token: u64, writable: bool) {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, .. } => {
                let mut ev = sys::EpollEvent {
                    events: Self::epoll_mask(writable),
                    data: token,
                };
                unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, &mut ev) };
            }
            Poller::Poll { entries, tokens } => {
                if let Some(i) = tokens.iter().position(|t| *t == token) {
                    entries[i].events = Self::poll_mask(writable);
                }
            }
        }
    }

    fn deregister(&mut self, fd: i32, token: u64) {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, .. } => {
                let mut ev = sys::EpollEvent { events: 0, data: 0 };
                unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
            }
            Poller::Poll { entries, tokens } => {
                if let Some(i) = tokens.iter().position(|t| *t == token) {
                    entries.swap_remove(i);
                    tokens.swap_remove(i);
                }
            }
        }
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> std::io::Result<()> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, buf } => {
                let n = unsafe {
                    sys::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                if n < 0 {
                    let e = std::io::Error::last_os_error();
                    if e.kind() == std::io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                for ev in buf.iter().take(n as usize) {
                    // Copy out of the (packed) ABI struct before use.
                    let raw: sys::EpollEvent = *ev;
                    events.push(Event {
                        token: raw.data,
                        readable: raw.events & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                        writable: raw.events & sys::EPOLLOUT != 0,
                        broken: raw.events & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Poller::Poll { entries, tokens } => {
                let n = unsafe {
                    sys::poll(entries.as_mut_ptr(), entries.len() as sys::NFds, timeout_ms)
                };
                if n < 0 {
                    let e = std::io::Error::last_os_error();
                    if e.kind() == std::io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                for (entry, token) in entries.iter_mut().zip(tokens.iter()) {
                    if entry.revents != 0 {
                        events.push(Event {
                            token: *token,
                            readable: entry.revents & sys::POLLIN != 0,
                            writable: entry.revents & sys::POLLOUT != 0,
                            broken: entry.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                        });
                        entry.revents = 0;
                    }
                }
                Ok(())
            }
        }
    }
}

/// A self-pipe used to wake a shard out of its poll wait (new connections
/// in the inbox, shutdown). Both ends are non-blocking and close-on-exec.
#[derive(Debug)]
struct WakePipe {
    read_fd: i32,
    write_fd: i32,
}

impl WakePipe {
    fn new() -> std::io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(std::io::Error::last_os_error());
        }
        for fd in fds {
            unsafe {
                sys::fcntl(fd, sys::F_SETFL, sys::O_NONBLOCK);
                sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC);
            }
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

/// The write end of a shard's wake pipe, shared by the acceptor and the
/// shutdown path.
#[derive(Debug, Clone)]
pub(crate) struct Waker {
    pipe: Arc<WakePipe>,
}

impl Waker {
    pub(crate) fn wake(&self) {
        let byte = 1u8;
        // A full pipe already guarantees a pending wake-up; EAGAIN is fine.
        unsafe { sys::write(self.pipe.write_fd, std::ptr::addr_of!(byte).cast(), 1) };
    }
}

/// Vectored write of `bufs` to `fd`.
fn writev_fd(fd: i32, bufs: &[&[u8]]) -> std::io::Result<usize> {
    let iovecs: Vec<sys::IoVec> = bufs
        .iter()
        .map(|b| sys::IoVec {
            base: b.as_ptr().cast(),
            len: b.len(),
        })
        .collect();
    let n = unsafe { sys::writev(fd, iovecs.as_ptr(), iovecs.len() as i32) };
    if n < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Which logical deadline a connection's wheel entry represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    /// Waiting for the next request on an idle keep-alive connection.
    Idle,
    /// A partial request is buffered; the slow-client guard.
    Read,
    /// Parked long-poll: retry the handler at this tick.
    Park,
    /// Write side shut down; draining until the peer closes.
    Drain,
}

/// Lifecycle state of one connection.
enum ConnState {
    /// Reading/answering requests.
    Open,
    /// A long-poll handler asked to park: retry `request` until data
    /// arrives or `deadline` passes, then answer whatever the handler
    /// returns.
    Parked {
        request: Box<RestRequest>,
        deadline: Instant,
        close: bool,
    },
    /// Response(s) written and write side shut down; discarding reads
    /// until EOF so the peer never sees a reset before the final bytes.
    Draining,
}

/// One unit of parsed-but-not-yet-dispatched work on a connection.
/// Requests are answered strictly in arrival order per connection, so
/// the lane queues schedule *connections* and each connection drains
/// its own FIFO — priority reorders between connections, never within
/// one (pipelined responses must not interleave on the wire).
enum PendingWork {
    /// A parsed request awaiting dispatch, stamped at admission.
    Request {
        request: Box<RestRequest>,
        admitted: Instant,
        lane: Lane,
    },
    /// A response decided at parse time (enqueue-time shed, malformed
    /// framing) that must still ride the FIFO to keep wire order.
    Answer {
        response: Box<RestResponse>,
        lane: Lane,
        close_hint: bool,
    },
}

impl PendingWork {
    fn lane(&self) -> Lane {
        match self {
            PendingWork::Request { lane, .. } | PendingWork::Answer { lane, .. } => *lane,
        }
    }
}

/// Classify a request into its priority lane.
fn lane_for(request: &RestRequest) -> Lane {
    if request.path.starts_with(crate::admin::ADMIN_PREFIX) {
        Lane::Admin
    } else if request.method == HttpMethod::Get {
        Lane::Read
    } else {
        Lane::Mutation
    }
}

/// One connection owned by a shard.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Raw bytes not yet parsed into requests.
    read_buf: Vec<u8>,
    /// Parsed work awaiting dispatch, in arrival order.
    pending: VecDeque<PendingWork>,
    /// Token currently sitting in a shard lane queue.
    queued: bool,
    /// When the first byte of the currently-buffered partial request
    /// arrived: the slow-read guard charges from this *fixed* origin,
    /// so a client trickling header bytes cannot extend its deadline —
    /// even while the run queue is saturated.
    read_started: Option<Instant>,
    /// Framing already failed on this connection: its 400 rides the
    /// FIFO and any further input is junk to be discarded, never
    /// re-parsed into duplicate errors.
    input_dead: bool,
    /// Response heads of the pending write batch (reused scratch).
    head_buf: Vec<u8>,
    /// Response bodies of the pending write batch (reused scratch).
    body_buf: String,
    /// Per-response (head_len, body_len) in concatenation order.
    segs: Vec<(u32, u32)>,
    /// Total bytes in the pending batch and how many are on the wire.
    out_total: usize,
    written: usize,
    served: usize,
    close_after_write: bool,
    peer_eof: bool,
    registered_writable: bool,
    timer_kind: TimerKind,
    timer_gen: u64,
    timer_armed: bool,
    deadline: Instant,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant, idle: Duration) -> Conn {
        Conn {
            stream,
            state: ConnState::Open,
            read_buf: Vec::new(),
            pending: VecDeque::new(),
            queued: false,
            read_started: None,
            input_dead: false,
            head_buf: Vec::new(),
            body_buf: String::new(),
            segs: Vec::new(),
            out_total: 0,
            written: 0,
            served: 0,
            close_after_write: false,
            peer_eof: false,
            registered_writable: false,
            timer_kind: TimerKind::Idle,
            timer_gen: 0,
            timer_armed: false,
            deadline: now + idle,
        }
    }

    fn pending_out(&self) -> usize {
        self.out_total - self.written
    }

    /// Append one serialised response to the write batch.
    fn enqueue(&mut self, response: &RestResponse, mode: ConnectionMode) {
        let h0 = self.head_buf.len();
        let b0 = self.body_buf.len();
        serialize_response_parts(&mut self.head_buf, &mut self.body_buf, response, mode);
        let hl = self.head_buf.len() - h0;
        let bl = self.body_buf.len() - b0;
        self.segs.push((hl as u32, bl as u32));
        self.out_total += hl + bl;
    }

    /// Slices of the unwritten tail of the batch, in wire order,
    /// bounded to keep one `writev` under IOV_MAX.
    fn collect_iovecs<'a>(&'a self, out: &mut Vec<&'a [u8]>) {
        const MAX_IOVECS: usize = 64;
        let mut skip = self.written;
        let (mut h, mut b) = (0usize, 0usize);
        for &(hl, bl) in &self.segs {
            let (hl, bl) = (hl as usize, bl as usize);
            for (start, len, body) in [(h, hl, false), (b, bl, true)] {
                if len == 0 {
                    continue;
                }
                if skip >= len {
                    skip -= len;
                } else {
                    let slice = if body {
                        &self.body_buf.as_bytes()[start + skip..start + len]
                    } else {
                        &self.head_buf[start + skip..start + len]
                    };
                    out.push(slice);
                    skip = 0;
                    if out.len() >= MAX_IOVECS {
                        return;
                    }
                }
            }
            h += hl;
            b += bl;
        }
    }
}

/// Cadence at which a parked long-poll re-checks its stream for data.
const PARK_POLL: Duration = Duration::from_millis(20);
/// How long a closed connection drains before the socket is dropped.
const DRAIN_MAX: Duration = Duration::from_secs(1);
/// Per-event read cap (bytes) so one firehose connection cannot starve
/// its shard; level-triggered readiness re-reports the remainder.
const READ_CHUNK: usize = 16 * 1024;
const MAX_READS_PER_EVENT: usize = 16;

/// The wake pipe's poller token; connection tokens start above it.
const WAKE_TOKEN: u64 = 0;

/// Handle to a running reactor: the acceptor, the shard threads, and
/// their wakers.
pub(crate) struct ReactorEngine {
    accept_thread: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
    wakers: Vec<Waker>,
    shard_count: usize,
}

impl std::fmt::Debug for ReactorEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorEngine")
            .field("shards", &self.shard_count)
            .finish()
    }
}

impl ReactorEngine {
    /// Number of reactor shards (the server's thread budget besides the
    /// acceptor).
    pub(crate) fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Spawn the acceptor and shard threads. Poller and wake-pipe
    /// creation happens here so resource errors surface at bind time.
    pub(crate) fn spawn(
        listener: TcpListener,
        handler: Arc<Handler>,
        config: &ServerConfig,
        stop: Arc<AtomicBool>,
        connections: Arc<AtomicU64>,
        overload: Arc<OverloadStats>,
    ) -> std::io::Result<ReactorEngine> {
        let shard_count = effective_shards(config);
        let mut shards = Vec::with_capacity(shard_count);
        let mut wakers = Vec::with_capacity(shard_count);
        let mut inboxes = Vec::with_capacity(shard_count);

        for _ in 0..shard_count {
            let poller = Poller::new(config.reactor_backend)?;
            let pipe = Arc::new(WakePipe::new()?);
            let waker = Waker {
                pipe: Arc::clone(&pipe),
            };
            let inbox: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
            wakers.push(waker);
            inboxes.push(Arc::clone(&inbox));
            let handler = Arc::clone(&handler);
            let stop = Arc::clone(&stop);
            let cfg = config.clone();
            let stats = Arc::clone(&overload);
            shards.push(std::thread::spawn(move || {
                Shard::new(poller, pipe, inbox, handler, cfg, stop, stats).run();
            }));
        }

        let stop_accept = Arc::clone(&stop);
        let accept_wakers: Vec<Waker> = wakers.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut next = 0usize;
            for stream in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                connections.fetch_add(1, Ordering::Relaxed);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                inboxes[next].lock().unwrap().push(stream);
                accept_wakers[next].wake();
                next = (next + 1) % inboxes.len();
            }
        });

        Ok(ReactorEngine {
            accept_thread: Some(accept_thread),
            shards,
            wakers,
            shard_count,
        })
    }

    /// Join everything; the caller has already set the stop flag and
    /// woken the accept loop with a dummy connection.
    pub(crate) fn join(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for waker in &self.wakers {
            waker.wake();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
    }
}

/// Resolve the configured shard count (0 = one per available core).
pub(crate) fn effective_shards(config: &ServerConfig) -> usize {
    if config.shards > 0 {
        config.shards
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(8)
    }
}

/// One reactor shard: poller, timer wheel, and the connections assigned
/// to it.
struct Shard {
    poller: Poller,
    pipe: Arc<WakePipe>,
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    handler: Arc<Handler>,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    next_token: u64,
    rscratch: Vec<u8>,
    /// Connection tokens ready to run, one queue per priority lane
    /// (admin drains first, reads shed first). A token appears at most
    /// once across all lanes (`Conn::queued`).
    lanes: [VecDeque<u64>; LANES],
    /// Requests currently queued across this shard's connections — the
    /// bound the enqueue-time shed checks.
    pending_total: usize,
    /// CoDel state: when queue delay first rose above target, `None`
    /// while below (bursts reset it).
    codel_above_since: Option<Instant>,
    /// Shared per-lane admission/shed accounting (exposed via
    /// `HttpServer::overload_stats`).
    stats: Arc<OverloadStats>,
}

impl Shard {
    fn new(
        poller: Poller,
        pipe: Arc<WakePipe>,
        inbox: Arc<Mutex<Vec<TcpStream>>>,
        handler: Arc<Handler>,
        cfg: ServerConfig,
        stop: Arc<AtomicBool>,
        stats: Arc<OverloadStats>,
    ) -> Shard {
        Shard {
            poller,
            pipe,
            inbox,
            handler,
            cfg,
            stop,
            conns: HashMap::new(),
            wheel: TimerWheel::new(DEFAULT_SLOTS, DEFAULT_TICK, Instant::now()),
            next_token: WAKE_TOKEN + 1,
            rscratch: vec![0u8; READ_CHUNK],
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            pending_total: 0,
            codel_above_since: None,
            stats,
        }
    }

    fn run(mut self) {
        if self
            .poller
            .register(self.pipe.read_fd, WAKE_TOKEN, false)
            .is_err()
        {
            return;
        }
        let mut events: Vec<Event> = Vec::with_capacity(512);
        let mut fired: Vec<(u64, u64)> = Vec::new();
        let tick_ms = i32::try_from(self.wheel.tick().as_millis()).unwrap_or(10);
        loop {
            if self.poller.wait(&mut events, tick_ms).is_err() {
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            for ev in &events {
                if ev.token == WAKE_TOKEN {
                    self.drain_wake();
                    self.adopt_new_connections();
                } else {
                    self.on_event(*ev);
                }
            }
            fired.clear();
            self.wheel.expire_into(Instant::now(), &mut fired);
            for &(token, gen) in &fired {
                self.on_timer(token, gen);
            }
            // Dispatch everything parsed this iteration, admin lane
            // first. With overload control off this runs in the same
            // loop pass the bytes arrived in — pure FIFO plumbing.
            self.drain_run_queue();
        }
        // Shutdown: best-effort flush of pending responses, then drop
        // (close) every socket.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                if conn.pending_out() > 0 {
                    let _ = flush_writes(conn);
                }
            }
            self.close(token);
        }
    }

    fn drain_wake(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.pipe.read_fd, sink.as_mut_ptr().cast(), sink.len()) };
            if n <= 0 || (n as usize) < sink.len() {
                break;
            }
        }
    }

    fn adopt_new_connections(&mut self) {
        let streams: Vec<TcpStream> = std::mem::take(&mut *self.inbox.lock().unwrap());
        let now = Instant::now();
        for stream in streams {
            let token = self.next_token;
            self.next_token += 1;
            let fd = stream.as_raw_fd();
            if self.poller.register(fd, token, false).is_err() {
                continue; // conn dropped (closed)
            }
            let mut conn = Conn::new(stream, now, self.cfg.idle_timeout);
            arm_timer(
                &mut self.wheel,
                &mut conn,
                token,
                TimerKind::Idle,
                now + self.cfg.idle_timeout,
            );
            self.conns.insert(token, conn);
        }
    }

    fn on_event(&mut self, ev: Event) {
        if !self.conns.contains_key(&ev.token) {
            return;
        }
        if ev.writable {
            let Some(conn) = self.conns.get_mut(&ev.token) else {
                return;
            };
            match flush_writes(conn) {
                Ok(_) => {}
                Err(_) => {
                    self.close(ev.token);
                    return;
                }
            }
        }
        if (ev.readable || ev.broken) && !self.read_ready(ev.token) {
            return;
        }
        self.after_io(ev.token);
    }

    /// Pull bytes off the socket. Returns false when the connection was
    /// closed.
    fn read_ready(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        for _ in 0..MAX_READS_PER_EVENT {
            match conn.stream.read(&mut self.rscratch) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    if matches!(conn.state, ConnState::Draining) {
                        continue; // discard
                    }
                    conn.read_buf.extend_from_slice(&self.rscratch[..n]);
                    if n < self.rscratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return false;
                }
            }
        }
        true
    }

    /// After any I/O: parse new input into the run queue, schedule the
    /// connection for dispatch, then flush / retire / re-arm.
    fn after_io(&mut self, token: u64) {
        self.process_input(token);
        self.schedule_conn(token);
        self.after_work(token);
    }

    /// Put `token` into its priority lane if it has runnable work and
    /// is not already scheduled. The lane is the *head* request's lane:
    /// a connection's FIFO never reorders, priority only decides which
    /// connection drains next.
    fn schedule_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.queued || conn.close_after_write || !matches!(conn.state, ConnState::Open) {
            return;
        }
        let Some(work) = conn.pending.front() else {
            return;
        };
        let lane = work.lane();
        conn.queued = true;
        self.lanes[lane.index()].push_back(token);
    }

    /// Flush, retire finished connections, update poller interest and
    /// timers — the post-dispatch half of the I/O path.
    fn after_work(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if flush_writes(conn).is_err() {
            self.close(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.peer_eof && matches!(conn.state, ConnState::Draining) {
            // The peer acknowledged our half-close; done.
            self.close(token);
            return;
        }
        // Finished writing a closing batch: half-close and drain.
        if conn.close_after_write
            && conn.pending_out() == 0
            && !matches!(conn.state, ConnState::Draining)
        {
            self.start_drain(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.peer_eof
            && conn.pending_out() == 0
            && conn.pending.is_empty()
            && matches!(conn.state, ConnState::Open)
            && !conn.close_after_write
        {
            // Peer finished sending, every buffered request is answered
            // and nothing is pending: the connection is done.
            self.close(token);
            return;
        }
        self.update_interest_and_timer(token);
    }

    fn update_interest_and_timer(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want_write = conn.pending_out() > 0;
        if want_write != conn.registered_writable {
            conn.registered_writable = want_write;
            self.poller
                .reregister(conn.stream.as_raw_fd(), token, want_write);
        }
        if matches!(conn.state, ConnState::Open) {
            let now = Instant::now();
            if conn.read_buf.is_empty() {
                conn.read_started = None;
                arm_timer(
                    &mut self.wheel,
                    conn,
                    token,
                    TimerKind::Idle,
                    now + self.cfg.idle_timeout,
                );
            } else {
                // Partial request buffered: the slow-client guard. The
                // deadline is charged from the *first byte* of this
                // request (fixed origin) — trickling more header bytes
                // must not extend it, or a slow-loris client holds the
                // connection open indefinitely.
                let origin = *conn.read_started.get_or_insert(now);
                arm_timer(
                    &mut self.wheel,
                    conn,
                    token,
                    TimerKind::Read,
                    origin + self.cfg.read_timeout,
                );
            }
        }
    }

    /// Parse every complete request in the read buffer into the run
    /// queue (admission-stamped) before the socket is re-armed —
    /// request pipelining. Dispatch happens in [`Shard::run_conn`].
    fn process_input(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !matches!(conn.state, ConnState::Open) {
            return;
        }
        if conn.input_dead {
            // Bytes after a framing error are junk; never re-parse them
            // into duplicate 400s.
            conn.read_buf.clear();
            return;
        }
        let now = Instant::now();
        let mut consumed = 0usize;
        loop {
            if conn.close_after_write {
                break;
            }
            match try_parse_request(&conn.read_buf[consumed..]) {
                Ok(Some((request, used))) => {
                    consumed += used;
                    let lane = lane_for(&request);
                    let limit = match lane {
                        Lane::Admin => usize::MAX, // admin is never shed
                        Lane::Mutation => self.cfg.overload.queue_limit.saturating_mul(2),
                        Lane::Read => self.cfg.overload.queue_limit,
                    };
                    if self.cfg.overload.enabled && self.pending_total >= limit.max(1) {
                        // Enqueue-time shed: answer a marked 503 now,
                        // but ride the FIFO so pipelined responses keep
                        // wire order.
                        self.stats.note_shed(lane);
                        if let Some(observer) = &self.cfg.shed_observer {
                            observer.notify(
                                &request,
                                &ShedDecision {
                                    lane,
                                    queue_wait: Duration::ZERO,
                                    budget: self.cfg.overload.deadline,
                                    cause: ShedCause::QueueFull,
                                },
                            );
                        }
                        let response = RestResponse::overload_shed(format!(
                            "overload: shard run queue full ({} queued)",
                            self.pending_total
                        ));
                        conn.pending.push_back(PendingWork::Answer {
                            response: Box::new(response),
                            lane,
                            close_hint: wants_close(&request.headers),
                        });
                    } else {
                        conn.pending.push_back(PendingWork::Request {
                            request: Box::new(request),
                            admitted: now,
                            lane,
                        });
                        self.pending_total += 1;
                        self.stats.adjust_depth(lane, 1);
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Malformed framing / oversized declaration: a 400
                    // that closes, queued behind any earlier requests —
                    // their responses still flush first.
                    let resp = RestResponse::error(StatusCode::BAD_REQUEST, e.to_string());
                    conn.pending.push_back(PendingWork::Answer {
                        response: Box::new(resp),
                        lane: Lane::Read,
                        close_hint: true,
                    });
                    conn.input_dead = true;
                    break;
                }
            }
        }
        if consumed > 0 {
            conn.read_buf.drain(..consumed);
            // Whatever remains is the start of the *next* request: its
            // slow-read clock starts now.
            conn.read_started = (!conn.read_buf.is_empty()).then_some(now);
        }
        if conn.input_dead {
            conn.read_buf.clear();
        }
    }

    /// Pop and run every scheduled connection, admin lane first.
    fn drain_run_queue(&mut self) {
        while let Some(token) = self.pop_lane() {
            self.run_conn(token);
        }
    }

    /// The next scheduled connection, in lane-priority order.
    fn pop_lane(&mut self) -> Option<u64> {
        self.lanes.iter_mut().find_map(VecDeque::pop_front)
    }

    /// Admission check at dispatch time. `None` admits; `Some` sheds.
    fn should_shed(&mut self, lane: Lane, wait: Duration, now: Instant) -> Option<ShedCause> {
        if !self.cfg.overload.enabled || lane == Lane::Admin {
            return None;
        }
        let overload = &self.cfg.overload;
        if wait >= overload.deadline {
            // The queue wait consumed the whole budget: serving this
            // request now would produce a late, worthless answer.
            return Some(ShedCause::BudgetExhausted);
        }
        if wait < overload.codel_target {
            self.codel_above_since = None;
            return None;
        }
        // Queue delay above target: a burst until it has stood for a
        // whole interval, a standing queue after — drain it by
        // shedding reads (mutations outrank them and keep flowing).
        match self.codel_above_since {
            None => {
                self.codel_above_since = Some(now);
                None
            }
            Some(since)
                if now.duration_since(since) >= overload.codel_interval && lane == Lane::Read =>
            {
                Some(ShedCause::StandingQueue)
            }
            Some(_) => None,
        }
    }

    /// Drain one scheduled connection's FIFO: shed or dispatch each
    /// queued request in arrival order, then flush / retire / re-arm.
    /// Stops early when the connection parks (long-poll) or queues a
    /// closing response; remaining work is rescheduled when the park
    /// delivers.
    fn run_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.queued = false;
        } else {
            return; // closed while scheduled
        }
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.close_after_write || !matches!(conn.state, ConnState::Open) {
                break;
            }
            let Some(work) = conn.pending.pop_front() else {
                break;
            };
            match work {
                PendingWork::Answer {
                    response,
                    lane: _,
                    close_hint,
                } => {
                    conn.served += 1;
                    let close = close_hint
                        || !self.cfg.keep_alive
                        || conn.served >= self.cfg.max_requests_per_conn
                        || self.stop.load(Ordering::SeqCst);
                    self.finish_response(token, &response, close);
                }
                PendingWork::Request {
                    request,
                    admitted,
                    lane,
                } => {
                    self.pending_total -= 1;
                    self.stats.adjust_depth(lane, -1);
                    let now = Instant::now();
                    let wait = now.duration_since(admitted);
                    if let Some(cause) = self.should_shed(lane, wait, now) {
                        self.stats.note_shed(lane);
                        if let Some(observer) = &self.cfg.shed_observer {
                            observer.notify(
                                &request,
                                &ShedDecision {
                                    lane,
                                    queue_wait: wait,
                                    budget: self.cfg.overload.deadline,
                                    cause,
                                },
                            );
                        }
                        let response = RestResponse::overload_shed(format!(
                            "overload: queue wait {}ms against a {}ms budget ({})",
                            wait.as_millis(),
                            self.cfg.overload.deadline.as_millis(),
                            cause.label(),
                        ));
                        let Some(conn) = self.conns.get_mut(&token) else {
                            return;
                        };
                        conn.served += 1;
                        let close = wants_close(&request.headers)
                            || !self.cfg.keep_alive
                            || conn.served >= self.cfg.max_requests_per_conn
                            || self.stop.load(Ordering::SeqCst);
                        self.finish_response(token, &response, close);
                    } else {
                        self.stats.note_admitted(lane, wait);
                        self.dispatch_request(token, *request);
                    }
                }
            }
        }
        self.after_work(token);
    }

    fn dispatch_request(&mut self, token: u64, request: RestRequest) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.served += 1;
        let client_close = wants_close(&request.headers);
        let close = !self.cfg.keep_alive
            || client_close
            || conn.served >= self.cfg.max_requests_per_conn
            || self.stop.load(Ordering::SeqCst);
        // Only admin-space requests may park (the long-poll stream); for
        // them the request is retained so the handler can be re-invoked
        // from the timer wheel. The hot path clones nothing.
        let parkable = request.path.starts_with(crate::admin::ADMIN_PREFIX);
        if parkable {
            let retained = request.clone();
            let (response, park) = with_park_scope(|| (self.handler)(request));
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if let Some(wait_ms) = park {
                let now = Instant::now();
                let deadline = now + Duration::from_millis(wait_ms);
                conn.state = ConnState::Parked {
                    request: Box::new(retained),
                    deadline,
                    close,
                };
                let next = deadline.min(now + PARK_POLL);
                arm_timer(&mut self.wheel, conn, token, TimerKind::Park, next);
                return;
            }
            self.finish_response(token, &response, close);
        } else {
            let response = (self.handler)(request);
            self.finish_response(token, &response, close);
        }
    }

    fn finish_response(&mut self, token: u64, response: &RestResponse, close: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.enqueue(
            response,
            if close {
                ConnectionMode::Close
            } else {
                ConnectionMode::KeepAlive
            },
        );
        if close {
            conn.close_after_write = true;
        }
    }

    fn on_timer(&mut self, token: u64, gen: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !conn.timer_armed || gen != conn.timer_gen {
            return; // stale entry from an earlier schedule
        }
        let now = Instant::now();
        if now < conn.deadline {
            // The logical deadline moved later since this entry was
            // queued; keep riding the wheel.
            self.wheel.schedule(token, gen, conn.deadline);
            return;
        }
        conn.timer_armed = false;
        match conn.timer_kind {
            TimerKind::Idle => {
                // Between requests and the peer went quiet: close.
                self.start_drain(token);
            }
            TimerKind::Read => {
                // Stalled mid-request: answer 400 and close, matching
                // the blocking server's slow-client guard. The 400
                // rides the run-queue FIFO so responses to requests
                // admitted earlier on this connection still go first.
                let resp = RestResponse::error(StatusCode::BAD_REQUEST, "request read timed out");
                conn.pending.push_back(PendingWork::Answer {
                    response: Box::new(resp),
                    lane: Lane::Read,
                    close_hint: true,
                });
                conn.input_dead = true;
                conn.read_buf.clear();
                self.schedule_conn(token);
                self.after_work(token);
            }
            TimerKind::Park => self.park_retry(token),
            TimerKind::Drain => self.close(token),
        }
    }

    /// A parked long-poll's retry tick: re-run the handler; deliver its
    /// response when it no longer asks to park or the wait budget is
    /// spent, otherwise park again.
    fn park_retry(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.peer_eof {
            // Client gave up while parked.
            self.close(token);
            return;
        }
        let ConnState::Parked {
            request,
            deadline,
            close,
        } = std::mem::replace(&mut conn.state, ConnState::Open)
        else {
            return;
        };
        let now = Instant::now();
        let (response, park) = with_park_scope(|| (self.handler)((*request).clone()));
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if park.is_some() && now < deadline {
            conn.state = ConnState::Parked {
                request,
                deadline,
                close,
            };
            let next = deadline.min(now + PARK_POLL);
            arm_timer(&mut self.wheel, conn, token, TimerKind::Park, next);
            return;
        }
        // Data arrived (or the budget is spent): deliver, then resume
        // any pipelined requests buffered behind the long-poll.
        self.finish_response(token, &response, close);
        self.after_io(token);
    }

    fn start_drain(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.peer_eof {
            // Peer is already gone; no drain needed.
            self.close(token);
            return;
        }
        let _ = conn.stream.shutdown(std::net::Shutdown::Write);
        conn.state = ConnState::Draining;
        conn.read_buf.clear();
        arm_timer(
            &mut self.wheel,
            conn,
            token,
            TimerKind::Drain,
            Instant::now() + DRAIN_MAX,
        );
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            // Release queue accounting for work that will never run
            // (the peer is gone — there is no one to answer).
            for work in &conn.pending {
                if let PendingWork::Request { lane, .. } = work {
                    self.pending_total = self.pending_total.saturating_sub(1);
                    self.stats.adjust_depth(*lane, -1);
                }
            }
            self.poller.deregister(conn.stream.as_raw_fd(), token);
            // Dropping the stream closes the fd.
        }
    }
}

/// (Re-)arm a connection's logical deadline. Same-kind updates just move
/// the stored deadline — the existing wheel entry re-arms itself on
/// expiry — so a busy connection costs O(1) wheel entries instead of one
/// per event.
fn arm_timer(
    wheel: &mut TimerWheel,
    conn: &mut Conn,
    token: u64,
    kind: TimerKind,
    deadline: Instant,
) {
    conn.deadline = deadline;
    if conn.timer_armed && conn.timer_kind == kind {
        return;
    }
    conn.timer_kind = kind;
    conn.timer_gen += 1;
    conn.timer_armed = true;
    wheel.schedule(token, conn.timer_gen, deadline);
}

/// Flush as much of the pending batch as the socket accepts, vectored.
/// `Ok(true)` when the batch fully drained (buffers reset, capacity
/// kept), `Ok(false)` on a partial write (EWOULDBLOCK).
fn flush_writes(conn: &mut Conn) -> std::io::Result<bool> {
    loop {
        if conn.pending_out() == 0 {
            if conn.out_total > 0 {
                conn.head_buf.clear();
                conn.body_buf.clear();
                conn.segs.clear();
                conn.out_total = 0;
                conn.written = 0;
            }
            return Ok(true);
        }
        let n = {
            let mut iovecs: Vec<&[u8]> = Vec::with_capacity(16);
            conn.collect_iovecs(&mut iovecs);
            match writev_fd(conn.stream.as_raw_fd(), &iovecs) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted no bytes",
                    ))
                }
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        conn.written += n;
    }
}
