//! The HTTP server: a readiness-driven reactor by default, with the
//! blocking bounded worker pool retained as a differential baseline.
//!
//! The transport under the monitor-as-network-proxy deployment.
//! [`ServerConfig::transport`] selects between two engines behind one
//! public API:
//!
//! * [`Transport::Reactor`] (default, Unix) — per-core event-loop shards
//!   over non-blocking sockets ([`crate::reactor`]): epoll on Linux,
//!   `poll(2)` elsewhere, with pipelined request draining, vectored
//!   response writes, and all connection deadlines on a timer wheel.
//! * [`Transport::WorkerPool`] — each accepted connection is served by
//!   one of `N` long-lived blocking worker threads fed from a bounded
//!   queue (the accept loop blocks when it is full, so the thread count
//!   is constant under any load). Workers run an HTTP/1.1 keep-alive
//!   loop per connection and serialise responses into one reusable
//!   per-worker buffer ([`crate::wire::serialize_response`]).
//!
//! Both engines honour `Connection: close` / `keep-alive`, cap the
//! requests served per connection, guard against slow clients, and close
//! idle connections. Graceful shutdown sets an atomic flag, wakes the
//! accept loop with a dummy connection, and joins every thread
//! deterministically.

use crate::wire::{
    read_request_buf, serialize_response, wants_close, write_request, ConnectionMode, WireError,
};
use cm_obs::{Lane, OverloadStats};
use cm_rest::{RestRequest, RestResponse, StatusCode};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handler invoked for each incoming request.
pub type Handler = dyn Fn(RestRequest) -> RestResponse + Send + Sync;

/// Which engine serves connections; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Readiness-driven event-loop shards (the default). Falls back to
    /// [`Transport::WorkerPool`] on non-Unix targets.
    #[default]
    Reactor,
    /// Blocking thread-per-in-flight-connection worker pool — the
    /// differential baseline the reactor is benchmarked and
    /// parity-tested against.
    WorkerPool,
}

/// Readiness backend for [`Transport::Reactor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactorBackend {
    /// epoll on Linux, `poll(2)` elsewhere.
    #[default]
    Auto,
    /// Force epoll; binding fails off Linux.
    Epoll,
    /// Force the portable `poll(2)` backend (also how the fallback stays
    /// exercised by tests on Linux).
    Poll,
}

/// Tuning knobs for [`HttpServer`]; see the field docs for defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-serving engine (default [`Transport::Reactor`]).
    pub transport: Transport,
    /// Reactor shards (event-loop threads); 0 = one per available core,
    /// capped at 8 (default 0). Ignored by the worker pool.
    pub shards: usize,
    /// Readiness backend for the reactor (default
    /// [`ReactorBackend::Auto`]). Ignored by the worker pool.
    pub reactor_backend: ReactorBackend,
    /// Worker threads dispatching connections under
    /// [`Transport::WorkerPool`] (default 8). This — plus the accept
    /// thread — is that engine's *entire* thread budget, regardless of
    /// how many connections arrive.
    pub workers: usize,
    /// Serve multiple requests per connection (default `true`). When
    /// `false` every response carries `Connection: close`, restoring the
    /// historical connection-per-request transport (the benchmark
    /// baseline).
    pub keep_alive: bool,
    /// Requests served on one connection before the server closes it
    /// (default 1024). Bounds how long one client can monopolise a
    /// worker.
    pub max_requests_per_conn: usize,
    /// How long a connection may sit idle between requests before the
    /// server closes it (default 5s).
    pub idle_timeout: Duration,
    /// Socket read timeout while parsing a request — the slow-client
    /// guard (default 10s, matching the historical per-connection
    /// timeout).
    pub read_timeout: Duration,
    /// Accepted connections queued for dispatch before the accept loop
    /// applies backpressure (default 128).
    pub queue_depth: usize,
    /// Deadline-aware admission and load shedding (reactor transport
    /// only; the worker pool's bounded `queue_depth` handoff is its
    /// backpressure). Disabled by default.
    pub overload: OverloadConfig,
    /// Called for every request shed by overload control, from the shard
    /// thread, *before* the marked 503 is queued. Monitors hook this to
    /// record the shed as a `Degraded` audit verdict so no request is
    /// ever silently dropped.
    pub shed_observer: Option<ShedObserver>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            transport: Transport::Reactor,
            shards: 0,
            reactor_backend: ReactorBackend::Auto,
            workers: 8,
            keep_alive: true,
            max_requests_per_conn: 1024,
            idle_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
            queue_depth: 128,
            overload: OverloadConfig::default(),
            shed_observer: None,
        }
    }
}

/// Deadline-aware admission control for the reactor (see
/// [`crate::reactor`]): every parsed request is stamped on arrival and
/// carried through a per-shard run queue with three priority lanes
/// (admin > mutation > read). A request is shed — answered with an
/// immediate marked `503 X-CM-Overload` — when its queue wait has
/// already consumed the deadline budget (serving it would produce a
/// late, worthless answer), when the shard queue is full at enqueue, or
/// when CoDel-style detection sees the queue delay stand above target
/// for a whole interval (bursts are absorbed; standing queues are
/// drained by shedding reads). Admin-lane requests are never shed.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Master switch (default `false`: every request is admitted and
    /// the run queue is pure FIFO plumbing with zero behaviour change).
    pub enabled: bool,
    /// Queue-wait budget per request: a request that waited this long
    /// before dispatch is already worthless and is shed (default
    /// 500ms).
    pub deadline: Duration,
    /// Per-shard run-queue bound for read-lane requests at enqueue
    /// time; mutations tolerate twice this before shedding, admin is
    /// unbounded (default 1024).
    pub queue_limit: usize,
    /// CoDel target: queue delay below this resets the standing-queue
    /// clock (default 5ms).
    pub codel_target: Duration,
    /// CoDel interval: delay continuously above target for this long
    /// marks a standing queue, and reads shed until it drains (default
    /// 100ms).
    pub codel_interval: Duration,
    /// Share a pre-built stats handle with the server (e.g. so admin
    /// routes and a brownout controller can hold it before `bind_with`
    /// runs). `None` (default) lets the server allocate its own,
    /// retrievable via [`HttpServer::overload_stats`].
    pub stats: Option<Arc<OverloadStats>>,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            enabled: false,
            deadline: Duration::from_millis(500),
            queue_limit: 1024,
            codel_target: Duration::from_millis(5),
            codel_interval: Duration::from_millis(100),
            stats: None,
        }
    }
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The shard run queue was full at enqueue time.
    QueueFull,
    /// The request's queue wait consumed its whole deadline budget.
    BudgetExhausted,
    /// CoDel: queue delay stood above target for a full interval, so
    /// reads shed until the standing queue drains.
    StandingQueue,
}

impl ShedCause {
    /// Stable label for provenance strings and metrics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ShedCause::QueueFull => "queue_full",
            ShedCause::BudgetExhausted => "budget_exhausted",
            ShedCause::StandingQueue => "standing_queue",
        }
    }
}

/// Everything a shed observer learns about one shed request.
#[derive(Debug, Clone)]
pub struct ShedDecision {
    /// Lane the request was classified into.
    pub lane: Lane,
    /// How long it had waited when the decision was made (zero for
    /// enqueue-time sheds).
    pub queue_wait: Duration,
    /// The configured deadline budget, for provenance.
    pub budget: Duration,
    /// Which admission rule fired.
    pub cause: ShedCause,
}

/// The boxed callback type a [`ShedObserver`] wraps.
type ShedCallback = Arc<dyn Fn(&RestRequest, &ShedDecision) + Send + Sync>;

/// Callback invoked (on the shard thread) for every shed request.
#[derive(Clone)]
pub struct ShedObserver(ShedCallback);

impl ShedObserver {
    /// Wrap a callback.
    pub fn new(f: impl Fn(&RestRequest, &ShedDecision) + Send + Sync + 'static) -> Self {
        ShedObserver(Arc::new(f))
    }

    /// Invoke the callback.
    pub fn notify(&self, request: &RestRequest, decision: &ShedDecision) {
        (self.0)(request, decision);
    }
}

impl std::fmt::Debug for ShedObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ShedObserver(..)")
    }
}

/// Bounded handoff queue between the accept loop and the workers.
struct ConnQueue {
    inner: Mutex<VecDeque<TcpStream>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    stop: AtomicBool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            stop: AtomicBool::new(false),
        }
    }

    /// Enqueue a connection, blocking while the queue is full. Dropped
    /// (connection refused semantics) when the server is stopping.
    fn push(&self, stream: TcpStream) {
        let mut q = self.inner.lock().unwrap();
        while q.len() >= self.capacity {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            q = self.not_full.wait(q).unwrap();
        }
        if self.stop.load(Ordering::SeqCst) {
            return;
        }
        q.push_back(stream);
        drop(q);
        self.not_empty.notify_one();
    }

    /// Dequeue a connection; `None` once the server is stopping and the
    /// queue has drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(stream) = q.pop_front() {
                drop(q);
                self.not_full.notify_one();
                return Some(stream);
            }
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            q = self.not_empty.wait(q).unwrap();
        }
    }

    fn close(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _guard = self.inner.lock().unwrap();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Thread-local channel through which a long-poll handler asks a
/// reactor shard to park its connection instead of blocking.
#[derive(Clone, Copy)]
enum ParkSlot {
    /// Not inside a reactor dispatch: parking unavailable.
    Inactive,
    /// Inside a reactor dispatch: a handler may request parking.
    Armed,
    /// The handler asked to park for up to `wait_ms` milliseconds.
    Requested(u64),
}

thread_local! {
    static PARK_SLOT: std::cell::Cell<ParkSlot> = const { std::cell::Cell::new(ParkSlot::Inactive) };
}

/// Run `f` (a handler dispatch) with parking armed; returns the
/// handler's result and the park request it made, if any.
pub(crate) fn with_park_scope<R>(f: impl FnOnce() -> R) -> (R, Option<u64>) {
    PARK_SLOT.set(ParkSlot::Armed);
    let result = f();
    let park = match PARK_SLOT.replace(ParkSlot::Inactive) {
        ParkSlot::Requested(wait_ms) => Some(wait_ms),
        _ => None,
    };
    (result, park)
}

/// Ask the transport to park the current connection for up to `wait_ms`
/// milliseconds instead of blocking inside the handler.
///
/// Returns `true` when the caller is running on a reactor shard, which
/// will then *withhold* the response the handler returns, park the
/// connection on the shard's timer wheel, and re-invoke the handler
/// (same request) every few milliseconds until it stops asking to park —
/// or the wait budget is spent, at which point the latest response is
/// delivered. Long-poll handlers should therefore answer with their
/// *current* state (possibly empty) after this returns `true`, and fall
/// back to blocking with bounded concurrency when it returns `false`
/// (worker-pool transport).
pub fn try_request_park(wait_ms: u64) -> bool {
    PARK_SLOT.with(|slot| {
        if matches!(slot.get(), ParkSlot::Armed | ParkSlot::Requested(_)) {
            slot.set(ParkSlot::Requested(wait_ms));
            true
        } else {
            false
        }
    })
}

/// The engine actually serving connections behind [`HttpServer`].
enum Engine {
    /// Blocking bounded worker pool.
    Pool {
        queue: Arc<ConnQueue>,
        accept_thread: JoinHandle<()>,
        workers: Vec<JoinHandle<()>>,
    },
    /// Readiness-driven reactor shards.
    #[cfg(unix)]
    Reactor(crate::reactor::ReactorEngine),
}

/// A running HTTP server.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    engine: Option<Engine>,
    connections: Arc<AtomicU64>,
    config: ServerConfig,
    overload: Arc<OverloadStats>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("transport", &self.transport())
            .field("keep_alive", &self.config.keep_alive)
            .finish()
    }
}

impl HttpServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and start serving
    /// `handler` with the default [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Propagates binding errors from the OS.
    pub fn bind(addr: impl ToSocketAddrs, handler: Arc<Handler>) -> std::io::Result<HttpServer> {
        HttpServer::bind_with(addr, handler, ServerConfig::default())
    }

    /// Bind with an explicit [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Propagates binding errors from the OS.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        handler: Arc<Handler>,
        config: ServerConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let overload = config
            .overload
            .stats
            .clone()
            .unwrap_or_else(|| Arc::new(OverloadStats::new()));

        let engine = match effective_transport(config.transport) {
            #[cfg(unix)]
            Transport::Reactor => Engine::Reactor(crate::reactor::ReactorEngine::spawn(
                listener,
                handler,
                &config,
                Arc::clone(&stop),
                Arc::clone(&connections),
                Arc::clone(&overload),
            )?),
            #[cfg(not(unix))]
            Transport::Reactor => unreachable!("effective_transport never picks Reactor here"),
            Transport::WorkerPool => {
                let queue = Arc::new(ConnQueue::new(config.queue_depth));
                let worker_count = config.workers.max(1);
                let mut workers = Vec::with_capacity(worker_count);
                for _ in 0..worker_count {
                    let queue = Arc::clone(&queue);
                    let handler = Arc::clone(&handler);
                    let stop = Arc::clone(&stop);
                    let cfg = config.clone();
                    workers.push(std::thread::spawn(move || {
                        // One response buffer per worker, reused across
                        // every request of every connection this worker
                        // serves.
                        let mut resp_buf: Vec<u8> = Vec::with_capacity(4096);
                        while let Some(stream) = queue.pop() {
                            serve_connection(stream, handler.as_ref(), &cfg, &stop, &mut resp_buf);
                        }
                    }));
                }

                let stop_accept = Arc::clone(&stop);
                let queue_accept = Arc::clone(&queue);
                let connections_accept = Arc::clone(&connections);
                let accept_thread = std::thread::spawn(move || {
                    for stream in listener.incoming() {
                        if stop_accept.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // Small HTTP responses to a pipelining peer stall
                        // ~40ms each under Nagle + delayed ACK; disable
                        // it like the reactor and the client do.
                        let _ = stream.set_nodelay(true);
                        connections_accept.fetch_add(1, Ordering::Relaxed);
                        queue_accept.push(stream);
                    }
                });
                Engine::Pool {
                    queue,
                    accept_thread,
                    workers,
                }
            }
        };

        Ok(HttpServer {
            addr: local,
            stop,
            engine: Some(engine),
            connections,
            config,
            overload,
        })
    }

    /// Per-lane overload accounting (admissions, sheds, live depths,
    /// queue-delay histogram), shared live with the reactor shards.
    /// All-zero under the worker-pool transport, whose bounded handoff
    /// queue is its backpressure.
    #[must_use]
    pub fn overload_stats(&self) -> Arc<OverloadStats> {
        Arc::clone(&self.overload)
    }

    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (excluding the shutdown wake-up).
    /// Keep-alive tests assert reuse through this counter.
    #[must_use]
    pub fn connections_accepted(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Number of dispatch threads — worker-pool workers or reactor
    /// shards — the server's constant thread budget (plus one accept
    /// thread), independent of connection count.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        match &self.engine {
            Some(Engine::Pool { workers, .. }) => workers.len(),
            #[cfg(unix)]
            Some(Engine::Reactor(r)) => r.shard_count(),
            None => 0,
        }
    }

    /// The transport actually serving connections (after platform
    /// fallback).
    #[must_use]
    pub fn transport(&self) -> Transport {
        match &self.engine {
            Some(Engine::Pool { .. }) | None => Transport::WorkerPool,
            #[cfg(unix)]
            Some(Engine::Reactor(_)) => Transport::Reactor,
        }
    }

    /// Stop accepting connections and join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        match self.engine.take() {
            Some(Engine::Pool {
                queue,
                accept_thread,
                workers,
            }) => {
                let _ = accept_thread.join();
                // Unblock idle workers; busy ones observe the stop flag
                // at their next idle poll tick and finish their
                // in-flight request first.
                queue.close();
                for w in workers {
                    let _ = w.join();
                }
            }
            #[cfg(unix)]
            Some(Engine::Reactor(mut r)) => r.join(),
            None => {}
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.engine.is_some() {
            self.stop_and_join();
        }
    }
}

/// Resolve the configured transport against platform support.
fn effective_transport(requested: Transport) -> Transport {
    match requested {
        Transport::WorkerPool => Transport::WorkerPool,
        #[cfg(unix)]
        Transport::Reactor => Transport::Reactor,
        #[cfg(not(unix))]
        Transport::Reactor => Transport::WorkerPool,
    }
}

/// Granularity at which parked workers re-check the stop flag and the
/// idle deadline while waiting for the next request on a connection.
const IDLE_POLL: Duration = Duration::from_millis(50);

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Outcome of waiting for the next request on a kept-alive connection.
enum IdleWait {
    /// Bytes are available; parse a request.
    Ready,
    /// EOF, idle timeout, stop flag, or socket error: close.
    Close,
}

/// Wait — politely, in short polls — until the client sends the first
/// byte of its next request, the idle timeout elapses, the peer closes,
/// or the server begins shutting down.
fn await_next_request(
    stream: &TcpStream,
    reader: &mut impl BufRead,
    idle_timeout: Duration,
    stop: &AtomicBool,
) -> IdleWait {
    let _ = stream.set_read_timeout(Some(
        IDLE_POLL.min(idle_timeout).max(Duration::from_millis(1)),
    ));
    let deadline = Instant::now() + idle_timeout;
    loop {
        if stop.load(Ordering::SeqCst) {
            return IdleWait::Close;
        }
        match reader.fill_buf() {
            Ok([]) => return IdleWait::Close, // clean EOF between requests
            Ok(_) => return IdleWait::Ready,
            Err(e) if is_timeout(&e) || e.kind() == std::io::ErrorKind::Interrupted => {
                if Instant::now() >= deadline {
                    return IdleWait::Close;
                }
            }
            Err(_) => return IdleWait::Close,
        }
    }
}

/// Serve one connection: a keep-alive loop when the config allows it,
/// a single request otherwise.
fn serve_connection(
    stream: TcpStream,
    handler: &Handler,
    cfg: &ServerConfig,
    stop: &AtomicBool,
    resp_buf: &mut Vec<u8>,
) {
    // Read through a persistent buffered reader over a shared borrow of
    // the stream (writes go through another shared borrow), so buffered
    // bytes of a pipelined next request are never lost between messages.
    let mut reader = BufReader::with_capacity(8 * 1024, &stream);
    let mut served = 0usize;
    while let IdleWait::Ready = await_next_request(&stream, &mut reader, cfg.idle_timeout, stop) {
        // Slow-client guard: each read syscall while parsing must make
        // progress within `read_timeout`.
        let _ = stream.set_read_timeout(Some(cfg.read_timeout));
        let request = match read_request_buf(&mut reader) {
            Ok(request) => request,
            Err(WireError::UnexpectedEof) => break,
            Err(e) => {
                // Malformed framing / oversized message / stalled read:
                // answer 400 and close.
                resp_buf.clear();
                serialize_response(
                    resp_buf,
                    &RestResponse::error(StatusCode::BAD_REQUEST, e.to_string()),
                    ConnectionMode::Close,
                );
                let _ = (&stream).write_all(resp_buf);
                break;
            }
        };
        served += 1;
        let client_close = wants_close(&request.headers);
        let response = handler(request);
        let close = !cfg.keep_alive
            || client_close
            || served >= cfg.max_requests_per_conn
            || stop.load(Ordering::SeqCst);
        resp_buf.clear();
        serialize_response(
            resp_buf,
            &response,
            if close {
                ConnectionMode::Close
            } else {
                ConnectionMode::KeepAlive
            },
        );
        if (&stream).write_all(resp_buf).is_err() {
            return; // peer gone; nothing to drain
        }
        if close {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Drain briefly until the peer closes so it never sees a reset
    // before reading the final response.
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let deadline = Instant::now() + Duration::from_secs(1);
    let mut sink = [0u8; 256];
    loop {
        match (&stream).read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Send one request to an HTTP server over a fresh connection and read
/// the response (`Connection: close` — the one-shot client). Persistent
/// callers use [`crate::PooledClient`] instead.
///
/// # Errors
///
/// Returns [`WireError`] on connection failure or malformed responses.
pub fn send(addr: impl ToSocketAddrs, request: &RestRequest) -> Result<RestResponse, WireError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write_request(&mut stream, request)?;
    stream.flush()?;
    crate::wire::read_response(&mut stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_model::HttpMethod;
    use cm_rest::Json;

    fn echo_handler() -> Arc<Handler> {
        Arc::new(|req: RestRequest| {
            RestResponse::ok(Json::object(vec![
                ("method", Json::Str(req.method.to_string())),
                ("path", Json::Str(req.path.clone())),
                (
                    "token",
                    match req.token() {
                        Some(t) => Json::Str(t.to_string()),
                        None => Json::Null,
                    },
                ),
                ("body", req.body.clone().unwrap_or(Json::Null)),
            ]))
        })
    }

    #[test]
    fn serves_round_trips() {
        let server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.local_addr();
        let req = RestRequest::new(HttpMethod::Post, "/v3/4/volumes")
            .auth_token("tok-7")
            .json(Json::object(vec![("size", Json::Int(3))]));
        let resp = send(addr, &req).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let body = resp.body.unwrap();
        assert_eq!(body.get("method").unwrap().as_str(), Some("POST"));
        assert_eq!(body.get("path").unwrap().as_str(), Some("/v3/4/volumes"));
        assert_eq!(body.get("token").unwrap().as_str(), Some("tok-7"));
        assert_eq!(
            body.get("body").unwrap().get("size").unwrap().as_int(),
            Some(3)
        );
        server.shutdown();
    }

    #[test]
    fn serves_multiple_sequential_requests() {
        let server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.local_addr();
        for i in 0..5 {
            let req = RestRequest::new(HttpMethod::Get, format!("/item/{i}"));
            let resp = send(addr, &req).unwrap();
            assert_eq!(
                resp.body.unwrap().get("path").unwrap().as_str(),
                Some(format!("/item/{i}").as_str())
            );
        }
        server.shutdown();
    }

    #[test]
    fn serves_concurrent_requests() {
        let server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.local_addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let req = RestRequest::new(HttpMethod::Get, format!("/t/{i}"));
                    send(addr, &req).unwrap().status
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), StatusCode::OK);
        }
        server.shutdown();
    }

    #[test]
    fn connection_to_stopped_server_fails() {
        let server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        let req = RestRequest::new(HttpMethod::Get, "/");
        // Either the connect fails or the read does; both are errors.
        assert!(send(addr, &req).is_err());
    }

    #[test]
    fn one_shot_clients_get_connection_close() {
        // `send` still speaks `Connection: close`; the server honours it
        // and each request costs one accepted connection.
        let server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.local_addr();
        for _ in 0..3 {
            let resp = send(addr, &RestRequest::new(HttpMethod::Get, "/x")).unwrap();
            assert_eq!(resp.status, StatusCode::OK);
            assert!(crate::wire::wants_close(&resp.headers));
        }
        assert_eq!(server.connections_accepted(), 3);
        server.shutdown();
    }

    #[test]
    fn worker_pool_is_bounded_and_joined() {
        let config = ServerConfig {
            transport: Transport::WorkerPool,
            workers: 3,
            ..ServerConfig::default()
        };
        let server = HttpServer::bind_with("127.0.0.1:0", echo_handler(), config).unwrap();
        assert_eq!(server.worker_count(), 3);
        let addr = server.local_addr();
        // More concurrent one-shot connections than workers: all served,
        // worker count unchanged.
        let threads: Vec<_> = (0..12)
            .map(|i| {
                std::thread::spawn(move || {
                    send(addr, &RestRequest::new(HttpMethod::Get, format!("/{i}")))
                        .unwrap()
                        .status
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), StatusCode::OK);
        }
        assert_eq!(server.worker_count(), 3);
        server.shutdown();
    }
}
