//! A small blocking HTTP server and client over `std::net`.
//!
//! One request per connection (`Connection: close`), one thread per
//! connection, graceful shutdown via an atomic flag plus a wake-up
//! connection. This is the transport under the monitor-as-network-proxy
//! examples; unit and integration tests use the in-process
//! [`cm_rest::RestService`] plumbing instead for determinism.

use crate::wire::{read_request, write_request, write_response, WireError};
use cm_rest::{RestRequest, RestResponse, StatusCode};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handler invoked for each incoming request.
pub type Handler = dyn Fn(RestRequest) -> RestResponse + Send + Sync;

/// A running HTTP server.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and start serving
    /// `handler` on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates binding errors from the OS.
    pub fn bind(addr: impl ToSocketAddrs, handler: Arc<Handler>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let stop_accept = Arc::clone(&stop);
        let workers_accept = Arc::clone(&workers);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let handler = Arc::clone(&handler);
                let worker = std::thread::spawn(move || {
                    serve_connection(stream, handler.as_ref());
                });
                workers_accept.lock().unwrap().push(worker);
            }
        });

        Ok(HttpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.lock().unwrap().drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

fn serve_connection(mut stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let response = match read_request(&mut stream) {
        Ok(request) => handler(request),
        Err(WireError::UnexpectedEof) => return, // wake-up / probe connection
        Err(e) => RestResponse::error(StatusCode::BAD_REQUEST, e.to_string()),
    };
    let _ = write_response(&mut stream, &response);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Drain until the peer closes so it never sees a reset before reading.
    let mut sink = [0u8; 256];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Send one request to an HTTP server and read the response.
///
/// # Errors
///
/// Returns [`WireError`] on connection failure or malformed responses.
pub fn send(addr: impl ToSocketAddrs, request: &RestRequest) -> Result<RestResponse, WireError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write_request(&mut stream, request)?;
    stream.flush_write()?;
    crate::wire::read_response(&mut stream)
}

trait FlushWrite {
    fn flush_write(&mut self) -> std::io::Result<()>;
}

impl FlushWrite for TcpStream {
    fn flush_write(&mut self) -> std::io::Result<()> {
        use std::io::Write;
        self.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_model::HttpMethod;
    use cm_rest::Json;

    fn echo_handler() -> Arc<Handler> {
        Arc::new(|req: RestRequest| {
            RestResponse::ok(Json::object(vec![
                ("method", Json::Str(req.method.to_string())),
                ("path", Json::Str(req.path.clone())),
                (
                    "token",
                    match req.token() {
                        Some(t) => Json::Str(t.to_string()),
                        None => Json::Null,
                    },
                ),
                ("body", req.body.clone().unwrap_or(Json::Null)),
            ]))
        })
    }

    #[test]
    fn serves_round_trips() {
        let server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.local_addr();
        let req = RestRequest::new(HttpMethod::Post, "/v3/4/volumes")
            .auth_token("tok-7")
            .json(Json::object(vec![("size", Json::Int(3))]));
        let resp = send(addr, &req).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let body = resp.body.unwrap();
        assert_eq!(body.get("method").unwrap().as_str(), Some("POST"));
        assert_eq!(body.get("path").unwrap().as_str(), Some("/v3/4/volumes"));
        assert_eq!(body.get("token").unwrap().as_str(), Some("tok-7"));
        assert_eq!(
            body.get("body").unwrap().get("size").unwrap().as_int(),
            Some(3)
        );
        server.shutdown();
    }

    #[test]
    fn serves_multiple_sequential_requests() {
        let server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.local_addr();
        for i in 0..5 {
            let req = RestRequest::new(HttpMethod::Get, format!("/item/{i}"));
            let resp = send(addr, &req).unwrap();
            assert_eq!(
                resp.body.unwrap().get("path").unwrap().as_str(),
                Some(format!("/item/{i}").as_str())
            );
        }
        server.shutdown();
    }

    #[test]
    fn serves_concurrent_requests() {
        let server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.local_addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let req = RestRequest::new(HttpMethod::Get, format!("/t/{i}"));
                    send(addr, &req).unwrap().status
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), StatusCode::OK);
        }
        server.shutdown();
    }

    #[test]
    fn connection_to_stopped_server_fails() {
        let server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        let req = RestRequest::new(HttpMethod::Get, "/");
        // Either the connect fails or the read does; both are errors.
        assert!(send(addr, &req).is_err());
    }
}

/// A [`cm_rest::RestService`] adapter that forwards every request to a
/// remote HTTP server — this is how the monitor wraps a private cloud
/// reachable only over the network (the paper's deployment, where the
/// monitor runs on the laptop and OpenStack in VirtualBox).
#[derive(Debug, Clone)]
pub struct RemoteService {
    addr: SocketAddr,
}

impl RemoteService {
    /// Point the adapter at a server address.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        RemoteService { addr }
    }
}

impl cm_rest::SharedRestService for RemoteService {
    fn call(&self, request: &RestRequest) -> RestResponse {
        match send(self.addr, request) {
            Ok(resp) => resp,
            Err(e) => RestResponse::error(StatusCode::BAD_GATEWAY, e.to_string()),
        }
    }
}

#[cfg(test)]
mod remote_tests {
    use super::*;
    use cm_model::HttpMethod;
    use cm_rest::{Json, RestService};

    #[test]
    fn remote_service_forwards() {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(|req: RestRequest| RestResponse::ok(Json::Str(req.path))),
        )
        .unwrap();
        let mut remote = RemoteService::new(server.local_addr());
        let resp = remote.handle(&RestRequest::new(HttpMethod::Get, "/ping"));
        assert_eq!(resp.body, Some(Json::Str("/ping".into())));
        server.shutdown();
    }

    #[test]
    fn remote_service_reports_unreachable_as_bad_gateway() {
        // Bind and immediately drop a listener to get a dead port.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut remote = RemoteService::new(addr);
        let resp = remote.handle(&RestRequest::new(HttpMethod::Get, "/"));
        assert_eq!(resp.status, StatusCode::BAD_GATEWAY);
    }
}
