//! Admin observability endpoints for a monitor proxy.
//!
//! [`AdminRoutes`] intercepts the reserved `/-/` path space in front of
//! an application handler:
//!
//! * `GET /-/metrics` — the monitor's [`cm_obs::MetricsRegistry`] as
//!   JSON (verdict / requirement / route counters, phase latency
//!   histograms with p50/p95/p99);
//! * `GET /-/events?tail=N` — the most recent `N` structured
//!   [`cm_obs::MonitorEvent`]s from the event sink (default 32), oldest
//!   first, plus the count of events dropped by the bounded buffer;
//! * `GET /-/health` — liveness plus the transport's resilience state
//!   (circuit-breaker state per backend, retry/shed/transition
//!   counters), when a [`PooledClient`] is attached via
//!   [`AdminRoutes::with_transport`], and a machine-readable `overload`
//!   block (per-lane queue depths, admitted/shed counters, queue-delay
//!   percentiles, brownout step) when overload state is attached via
//!   [`AdminRoutes::with_overload`];
//! * `GET /-/events/stream?from=N&max=M&wait_ms=T` — long-poll tail of
//!   the durable audit log, when a [`cm_obs::TailStream`] is attached
//!   via [`AdminRoutes::with_stream`]. Each batch reports the resume
//!   cursor (`next`) and how many records a lagging consumer missed
//!   (`lagged`), so reconnects resume from the last acked offset and a
//!   slow reader never blocks the writer. On the reactor transport a
//!   `wait_ms` long-poll parks the connection on the shard's timer
//!   wheel ([`crate::try_request_park`]) instead of occupying a thread;
//!   on the worker pool at most [`DEFAULT_PARKED_POLLERS`] polls may
//!   block workers concurrently (see [`AdminRoutes::with_parked_cap`]).
//!
//! Every other request falls through to the wrapped handler, so the
//! endpoints add no cost to the monitored path beyond one prefix check.

use crate::client::PooledClient;
use crate::resilience::BreakerState;
use crate::server::Handler;
use cm_obs::{BrownoutSignal, EventSink, MetricsRegistry, OverloadStats, TailStream};
use cm_rest::{Json, RestRequest, RestResponse, StatusCode};
use std::sync::Arc;

/// Events returned by `GET /-/events` when no `tail` is given.
pub const DEFAULT_EVENT_TAIL: usize = 32;

/// Records returned per `GET /-/events/stream` batch when no `max` is
/// given.
pub const DEFAULT_STREAM_BATCH: usize = 64;

/// Upper bound on `wait_ms` for `/-/events/stream` long-polls, so a
/// client cannot pin a server worker indefinitely.
pub const MAX_STREAM_WAIT_MS: u64 = 30_000;

/// Default cap on concurrently *blocking* long-pollers when the server
/// runs the worker-pool transport (where each parked poll occupies a
/// worker thread for its full wait). Pollers beyond the cap get an
/// immediate (possibly empty) batch instead of a wait. On the reactor
/// transport parking is free — connections wait on the shard's timer
/// wheel — so this cap never applies there.
pub const DEFAULT_PARKED_POLLERS: usize = 4;

/// The reserved admin path prefix.
pub const ADMIN_PREFIX: &str = "/-/";

/// Serves `/-/metrics`, `/-/events` and `/-/health` from a monitor's
/// observability handles.
#[derive(Debug, Clone)]
pub struct AdminRoutes {
    metrics: Arc<MetricsRegistry>,
    events: Arc<dyn EventSink>,
    transport: Option<Arc<PooledClient>>,
    stream: Option<Arc<dyn TailStream>>,
    overload: Option<(Arc<OverloadStats>, Arc<BrownoutSignal>)>,
    /// Long-pollers currently blocking a worker thread, bounded by
    /// `parked_cap` (shared across clones so `wrap` keeps the bound).
    parked_pollers: Arc<std::sync::atomic::AtomicUsize>,
    parked_cap: usize,
}

impl AdminRoutes {
    /// Admin routes over the given registry and sink (clone the `Arc`s
    /// out of `CloudMonitor::metrics()` / `CloudMonitor::events()`).
    #[must_use]
    pub fn new(metrics: Arc<MetricsRegistry>, events: Arc<dyn EventSink>) -> Self {
        AdminRoutes {
            metrics,
            events,
            transport: None,
            stream: None,
            overload: None,
            parked_pollers: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            parked_cap: DEFAULT_PARKED_POLLERS,
        }
    }

    /// Builder: cap the number of `/-/events/stream` long-polls allowed
    /// to *block a worker thread* concurrently (worker-pool transport
    /// only; default [`DEFAULT_PARKED_POLLERS`]). `0` disables blocking
    /// waits entirely.
    #[must_use]
    pub fn with_parked_cap(mut self, cap: usize) -> Self {
        self.parked_cap = cap;
        self
    }

    /// Builder: attach a durable-log tail (e.g. `cm_audit::AuditLog`) so
    /// `GET /-/events/stream` serves committed audit records.
    #[must_use]
    pub fn with_stream(mut self, stream: Arc<dyn TailStream>) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Builder: attach the backend transport so `/-/health` can report
    /// per-backend breaker state and `/-/metrics` gains a `transport`
    /// section with retry/shed/breaker-transition counters.
    #[must_use]
    pub fn with_transport(mut self, transport: Arc<PooledClient>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Builder: attach the reactor's overload stats and the monitor's
    /// brownout signal so `/-/health` grows a machine-readable
    /// `overload` block (per-lane queue depths, shed rate, brownout
    /// step) and `/-/metrics` gains an `overload` section. One poll of
    /// `/-/health` then answers "is this node shedding, how hard, and
    /// what has it already turned off" — the single target a fleet
    /// coordinator needs.
    #[must_use]
    pub fn with_overload(
        mut self,
        stats: Arc<OverloadStats>,
        brownout: Arc<BrownoutSignal>,
    ) -> Self {
        self.overload = Some((stats, brownout));
        self
    }

    /// The overload block served under `/-/health` and `/-/metrics`.
    fn overload_json(stats: &OverloadStats, brownout: &BrownoutSignal) -> Json {
        let Json::Object(mut members) = stats.render_json() else {
            unreachable!("OverloadStats::render_json returns an object");
        };
        members.push(("brownout".into(), brownout.render_json()));
        Json::Object(members)
    }

    /// The transport's resilience counters as a JSON object.
    fn transport_json(client: &PooledClient) -> Json {
        Json::object(
            client
                .stats()
                .snapshot()
                .into_iter()
                .map(|(k, v)| (k, Json::Int(i64::try_from(v).unwrap_or(i64::MAX))))
                .collect::<Vec<_>>(),
        )
    }

    /// The `/-/health` body: overall status is `"ok"` while every known
    /// backend breaker is closed and the brownout ladder sits at step 0,
    /// `"degraded"` otherwise.
    fn health_json(&self) -> Json {
        let mut degraded = false;
        let mut members: Vec<(String, Json)> = Vec::new();
        if let Some(client) = &self.transport {
            let breakers = client.breaker_snapshot();
            degraded |= breakers
                .iter()
                .any(|(_, state)| *state != BreakerState::Closed);
            let backends = breakers
                .into_iter()
                .map(|(addr, state)| {
                    Json::object(vec![
                        ("addr", Json::Str(addr.to_string())),
                        ("breaker", Json::Str(state.as_str().into())),
                    ])
                })
                .collect();
            members.push(("backends".into(), Json::Array(backends)));
            members.push(("transport".into(), Self::transport_json(client)));
        }
        if let Some((stats, brownout)) = &self.overload {
            degraded |= brownout.step() > 0;
            members.push(("overload".into(), Self::overload_json(stats, brownout)));
        }
        members.insert(
            0,
            (
                "status".into(),
                Json::Str(if degraded { "degraded" } else { "ok" }.into()),
            ),
        );
        Json::Object(members)
    }

    /// Handle `request` if it addresses the admin path space; `None`
    /// means the request belongs to the application.
    #[must_use]
    pub fn try_handle(&self, request: &RestRequest) -> Option<RestResponse> {
        // Query strings travel inside `path`; split them off before
        // matching (the wire layer does no query parsing).
        let (path, query) = match request.path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (request.path.as_str(), ""),
        };
        if !path.starts_with(ADMIN_PREFIX) {
            return None;
        }
        if request.method != cm_model::HttpMethod::Get {
            return Some(RestResponse::error(
                StatusCode::METHOD_NOT_ALLOWED,
                "admin endpoints are read-only",
            ));
        }
        match path {
            "/-/metrics" => {
                let mut body = self.metrics.render_json();
                if let Json::Object(members) = &mut body {
                    if let Some(client) = &self.transport {
                        members.push(("transport".into(), Self::transport_json(client)));
                    }
                    if let Some((stats, brownout)) = &self.overload {
                        members.push(("overload".into(), Self::overload_json(stats, brownout)));
                    }
                }
                Some(RestResponse::ok(body))
            }
            "/-/health" => Some(RestResponse::ok(self.health_json())),
            "/-/events/stream" => {
                let Some(stream) = &self.stream else {
                    return Some(RestResponse::error(
                        StatusCode::NOT_FOUND,
                        "no durable audit log attached; start with --audit-dir",
                    ));
                };
                let from = query_param(query, "from")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0);
                let max = query_param(query, "max")
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(DEFAULT_STREAM_BATCH);
                let wait_ms = query_param(query, "wait_ms")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0)
                    .min(MAX_STREAM_WAIT_MS);
                // Serve whatever is committed right now, without waiting.
                let mut batch = stream.tail_from(from, max, 0);
                if wait_ms > 0 && batch.records.is_empty() {
                    if crate::server::try_request_park(wait_ms) {
                        // Reactor transport: the connection parks on the
                        // shard's timer wheel and this handler is
                        // re-invoked until records appear or the wait
                        // budget is spent — the empty batch below is
                        // withheld, not sent. No thread blocks.
                    } else if self.acquire_parked_slot() {
                        // Worker-pool transport: a bounded number of
                        // pollers may block their worker for the wait.
                        batch = stream.tail_from(from, max, wait_ms);
                        self.parked_pollers
                            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                    }
                    // Over the cap: answer immediately with the empty
                    // batch; the client's resume cursor lets it retry.
                }
                let int = |v: u64| Json::Int(i64::try_from(v).unwrap_or(i64::MAX));
                Some(RestResponse::ok(Json::object(vec![
                    ("start", int(batch.start)),
                    ("next", int(batch.next)),
                    ("lagged", int(batch.lagged)),
                    ("end", int(batch.end)),
                    ("records", Json::Array(batch.records)),
                ])))
            }
            "/-/events" => {
                let tail = query_param(query, "tail")
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(DEFAULT_EVENT_TAIL);
                let events = self.events.tail(tail);
                Some(RestResponse::ok(Json::object(vec![
                    (
                        "events",
                        Json::Array(events.iter().map(cm_obs::MonitorEvent::to_json).collect()),
                    ),
                    (
                        "dropped",
                        Json::Int(i64::try_from(self.events.dropped()).unwrap_or(i64::MAX)),
                    ),
                ])))
            }
            _ => Some(RestResponse::error(
                StatusCode::NOT_FOUND,
                format!("unknown admin endpoint {path}"),
            )),
        }
    }

    /// Reserve one of the bounded blocking-poller slots.
    fn acquire_parked_slot(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.parked_pollers
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.parked_cap).then_some(n + 1)
            })
            .is_ok()
    }

    /// Compose with an application handler: admin paths are answered
    /// here, everything else goes to `inner`.
    #[must_use]
    pub fn wrap(self, inner: Arc<Handler>) -> Arc<Handler> {
        Arc::new(
            move |request: RestRequest| match self.try_handle(&request) {
                Some(response) => response,
                None => inner(request),
            },
        )
    }
}

/// Value of `name` in an (already split off) query string.
fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (key, value) = pair.split_once('=')?;
        (key == name).then_some(value)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_model::HttpMethod;
    use cm_obs::{MonitorEvent, RingBufferSink};

    fn routes_with(events: usize) -> AdminRoutes {
        let metrics = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(RingBufferSink::new(16));
        for i in 0..events {
            let event = MonitorEvent {
                method: "GET".into(),
                path: format!("/v3/1/volumes/{i}"),
                verdict: "pass".into(),
                status: 200,
                ..MonitorEvent::default()
            };
            metrics.observe(&event);
            sink.emit(event);
        }
        AdminRoutes::new(metrics, sink)
    }

    #[test]
    fn non_admin_paths_fall_through() {
        let routes = routes_with(0);
        let req = RestRequest::new(HttpMethod::Get, "/v3/1/volumes");
        assert!(routes.try_handle(&req).is_none());
    }

    #[test]
    fn metrics_endpoint_reports_counts() {
        let routes = routes_with(3);
        let resp = routes
            .try_handle(&RestRequest::new(HttpMethod::Get, "/-/metrics"))
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let body = resp.body.unwrap();
        assert_eq!(body.get("requests").unwrap().as_int(), Some(3));
        assert_eq!(
            body.get("verdicts").unwrap().get("pass").unwrap().as_int(),
            Some(3)
        );
    }

    #[test]
    fn events_endpoint_honours_tail() {
        let routes = routes_with(5);
        let resp = routes
            .try_handle(&RestRequest::new(HttpMethod::Get, "/-/events?tail=2"))
            .unwrap();
        let body = resp.body.unwrap();
        let events = body.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1].get("path").unwrap().as_str(),
            Some("/v3/1/volumes/4")
        );
        assert_eq!(body.get("dropped").unwrap().as_int(), Some(0));
    }

    #[test]
    fn events_endpoint_defaults_tail() {
        let routes = routes_with(4);
        let resp = routes
            .try_handle(&RestRequest::new(HttpMethod::Get, "/-/events"))
            .unwrap();
        let events = resp.body.unwrap();
        assert_eq!(events.get("events").unwrap().as_array().unwrap().len(), 4);
    }

    #[test]
    fn health_endpoint_reports_breaker_state_and_transport_counters() {
        let routes = routes_with(0).with_transport(Arc::new(PooledClient::default()));
        let resp = routes
            .try_handle(&RestRequest::new(HttpMethod::Get, "/-/health"))
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let body = resp.body.unwrap();
        assert_eq!(body.get("status").unwrap().as_str(), Some("ok"));
        assert!(body.get("backends").unwrap().as_array().unwrap().is_empty());
        assert_eq!(
            body.get("transport")
                .unwrap()
                .get("sheds")
                .unwrap()
                .as_int(),
            Some(0)
        );
        let metrics = routes
            .try_handle(&RestRequest::new(HttpMethod::Get, "/-/metrics"))
            .unwrap();
        assert!(metrics.body.unwrap().get("transport").is_some());
    }

    #[test]
    fn health_endpoint_reports_overload_block() {
        use cm_obs::Lane;
        let stats = Arc::new(OverloadStats::new());
        let brownout = Arc::new(BrownoutSignal::new());
        stats.note_admitted(Lane::Read, std::time::Duration::from_millis(2));
        stats.note_shed(Lane::Read);
        stats.adjust_depth(Lane::Mutation, 3);
        let routes = routes_with(0).with_overload(Arc::clone(&stats), Arc::clone(&brownout));
        let resp = routes
            .try_handle(&RestRequest::new(HttpMethod::Get, "/-/health"))
            .unwrap();
        let body = resp.body.unwrap();
        // Shedding alone is load management, not degradation.
        assert_eq!(body.get("status").unwrap().as_str(), Some("ok"));
        let overload = body.get("overload").unwrap();
        assert_eq!(
            overload.get("shed").unwrap().get("read").unwrap().as_int(),
            Some(1)
        );
        assert_eq!(
            overload
                .get("lane_depths")
                .unwrap()
                .get("mutation")
                .unwrap()
                .as_int(),
            Some(3)
        );
        assert_eq!(
            overload
                .get("brownout")
                .unwrap()
                .get("step")
                .unwrap()
                .as_int(),
            Some(0)
        );
        // A brownout step marks the node degraded for pollers.
        brownout.set_step(2);
        let resp = routes
            .try_handle(&RestRequest::new(HttpMethod::Get, "/-/health"))
            .unwrap();
        let body = resp.body.unwrap();
        assert_eq!(body.get("status").unwrap().as_str(), Some("degraded"));
        assert_eq!(
            body.get("overload")
                .unwrap()
                .get("brownout")
                .unwrap()
                .get("step")
                .unwrap()
                .as_int(),
            Some(2)
        );
        // `/-/metrics` carries the same block.
        let metrics = routes
            .try_handle(&RestRequest::new(HttpMethod::Get, "/-/metrics"))
            .unwrap();
        assert!(metrics.body.unwrap().get("overload").is_some());
    }

    #[test]
    fn health_endpoint_without_transport_is_plain_ok() {
        let routes = routes_with(0);
        let resp = routes
            .try_handle(&RestRequest::new(HttpMethod::Get, "/-/health"))
            .unwrap();
        let body = resp.body.unwrap();
        assert_eq!(body.get("status").unwrap().as_str(), Some("ok"));
        assert!(body.get("backends").is_none());
    }

    #[test]
    fn unknown_admin_path_is_404_and_writes_are_405() {
        let routes = routes_with(0);
        let resp = routes
            .try_handle(&RestRequest::new(HttpMethod::Get, "/-/nope"))
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        let resp = routes
            .try_handle(&RestRequest::new(HttpMethod::Post, "/-/metrics"))
            .unwrap();
        assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
    }

    #[test]
    fn stream_endpoint_without_log_is_404() {
        let routes = routes_with(0);
        let resp = routes
            .try_handle(&RestRequest::new(HttpMethod::Get, "/-/events/stream"))
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[derive(Debug)]
    struct CannedTail;

    impl cm_obs::TailStream for CannedTail {
        fn tail_from(&self, from: u64, max: usize, _wait_ms: u64) -> cm_obs::StreamBatch {
            // Ten committed records, offsets 0..10; serve what the
            // cursor and batch size allow.
            let end = 10;
            let start = from.min(end);
            let next = (start + max as u64).min(end);
            cm_obs::StreamBatch {
                start,
                next,
                lagged: 0,
                end,
                records: (start..next)
                    .map(|o| Json::object(vec![("offset", Json::Int(o as i64))]))
                    .collect(),
            }
        }
    }

    #[test]
    fn stream_endpoint_pages_with_resume_cursor() {
        let routes = routes_with(0).with_stream(Arc::new(CannedTail));
        let resp = routes
            .try_handle(&RestRequest::new(
                HttpMethod::Get,
                "/-/events/stream?from=4&max=3",
            ))
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let body = resp.body.unwrap();
        assert_eq!(body.get("start").unwrap().as_int(), Some(4));
        assert_eq!(body.get("next").unwrap().as_int(), Some(7));
        assert_eq!(body.get("end").unwrap().as_int(), Some(10));
        assert_eq!(body.get("records").unwrap().as_array().unwrap().len(), 3);
    }

    /// A tail with no committed records that honours `wait_ms` by
    /// sleeping, recording the largest wait it was asked to block for.
    #[derive(Debug, Default)]
    struct EmptyBlockingTail {
        waits: std::sync::atomic::AtomicU64,
    }

    impl cm_obs::TailStream for EmptyBlockingTail {
        fn tail_from(&self, _from: u64, _max: usize, wait_ms: u64) -> cm_obs::StreamBatch {
            self.waits
                .fetch_max(wait_ms, std::sync::atomic::Ordering::SeqCst);
            if wait_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(wait_ms));
            }
            cm_obs::StreamBatch {
                start: 0,
                next: 0,
                lagged: 0,
                end: 0,
                records: Vec::new(),
            }
        }
    }

    #[test]
    fn empty_longpoll_parks_on_the_reactor_instead_of_blocking() {
        let tail = Arc::new(EmptyBlockingTail::default());
        let routes = routes_with(0).with_stream(Arc::clone(&tail) as Arc<dyn cm_obs::TailStream>);
        let req = RestRequest::new(HttpMethod::Get, "/-/events/stream?wait_ms=5000");
        let start = std::time::Instant::now();
        // Simulate a reactor dispatch: parking is available.
        let (resp, park) = crate::server::with_park_scope(|| routes.try_handle(&req).unwrap());
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(park, Some(5000), "handler must ask to park, not block");
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "a parked poll must return immediately"
        );
        // The blocking path was never taken.
        assert_eq!(tail.waits.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    fn longpoll_with_data_answers_immediately_even_on_the_reactor() {
        let routes = routes_with(0).with_stream(Arc::new(CannedTail));
        let req = RestRequest::new(
            HttpMethod::Get,
            "/-/events/stream?from=0&max=3&wait_ms=5000",
        );
        let (resp, park) = crate::server::with_park_scope(|| routes.try_handle(&req).unwrap());
        assert_eq!(park, None, "data available: no reason to park");
        let body = resp.body.unwrap();
        assert_eq!(body.get("records").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn worker_pool_longpoll_blocking_is_capped() {
        let tail = Arc::new(EmptyBlockingTail::default());
        // Cap 0: no poller may block a worker; waits degrade to
        // immediate empty batches.
        let routes = routes_with(0)
            .with_stream(Arc::clone(&tail) as Arc<dyn cm_obs::TailStream>)
            .with_parked_cap(0);
        let req = RestRequest::new(HttpMethod::Get, "/-/events/stream?wait_ms=2000");
        let start = std::time::Instant::now();
        // No park scope: this is a worker-pool dispatch.
        let resp = routes.try_handle(&req).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "over-cap pollers must not block"
        );
        assert_eq!(tail.waits.load(std::sync::atomic::Ordering::SeqCst), 0);
        assert!(resp
            .body
            .unwrap()
            .get("records")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn worker_pool_longpoll_blocks_within_the_cap() {
        let tail = Arc::new(EmptyBlockingTail::default());
        let routes = routes_with(0)
            .with_stream(Arc::clone(&tail) as Arc<dyn cm_obs::TailStream>)
            .with_parked_cap(1);
        let req = RestRequest::new(HttpMethod::Get, "/-/events/stream?wait_ms=30");
        let resp = routes.try_handle(&req).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        // The blocking wait happened (and released its slot after).
        assert_eq!(tail.waits.load(std::sync::atomic::Ordering::SeqCst), 30);
        assert_eq!(
            routes
                .parked_pollers
                .load(std::sync::atomic::Ordering::SeqCst),
            0
        );
    }

    #[test]
    fn wrap_composes_with_an_application_handler() {
        let routes = routes_with(1);
        let handler = routes.wrap(Arc::new(|req: RestRequest| {
            RestResponse::ok(Json::Str(req.path))
        }));
        let app = handler(RestRequest::new(HttpMethod::Get, "/app"));
        assert_eq!(app.body, Some(Json::Str("/app".into())));
        let admin = handler(RestRequest::new(HttpMethod::Get, "/-/metrics"));
        assert_eq!(
            admin.body.unwrap().get("requests").unwrap().as_int(),
            Some(1)
        );
    }
}
