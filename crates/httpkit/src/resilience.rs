//! Resilience primitives for the monitor↔cloud path: per-request
//! deadline budgets, capped exponential backoff with deterministic
//! jitter, and a per-backend circuit breaker.
//!
//! The monitor is only as trustworthy as its transport semantics. A
//! backend hiccup must neither burn the worker pool on connect timeouts
//! (hence the breaker sheds fast once a backend is known-down) nor hang
//! a monitored request forever (hence every request carries a deadline
//! budget that retries and backoff sleeps are paid out of). All
//! randomness is a seeded [`XorShift64Star`], so retry schedules — and
//! the chaos tests that exercise them — are reproducible.

use crate::wire::WireError;
use cm_obs::XorShift64Star;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// An error from the resilient client path. Extends [`WireError`] with
/// the two outcomes the resilience layer itself produces: a shed
/// request (open breaker) and an exhausted deadline budget.
#[derive(Debug)]
pub enum TransportError {
    /// The underlying exchange failed (connect, write, read, parse).
    Wire(WireError),
    /// The per-backend circuit breaker is open: the request was shed
    /// without touching the socket.
    CircuitOpen {
        /// The backend whose breaker shed the request.
        addr: SocketAddr,
    },
    /// The per-request deadline budget ran out before a response
    /// arrived (possibly mid-retry).
    DeadlineExceeded {
        /// The budget the request started with.
        budget: Duration,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Wire(e) => write!(f, "{e}"),
            TransportError::CircuitOpen { addr } => {
                write!(f, "circuit breaker open for {addr}: request shed")
            }
            TransportError::DeadlineExceeded { budget } => {
                write!(f, "request deadline of {}ms exhausted", budget.as_millis())
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

/// The wall-clock budget of one logical request, shared by every
/// attempt (connects, exchanges, backoff sleeps) made on its behalf.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineBudget {
    started: Instant,
    budget: Duration,
}

impl DeadlineBudget {
    /// Start a budget of `budget` from now.
    #[must_use]
    pub fn new(budget: Duration) -> Self {
        DeadlineBudget {
            started: Instant::now(),
            budget,
        }
    }

    /// The budget this request started with.
    #[must_use]
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// Time left, or `None` once the budget is exhausted.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        let spent = self.started.elapsed();
        (spent < self.budget).then(|| self.budget - spent)
    }

    /// Is there room for `cost` (e.g. a backoff sleep plus a minimal
    /// attempt) inside the remaining budget?
    #[must_use]
    pub fn affords(&self, cost: Duration) -> bool {
        self.remaining().is_some_and(|left| left > cost)
    }
}

/// Capped exponential backoff with deterministic jitter.
///
/// Delay for attempt `n` (0-based) is `min(cap, base * 2^n)` scaled by
/// a jitter factor in `[0.5, 1.0)` drawn from a seeded xorshift64* —
/// two schedules built from the same seed produce identical delays.
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    base: Duration,
    cap: Duration,
    rng: XorShift64Star,
}

impl BackoffSchedule {
    /// A schedule with the given base delay, cap, and jitter seed.
    #[must_use]
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        BackoffSchedule {
            base,
            cap,
            rng: XorShift64Star::new(seed),
        }
    }

    /// The jittered delay before retry attempt `attempt` (0-based).
    pub fn delay(&mut self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        exp.mul_f64(0.5 + 0.5 * self.rng.gen_f64())
    }

    /// The first `n` delays, for schedule introspection in tests.
    #[must_use]
    pub fn take(mut self, n: u32) -> Vec<Duration> {
        (0..n).map(|i| self.delay(i)).collect()
    }
}

/// Observable breaker state, for `/-/health` and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive fresh-connection failures are counted.
    Closed,
    /// The backend is considered down; requests are shed until the
    /// cooldown elapses.
    Open,
    /// One probe request is in flight; its outcome decides between
    /// `Closed` and re-tripping to `Open`. A probe that never reports
    /// back expires after one cooldown, at which point the next
    /// admission becomes a fresh probe — `HalfOpen` is never a trap.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case label (`"closed"`, `"open"`, `"half-open"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What the breaker decided about an arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: proceed normally.
    Allow,
    /// Breaker was open and the cooldown elapsed: proceed, but this
    /// request is the half-open probe — its failure re-trips the
    /// breaker immediately and it must not retry.
    Probe,
    /// Breaker open (or a probe already in flight): shed without
    /// touching the socket.
    Shed,
}

enum State {
    Closed { failures: u32 },
    Open { until: Instant },
    HalfOpen { since: Instant },
}

/// The closed→open→half-open circuit breaker for one backend address.
///
/// Only failures on *fresh* connections count toward tripping: a stale
/// pooled connection says nothing about backend health. A `threshold`
/// of 0 disables the breaker entirely (it always admits).
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: State,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("state", &self.state().as_str())
            .field("threshold", &self.threshold)
            .finish()
    }
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive
    /// fresh-connection failures, staying open for `cooldown`.
    #[must_use]
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold,
            cooldown,
            state: State::Closed { failures: 0 },
        }
    }

    /// The observable state (an elapsed-cooldown `Open` still reports
    /// `Open` until the next admission converts it to the probe).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        match self.state {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Consecutive fresh-connection failures while closed.
    #[must_use]
    pub fn consecutive_failures(&self) -> u32 {
        match self.state {
            State::Closed { failures } => failures,
            _ => 0,
        }
    }

    /// Admit, shed, or probe an arriving request.
    pub fn admit(&mut self, now: Instant) -> Admission {
        if self.threshold == 0 {
            return Admission::Allow;
        }
        match self.state {
            State::Closed { .. } => Admission::Allow,
            State::Open { until } if now >= until => {
                self.state = State::HalfOpen { since: now };
                Admission::Probe
            }
            State::Open { .. } => Admission::Shed,
            // A probe that has gone unreported for a whole cooldown is
            // presumed dead (its thread panicked, or it was abandoned
            // before resolving): re-admit a fresh probe rather than
            // shedding forever — HalfOpen must not be a trap state.
            State::HalfOpen { since } if now >= since + self.cooldown => {
                self.state = State::HalfOpen { since: now };
                Admission::Probe
            }
            // While the probe is in flight every other request sheds:
            // one canary is enough to learn whether the backend is back.
            State::HalfOpen { .. } => Admission::Shed,
        }
    }

    /// Whether the breaker is in its rest state — closed with no
    /// consecutive failures on record. A pristine breaker needs no
    /// bookkeeping on success, which callers may exploit as a fast path.
    #[must_use]
    pub fn is_pristine(&self) -> bool {
        matches!(self.state, State::Closed { failures: 0 })
    }

    /// Record a successful exchange. Returns `true` when this closed a
    /// previously open/half-open breaker (a state transition).
    pub fn on_success(&mut self) -> bool {
        let reopened = !matches!(self.state, State::Closed { .. });
        self.state = State::Closed { failures: 0 };
        reopened
    }

    /// Record a fresh-connection failure. Returns `true` when this
    /// tripped the breaker open (including a half-open re-trip).
    pub fn on_failure(&mut self, now: Instant) -> bool {
        if self.threshold == 0 {
            return false;
        }
        match &mut self.state {
            State::Closed { failures } => {
                *failures += 1;
                if *failures >= self.threshold {
                    self.state = State::Open {
                        until: now + self.cooldown,
                    };
                    return true;
                }
                false
            }
            // The half-open probe failed: re-trip for a full cooldown.
            State::HalfOpen { .. } => {
                self.state = State::Open {
                    until: now + self.cooldown,
                };
                true
            }
            State::Open { .. } => false,
        }
    }
}

/// Counters the resilient client maintains, shared with `/-/health`.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Idempotent attempts re-issued after a fresh-connection failure.
    pub retries: AtomicU64,
    /// Requests shed by an open breaker without touching the socket.
    pub sheds: AtomicU64,
    /// closed→open transitions (including half-open re-trips).
    pub breaker_opened: AtomicU64,
    /// open→half-open transitions (probe admissions).
    pub breaker_half_opened: AtomicU64,
    /// half-open→closed transitions (successful probes).
    pub breaker_closed: AtomicU64,
    /// Requests abandoned because the deadline budget ran out.
    pub deadline_exhausted: AtomicU64,
}

impl TransportStats {
    /// All counters as `(label, value)` pairs, in a fixed order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("retries", self.retries.load(Ordering::Relaxed)),
            ("sheds", self.sheds.load(Ordering::Relaxed)),
            (
                "breaker_opened",
                self.breaker_opened.load(Ordering::Relaxed),
            ),
            (
                "breaker_half_opened",
                self.breaker_half_opened.load(Ordering::Relaxed),
            ),
            (
                "breaker_closed",
                self.breaker_closed.load(Ordering::Relaxed),
            ),
            (
                "deadline_exhausted",
                self.deadline_exhausted.load(Ordering::Relaxed),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_for_equal_seeds() {
        let a = BackoffSchedule::new(Duration::from_millis(50), Duration::from_secs(1), 42);
        let b = BackoffSchedule::new(Duration::from_millis(50), Duration::from_secs(1), 42);
        assert_eq!(a.take(8), b.take(8));
        let c = BackoffSchedule::new(Duration::from_millis(50), Duration::from_secs(1), 43);
        assert_ne!(
            BackoffSchedule::new(Duration::from_millis(50), Duration::from_secs(1), 42).take(8),
            c.take(8),
            "different seeds must jitter differently"
        );
    }

    #[test]
    fn backoff_grows_exponentially_and_respects_the_cap() {
        let mut s = BackoffSchedule::new(Duration::from_millis(10), Duration::from_millis(100), 7);
        for attempt in 0..32 {
            let d = s.delay(attempt);
            let exp = Duration::from_millis(10)
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(Duration::from_millis(100));
            // Jitter keeps the delay within [exp/2, exp).
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} < {:?}", exp / 2);
            assert!(d < exp, "attempt {attempt}: {d:?} >= {exp:?}");
            assert!(d <= Duration::from_millis(100));
        }
    }

    #[test]
    fn deadline_budget_exhausts_and_refuses_unaffordable_costs() {
        let b = DeadlineBudget::new(Duration::from_secs(60));
        assert!(b.remaining().is_some());
        assert!(b.affords(Duration::from_secs(1)));
        assert!(!b.affords(Duration::from_secs(120)));
        let tiny = DeadlineBudget::new(Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(2));
        assert!(tiny.remaining().is_none());
        assert!(!tiny.affords(Duration::ZERO));
    }

    #[test]
    fn breaker_trips_after_threshold_and_sheds_while_open() {
        let mut b = CircuitBreaker::new(3, Duration::from_secs(10));
        let t0 = Instant::now();
        assert_eq!(b.admit(t0), Admission::Allow);
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert_eq!(b.consecutive_failures(), 2);
        assert!(b.on_failure(t0), "third failure trips the breaker");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(t0 + Duration::from_secs(1)), Admission::Shed);
    }

    #[test]
    fn breaker_half_open_probe_closes_on_success() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(100));
        let t0 = Instant::now();
        assert!(b.on_failure(t0));
        // Cooldown elapsed: exactly one probe, everyone else sheds.
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(b.admit(t1), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(t1), Admission::Shed);
        assert!(b.on_success(), "probe success closes the breaker");
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(t1), Admission::Allow);
    }

    #[test]
    fn breaker_half_open_re_trips_on_probe_failure() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(100));
        let t0 = Instant::now();
        assert!(b.on_failure(t0));
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(b.admit(t1), Admission::Probe);
        assert!(b.on_failure(t1), "probe failure re-trips");
        assert_eq!(b.state(), BreakerState::Open);
        // A full new cooldown applies from the re-trip.
        assert_eq!(b.admit(t1 + Duration::from_millis(50)), Admission::Shed);
        assert_eq!(b.admit(t1 + Duration::from_millis(150)), Admission::Probe);
    }

    #[test]
    fn breaker_half_open_probe_that_never_reports_expires_into_a_new_probe() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(100));
        let t0 = Instant::now();
        assert!(b.on_failure(t0));
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(b.admit(t1), Admission::Probe);
        // While the probe could still report back, everyone else sheds…
        assert_eq!(b.admit(t1 + Duration::from_millis(50)), Admission::Shed);
        // …but once it has gone unresolved for a full cooldown it is
        // presumed dead: a new probe is admitted instead of shedding
        // forever (HalfOpen must have a time-based escape).
        assert_eq!(b.admit(t1 + Duration::from_millis(100)), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The replacement probe gets its own grace period…
        assert_eq!(b.admit(t1 + Duration::from_millis(120)), Admission::Shed);
        // …and its success closes the breaker as usual.
        assert!(b.on_success());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let mut b = CircuitBreaker::new(0, Duration::from_secs(1));
        let t0 = Instant::now();
        for _ in 0..50 {
            assert!(!b.on_failure(t0));
        }
        assert_eq!(b.admit(t0), Admission::Allow);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn closing_after_success_resets_failure_count() {
        let mut b = CircuitBreaker::new(3, Duration::from_secs(1));
        let t0 = Instant::now();
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert!(!b.on_success(), "closed stays closed");
        assert_eq!(b.consecutive_failures(), 0);
    }
}
