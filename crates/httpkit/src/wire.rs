//! HTTP/1.1 wire format: parsing and serialisation of requests and
//! responses over byte streams.
//!
//! Supports the slice of HTTP the monitor and simulator need: one message
//! per connection (`Connection: close`), `Content-Length`-delimited bodies,
//! and JSON payloads. Chunked transfer encoding is not implemented — the
//! peer is always our own client/server pair or cURL with small bodies.

use cm_model::HttpMethod;
use cm_rest::{parse_json, Json, RestRequest, RestResponse, StatusCode};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted header section size (DoS guard).
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Maximum accepted body size (DoS guard).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A wire-level error.
#[derive(Debug)]
pub enum WireError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed HTTP framing or header syntax.
    Malformed(String),
    /// The peer closed the connection before a full message arrived.
    UnexpectedEof,
    /// Header or body exceeded the size limits.
    TooLarge(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "I/O error: {e}"),
            WireError::Malformed(m) => write!(f, "malformed HTTP message: {m}"),
            WireError::UnexpectedEof => write!(f, "unexpected end of stream"),
            WireError::TooLarge(what) => write!(f, "HTTP {what} too large"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, WireError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Err(WireError::UnexpectedEof);
                }
                break;
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                if byte[0] != b'\r' {
                    line.push(byte[0]);
                }
                if line.len() > *budget {
                    return Err(WireError::TooLarge("header"));
                }
            }
        }
    }
    *budget = budget.saturating_sub(line.len());
    String::from_utf8(line).map_err(|_| WireError::Malformed("non-UTF-8 header".into()))
}

fn read_headers(
    reader: &mut impl BufRead,
    budget: &mut usize,
) -> Result<Vec<(String, String)>, WireError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, budget)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| WireError::Malformed(format!("header line `{line}`")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
}

fn content_length(headers: &[(String, String)]) -> Result<usize, WireError> {
    for (n, v) in headers {
        if n.eq_ignore_ascii_case("content-length") {
            let len: usize = v
                .parse()
                .map_err(|_| WireError::Malformed(format!("content-length `{v}`")))?;
            if len > MAX_BODY_BYTES {
                return Err(WireError::TooLarge("body"));
            }
            return Ok(len);
        }
    }
    Ok(0)
}

fn read_body(reader: &mut impl BufRead, len: usize) -> Result<Option<Json>, WireError> {
    if len == 0 {
        return Ok(None);
    }
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::UnexpectedEof
        } else {
            WireError::Io(e)
        }
    })?;
    let text = String::from_utf8(buf).map_err(|_| WireError::Malformed("non-UTF-8 body".into()))?;
    let json = parse_json(&text).map_err(|e| WireError::Malformed(format!("body JSON: {e}")))?;
    Ok(Some(json))
}

/// Read one HTTP request from a stream.
///
/// # Errors
///
/// [`WireError`] on I/O failure, malformed framing, unsupported methods,
/// or bodies that are not valid JSON.
pub fn read_request(stream: &mut impl Read) -> Result<RestRequest, WireError> {
    let mut reader = BufReader::new(stream);
    let mut budget = MAX_HEADER_BYTES;
    let request_line = read_line(&mut reader, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method_str = parts
        .next()
        .ok_or_else(|| WireError::Malformed("empty request line".into()))?;
    let path = parts
        .next()
        .ok_or_else(|| WireError::Malformed("request line without path".into()))?
        .to_string();
    let method: HttpMethod = method_str
        .parse()
        .map_err(|e| WireError::Malformed(format!("{e}")))?;
    let headers = read_headers(&mut reader, &mut budget)?;
    let len = content_length(&headers)?;
    let body = read_body(&mut reader, len)?;
    Ok(RestRequest {
        method,
        path,
        headers,
        body,
    })
}

/// Read one HTTP response from a stream.
///
/// # Errors
///
/// As [`read_request`].
pub fn read_response(stream: &mut impl Read) -> Result<RestResponse, WireError> {
    let mut reader = BufReader::new(stream);
    let mut budget = MAX_HEADER_BYTES;
    let status_line = read_line(&mut reader, &mut budget)?;
    let mut parts = status_line.split_whitespace();
    let _version = parts
        .next()
        .ok_or_else(|| WireError::Malformed("empty status line".into()))?;
    let code: u16 = parts
        .next()
        .ok_or_else(|| WireError::Malformed("status line without code".into()))?
        .parse()
        .map_err(|_| WireError::Malformed("non-numeric status code".into()))?;
    let headers = read_headers(&mut reader, &mut budget)?;
    let len = content_length(&headers)?;
    let body = read_body(&mut reader, len)?;
    Ok(RestResponse {
        status: StatusCode(code),
        headers,
        body,
    })
}

/// Write one HTTP request to a stream (`Connection: close` semantics).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_request(stream: &mut impl Write, request: &RestRequest) -> std::io::Result<()> {
    let body_text = request.body.as_ref().map(Json::to_compact_string);
    let mut out = format!("{} {} HTTP/1.1\r\n", request.method, request.path);
    for (n, v) in &request.headers {
        if n.eq_ignore_ascii_case("content-length") {
            continue; // we compute it ourselves
        }
        out.push_str(&format!("{n}: {v}\r\n"));
    }
    if let Some(text) = &body_text {
        out.push_str("Content-Type: application/json\r\n");
        out.push_str(&format!("Content-Length: {}\r\n", text.len()));
    } else {
        out.push_str("Content-Length: 0\r\n");
    }
    out.push_str("Connection: close\r\n\r\n");
    if let Some(text) = body_text {
        out.push_str(&text);
    }
    stream.write_all(out.as_bytes())
}

/// Write one HTTP response to a stream.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_response(stream: &mut impl Write, response: &RestResponse) -> std::io::Result<()> {
    let body_text = response.body.as_ref().map(Json::to_compact_string);
    let mut out = format!(
        "HTTP/1.1 {} {}\r\n",
        response.status.0,
        response.status.reason()
    );
    for (n, v) in &response.headers {
        if n.eq_ignore_ascii_case("content-length") {
            continue;
        }
        out.push_str(&format!("{n}: {v}\r\n"));
    }
    if let Some(text) = &body_text {
        out.push_str("Content-Type: application/json\r\n");
        out.push_str(&format!("Content-Length: {}\r\n", text.len()));
    } else {
        out.push_str("Content-Length: 0\r\n");
    }
    out.push_str("Connection: close\r\n\r\n");
    if let Some(text) = body_text {
        out.push_str(&text);
    }
    stream.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: &RestRequest) -> RestRequest {
        let mut buf = Vec::new();
        write_request(&mut buf, req).unwrap();
        read_request(&mut Cursor::new(buf)).unwrap()
    }

    fn roundtrip_response(resp: &RestResponse) -> RestResponse {
        let mut buf = Vec::new();
        write_response(&mut buf, resp).unwrap();
        read_response(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn request_roundtrip_with_body() {
        let req = RestRequest::new(HttpMethod::Post, "/v3/4/volumes")
            .auth_token("tok-1")
            .json(Json::object(vec![("size", Json::Int(10))]));
        let back = roundtrip_request(&req);
        assert_eq!(back.method, HttpMethod::Post);
        assert_eq!(back.path, "/v3/4/volumes");
        assert_eq!(back.token(), Some("tok-1"));
        assert_eq!(back.body, req.body);
    }

    #[test]
    fn request_roundtrip_without_body() {
        let req = RestRequest::new(HttpMethod::Delete, "/v3/4/volumes/7");
        let back = roundtrip_request(&req);
        assert_eq!(back.body, None);
        assert_eq!(back.method, HttpMethod::Delete);
    }

    #[test]
    fn response_roundtrip() {
        let resp = RestResponse::error(StatusCode::FORBIDDEN, "no");
        let back = roundtrip_response(&resp);
        assert_eq!(back.status, StatusCode::FORBIDDEN);
        assert_eq!(back.error_message(), Some("no"));
        let no_content = roundtrip_response(&RestResponse::no_content());
        assert_eq!(no_content.status, StatusCode::NO_CONTENT);
        assert_eq!(no_content.body, None);
    }

    #[test]
    fn parses_curl_style_request() {
        // The paper's cURL invocation shape.
        let raw = "DELETE /cmonitor/volumes/4 HTTP/1.1\r\nHost: 127.0.0.1:8000\r\nX-Auth-Token: tok-9\r\nContent-Length: 0\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw.as_bytes())).unwrap();
        assert_eq!(req.method, HttpMethod::Delete);
        assert_eq!(req.path, "/cmonitor/volumes/4");
        assert_eq!(req.token(), Some("tok-9"));
    }

    #[test]
    fn rejects_unknown_method() {
        let raw = "BREW /pot HTTP/1.1\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(raw.as_bytes())),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_bad_header() {
        let raw = "GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n";
        assert!(read_request(&mut Cursor::new(raw.as_bytes())).is_err());
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = "GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}";
        assert!(matches!(
            read_request(&mut Cursor::new(raw.as_bytes())),
            Err(WireError::UnexpectedEof)
        ));
    }

    #[test]
    fn rejects_non_json_body() {
        let raw = "GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        assert!(read_request(&mut Cursor::new(raw.as_bytes())).is_err());
    }

    #[test]
    fn rejects_empty_stream() {
        assert!(matches!(
            read_request(&mut Cursor::new(b"".as_slice())),
            Err(WireError::UnexpectedEof)
        ));
    }

    #[test]
    fn rejects_oversized_content_length() {
        let raw = format!(
            "GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            usize::MAX / 2
        );
        assert!(matches!(
            read_request(&mut Cursor::new(raw.as_bytes())),
            Err(WireError::TooLarge(_))
        ));
    }
}
