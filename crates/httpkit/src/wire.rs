//! HTTP/1.1 wire format: parsing and serialisation of requests and
//! responses over byte streams.
//!
//! Supports the slice of HTTP the monitor and simulator need: keep-alive
//! or close connection semantics, `Content-Length`-delimited bodies, and
//! JSON payloads. Chunked transfer encoding is not implemented — the peer
//! is always our own client/server pair or cURL with small bodies.
//!
//! Serialisation goes through [`serialize_request`] / [`serialize_response`]
//! into a caller-provided byte buffer, so persistent connections reuse one
//! buffer per worker instead of allocating a fresh `String` per message and
//! per header line. The stream-writing [`write_request`] /
//! [`write_response`] wrappers keep the historical one-shot
//! (`Connection: close`) behaviour byte for byte.

use cm_model::HttpMethod;
use cm_rest::{parse_json, Json, RestRequest, RestResponse, StatusCode};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// The connection directive a serialised message carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionMode {
    /// `Connection: keep-alive` — the sender intends to reuse the
    /// connection for further messages.
    KeepAlive,
    /// `Connection: close` — the sender closes after this message.
    Close,
}

impl ConnectionMode {
    fn header_value(self) -> &'static str {
        match self {
            ConnectionMode::KeepAlive => "keep-alive",
            ConnectionMode::Close => "close",
        }
    }
}

/// Does this header list ask for the connection to be closed after the
/// current message (`Connection: close`)?
#[must_use]
pub fn wants_close(headers: &[(String, String)]) -> bool {
    headers.iter().any(|(n, v)| {
        n.eq_ignore_ascii_case("connection") && v.trim().eq_ignore_ascii_case("close")
    })
}

/// Maximum accepted header section size (DoS guard).
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Maximum accepted body size (DoS guard).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A wire-level error.
#[derive(Debug)]
pub enum WireError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed HTTP framing or header syntax.
    Malformed(String),
    /// The peer closed the connection before a full message arrived.
    UnexpectedEof,
    /// Header or body exceeded the size limits.
    TooLarge(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "I/O error: {e}"),
            WireError::Malformed(m) => write!(f, "malformed HTTP message: {m}"),
            WireError::UnexpectedEof => write!(f, "unexpected end of stream"),
            WireError::TooLarge(what) => write!(f, "HTTP {what} too large"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, WireError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Err(WireError::UnexpectedEof);
                }
                break;
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                if byte[0] != b'\r' {
                    line.push(byte[0]);
                }
                if line.len() > *budget {
                    return Err(WireError::TooLarge("header"));
                }
            }
        }
    }
    *budget = budget.saturating_sub(line.len());
    String::from_utf8(line).map_err(|_| WireError::Malformed("non-UTF-8 header".into()))
}

fn read_headers(
    reader: &mut impl BufRead,
    budget: &mut usize,
) -> Result<Vec<(String, String)>, WireError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, budget)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| WireError::Malformed(format!("header line `{line}`")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
}

fn content_length(headers: &[(String, String)]) -> Result<usize, WireError> {
    for (n, v) in headers {
        if n.eq_ignore_ascii_case("content-length") {
            let len: usize = v
                .parse()
                .map_err(|_| WireError::Malformed(format!("content-length `{v}`")))?;
            if len > MAX_BODY_BYTES {
                return Err(WireError::TooLarge("body"));
            }
            return Ok(len);
        }
    }
    Ok(0)
}

fn read_body(reader: &mut impl BufRead, len: usize) -> Result<Option<Json>, WireError> {
    if len == 0 {
        return Ok(None);
    }
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::UnexpectedEof
        } else {
            WireError::Io(e)
        }
    })?;
    let text = String::from_utf8(buf).map_err(|_| WireError::Malformed("non-UTF-8 body".into()))?;
    let json = parse_json(&text).map_err(|e| WireError::Malformed(format!("body JSON: {e}")))?;
    Ok(Some(json))
}

/// Read one HTTP request from a stream.
///
/// # Errors
///
/// [`WireError`] on I/O failure, malformed framing, unsupported methods,
/// or bodies that are not valid JSON.
pub fn read_request(stream: &mut impl Read) -> Result<RestRequest, WireError> {
    let mut reader = BufReader::new(stream);
    read_request_buf(&mut reader)
}

/// Read one HTTP request from an existing buffered reader.
///
/// Keep-alive connections must parse every message through the *same*
/// buffered reader: the buffer may already hold the first bytes of the
/// next pipelined message, which a fresh [`BufReader`] would lose.
///
/// # Errors
///
/// As [`read_request`].
pub fn read_request_buf(reader: &mut impl BufRead) -> Result<RestRequest, WireError> {
    let mut budget = MAX_HEADER_BYTES;
    let request_line = read_line(reader, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method_str = parts
        .next()
        .ok_or_else(|| WireError::Malformed("empty request line".into()))?;
    let path = parts
        .next()
        .ok_or_else(|| WireError::Malformed("request line without path".into()))?
        .to_string();
    let method: HttpMethod = method_str
        .parse()
        .map_err(|e| WireError::Malformed(format!("{e}")))?;
    let headers = read_headers(reader, &mut budget)?;
    let len = content_length(&headers)?;
    let body = read_body(reader, len)?;
    Ok(RestRequest {
        method,
        path,
        headers,
        body,
    })
}

/// Try to parse one complete HTTP request from the front of `buf`.
///
/// The readiness-driven transport accumulates raw bytes per connection
/// and calls this after every read: `Ok(Some((request, consumed)))`
/// yields a complete message and how many bytes it occupied (the caller
/// drains them and retries, which is what makes pipelining work — every
/// complete request already in the buffer is parsed before the socket is
/// re-armed), `Ok(None)` means the buffer holds only a message prefix
/// (read more), and `Err` is an authoritative reject: a syntactically
/// complete-but-malformed head, an oversized header section, or a
/// declared `Content-Length` beyond the body cap.
///
/// # Errors
///
/// [`WireError::Malformed`] / [`WireError::TooLarge`] as
/// [`read_request`]; never [`WireError::UnexpectedEof`] (a short buffer
/// is `Ok(None)`).
pub fn try_parse_request(buf: &[u8]) -> Result<Option<(RestRequest, usize)>, WireError> {
    // Only hand the buffer to the line parser once the header section is
    // complete: `read_line` treats end-of-buffer as end-of-line, so a
    // partial header like `Hos` would otherwise be misread as a
    // (malformed) whole line. A head that never terminates within the
    // header cap is an authoritative reject, matching the blocking
    // parser's cumulative line budget.
    if !head_is_complete(buf) {
        if buf.len() > MAX_HEADER_BYTES + 2 {
            return Err(WireError::TooLarge("header"));
        }
        return Ok(None);
    }
    let mut cursor = std::io::Cursor::new(buf);
    match read_request_buf(&mut cursor) {
        Ok(request) => {
            let consumed = usize::try_from(cursor.position()).unwrap_or(buf.len());
            Ok(Some((request, consumed)))
        }
        // With the head complete, the only "ran out of bytes" path left
        // is a short body: the message is simply not complete yet.
        Err(WireError::UnexpectedEof) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Does `buf` contain a full header section (an empty line)? The line
/// parser splits on `\n` and discards `\r`, so the terminator is two
/// newlines separated by at most one carriage return.
fn head_is_complete(buf: &[u8]) -> bool {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return true,
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return true,
                _ => {}
            }
        }
        i += 1;
    }
    false
}

/// Read one HTTP response from a stream.
///
/// # Errors
///
/// As [`read_request`].
pub fn read_response(stream: &mut impl Read) -> Result<RestResponse, WireError> {
    let mut reader = BufReader::new(stream);
    read_response_buf(&mut reader)
}

/// Read one HTTP response from an existing buffered reader (the
/// keep-alive counterpart of [`read_response`]; see [`read_request_buf`]).
///
/// # Errors
///
/// As [`read_request`].
pub fn read_response_buf(reader: &mut impl BufRead) -> Result<RestResponse, WireError> {
    let mut budget = MAX_HEADER_BYTES;
    let status_line = read_line(reader, &mut budget)?;
    let mut parts = status_line.split_whitespace();
    let _version = parts
        .next()
        .ok_or_else(|| WireError::Malformed("empty status line".into()))?;
    let code: u16 = parts
        .next()
        .ok_or_else(|| WireError::Malformed("status line without code".into()))?
        .parse()
        .map_err(|_| WireError::Malformed("non-numeric status code".into()))?;
    let headers = read_headers(reader, &mut budget)?;
    let len = content_length(&headers)?;
    let body = read_body(reader, len)?;
    Ok(RestResponse {
        status: StatusCode(code),
        headers,
        body,
    })
}

/// Append the headers + body common to requests and responses: the
/// caller's header list (minus any `Content-Length`, which is computed
/// here), the JSON content headers, the connection directive, and the
/// body itself.
fn serialize_tail(
    out: &mut Vec<u8>,
    headers: &[(String, String)],
    body: Option<&Json>,
    mode: ConnectionMode,
) {
    // `write!` into a `Vec<u8>` is infallible, so the results below are
    // safely discarded; nothing here allocates beyond the body rendering.
    let body_text = body.map(Json::to_compact_string);
    serialize_head_tail(
        out,
        headers,
        body_text.as_ref().map(String::len),
        body_text.is_some(),
        mode,
    );
    if let Some(body_text) = body_text {
        out.extend_from_slice(body_text.as_bytes());
    }
}

/// The header lines shared by every serialised message: caller headers
/// (minus `Content-Length`), content headers for `body_len`, and the
/// connection directive, ending with the blank line.
fn serialize_head_tail(
    out: &mut Vec<u8>,
    headers: &[(String, String)],
    body_len: Option<usize>,
    has_body: bool,
    mode: ConnectionMode,
) {
    for (n, v) in headers {
        if n.eq_ignore_ascii_case("content-length") {
            continue; // we compute it ourselves
        }
        let _ = write!(out, "{n}: {v}\r\n");
    }
    if has_body {
        out.extend_from_slice(b"Content-Type: application/json\r\n");
        let _ = write!(out, "Content-Length: {}\r\n", body_len.unwrap_or(0));
    } else {
        out.extend_from_slice(b"Content-Length: 0\r\n");
    }
    out.extend_from_slice(b"Connection: ");
    out.extend_from_slice(mode.header_value().as_bytes());
    out.extend_from_slice(b"\r\n\r\n");
}

/// Serialise one HTTP response as two parts — the head (status line,
/// headers, blank line) appended to `head` and the rendered JSON body
/// appended to `body` — so the reactor transport can hand both to one
/// vectored write without copying the body behind the head.
///
/// Concatenating what this appends to `head` and `body` is byte-identical
/// to [`serialize_response`] with the same arguments; the split is pinned
/// by a unit test.
pub fn serialize_response_parts(
    head: &mut Vec<u8>,
    body: &mut String,
    response: &RestResponse,
    mode: ConnectionMode,
) {
    let body_start = body.len();
    if let Some(json) = &response.body {
        json.write_compact(body);
    }
    let body_len = body.len() - body_start;
    let _ = write!(
        head,
        "HTTP/1.1 {} {}\r\n",
        response.status.0,
        response.status.reason()
    );
    serialize_head_tail(
        head,
        &response.headers,
        Some(body_len),
        response.body.is_some(),
        mode,
    );
}

/// Serialise one HTTP request into `out` (appending; callers reusing a
/// buffer clear it first). `mode` selects the `Connection` directive.
pub fn serialize_request(out: &mut Vec<u8>, request: &RestRequest, mode: ConnectionMode) {
    let _ = write!(out, "{} {} HTTP/1.1\r\n", request.method, request.path);
    serialize_tail(out, &request.headers, request.body.as_ref(), mode);
}

/// Serialise one HTTP response into `out` (appending; callers reusing a
/// buffer clear it first). `mode` selects the `Connection` directive.
pub fn serialize_response(out: &mut Vec<u8>, response: &RestResponse, mode: ConnectionMode) {
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\n",
        response.status.0,
        response.status.reason()
    );
    serialize_tail(out, &response.headers, response.body.as_ref(), mode);
}

/// Write one HTTP request to a stream (`Connection: close` semantics).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_request(stream: &mut impl Write, request: &RestRequest) -> std::io::Result<()> {
    let mut out = Vec::new();
    serialize_request(&mut out, request, ConnectionMode::Close);
    stream.write_all(&out)
}

/// Write one HTTP response to a stream (`Connection: close` semantics).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_response(stream: &mut impl Write, response: &RestResponse) -> std::io::Result<()> {
    let mut out = Vec::new();
    serialize_response(&mut out, response, ConnectionMode::Close);
    stream.write_all(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: &RestRequest) -> RestRequest {
        let mut buf = Vec::new();
        write_request(&mut buf, req).unwrap();
        read_request(&mut Cursor::new(buf)).unwrap()
    }

    fn roundtrip_response(resp: &RestResponse) -> RestResponse {
        let mut buf = Vec::new();
        write_response(&mut buf, resp).unwrap();
        read_response(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn request_roundtrip_with_body() {
        let req = RestRequest::new(HttpMethod::Post, "/v3/4/volumes")
            .auth_token("tok-1")
            .json(Json::object(vec![("size", Json::Int(10))]));
        let back = roundtrip_request(&req);
        assert_eq!(back.method, HttpMethod::Post);
        assert_eq!(back.path, "/v3/4/volumes");
        assert_eq!(back.token(), Some("tok-1"));
        assert_eq!(back.body, req.body);
    }

    #[test]
    fn request_roundtrip_without_body() {
        let req = RestRequest::new(HttpMethod::Delete, "/v3/4/volumes/7");
        let back = roundtrip_request(&req);
        assert_eq!(back.body, None);
        assert_eq!(back.method, HttpMethod::Delete);
    }

    #[test]
    fn response_roundtrip() {
        let resp = RestResponse::error(StatusCode::FORBIDDEN, "no");
        let back = roundtrip_response(&resp);
        assert_eq!(back.status, StatusCode::FORBIDDEN);
        assert_eq!(back.error_message(), Some("no"));
        let no_content = roundtrip_response(&RestResponse::no_content());
        assert_eq!(no_content.status, StatusCode::NO_CONTENT);
        assert_eq!(no_content.body, None);
    }

    #[test]
    fn parses_curl_style_request() {
        // The paper's cURL invocation shape.
        let raw = "DELETE /cmonitor/volumes/4 HTTP/1.1\r\nHost: 127.0.0.1:8000\r\nX-Auth-Token: tok-9\r\nContent-Length: 0\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw.as_bytes())).unwrap();
        assert_eq!(req.method, HttpMethod::Delete);
        assert_eq!(req.path, "/cmonitor/volumes/4");
        assert_eq!(req.token(), Some("tok-9"));
    }

    #[test]
    fn rejects_unknown_method() {
        let raw = "BREW /pot HTTP/1.1\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(raw.as_bytes())),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_bad_header() {
        let raw = "GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n";
        assert!(read_request(&mut Cursor::new(raw.as_bytes())).is_err());
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = "GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}";
        assert!(matches!(
            read_request(&mut Cursor::new(raw.as_bytes())),
            Err(WireError::UnexpectedEof)
        ));
    }

    #[test]
    fn rejects_non_json_body() {
        let raw = "GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        assert!(read_request(&mut Cursor::new(raw.as_bytes())).is_err());
    }

    #[test]
    fn rejects_empty_stream() {
        assert!(matches!(
            read_request(&mut Cursor::new(b"".as_slice())),
            Err(WireError::UnexpectedEof)
        ));
    }

    /// The pre-pooling response writer, verbatim: one fresh `String` per
    /// message with per-header `format!` appends, `Connection: close`.
    /// The buffer serialiser must reproduce it byte for byte.
    fn legacy_write_response(response: &RestResponse) -> Vec<u8> {
        let body_text = response.body.as_ref().map(Json::to_compact_string);
        let mut out = format!(
            "HTTP/1.1 {} {}\r\n",
            response.status.0,
            response.status.reason()
        );
        for (n, v) in &response.headers {
            if n.eq_ignore_ascii_case("content-length") {
                continue;
            }
            out.push_str(&format!("{n}: {v}\r\n"));
        }
        if let Some(text) = &body_text {
            out.push_str("Content-Type: application/json\r\n");
            out.push_str(&format!("Content-Length: {}\r\n", text.len()));
        } else {
            out.push_str("Content-Length: 0\r\n");
        }
        out.push_str("Connection: close\r\n\r\n");
        if let Some(text) = body_text {
            out.push_str(&text);
        }
        out.into_bytes()
    }

    fn legacy_write_request(request: &RestRequest) -> Vec<u8> {
        let body_text = request.body.as_ref().map(Json::to_compact_string);
        let mut out = format!("{} {} HTTP/1.1\r\n", request.method, request.path);
        for (n, v) in &request.headers {
            if n.eq_ignore_ascii_case("content-length") {
                continue;
            }
            out.push_str(&format!("{n}: {v}\r\n"));
        }
        if let Some(text) = &body_text {
            out.push_str("Content-Type: application/json\r\n");
            out.push_str(&format!("Content-Length: {}\r\n", text.len()));
        } else {
            out.push_str("Content-Length: 0\r\n");
        }
        out.push_str("Connection: close\r\n\r\n");
        if let Some(text) = body_text {
            out.push_str(&text);
        }
        out.into_bytes()
    }

    #[test]
    fn buffer_serialiser_is_byte_identical_to_legacy_writer() {
        let responses = [
            RestResponse::ok(Json::object(vec![
                ("id", Json::Int(7)),
                ("name", Json::Str("vol".into())),
            ])),
            RestResponse::error(StatusCode::FORBIDDEN, "no"),
            RestResponse::no_content(),
            RestResponse {
                status: StatusCode::OK,
                headers: vec![
                    ("X-Custom".into(), "yes".into()),
                    ("Content-Length".into(), "999".into()),
                ],
                body: Some(Json::Array(vec![Json::Int(1), Json::Int(2)])),
            },
        ];
        let mut buf = Vec::new();
        for resp in &responses {
            buf.clear();
            serialize_response(&mut buf, resp, ConnectionMode::Close);
            assert_eq!(buf, legacy_write_response(resp), "response {resp:?}");
        }
        let requests = [
            RestRequest::new(HttpMethod::Post, "/v3/4/volumes")
                .auth_token("tok-1")
                .json(Json::object(vec![("size", Json::Int(10))])),
            RestRequest::new(HttpMethod::Delete, "/v3/4/volumes/7"),
        ];
        for req in &requests {
            buf.clear();
            serialize_request(&mut buf, req, ConnectionMode::Close);
            assert_eq!(buf, legacy_write_request(req), "request {req:?}");
        }
    }

    #[test]
    fn keep_alive_mode_marks_the_connection_reusable() {
        let mut buf = Vec::new();
        serialize_response(
            &mut buf,
            &RestResponse::no_content(),
            ConnectionMode::KeepAlive,
        );
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        let parsed = read_response(&mut Cursor::new(&buf[..])).unwrap();
        assert!(!wants_close(&parsed.headers));

        buf.clear();
        serialize_response(&mut buf, &RestResponse::no_content(), ConnectionMode::Close);
        let parsed = read_response(&mut Cursor::new(&buf[..])).unwrap();
        assert!(wants_close(&parsed.headers));
    }

    #[test]
    fn buffered_reader_preserves_pipelined_messages() {
        // Two serialised requests back to back on one "connection": the
        // same buffered reader must yield both.
        let mut buf = Vec::new();
        serialize_request(
            &mut buf,
            &RestRequest::new(HttpMethod::Get, "/a"),
            ConnectionMode::KeepAlive,
        );
        serialize_request(
            &mut buf,
            &RestRequest::new(HttpMethod::Get, "/b"),
            ConnectionMode::Close,
        );
        let mut reader = std::io::BufReader::new(Cursor::new(buf));
        let first = read_request_buf(&mut reader).unwrap();
        let second = read_request_buf(&mut reader).unwrap();
        assert_eq!(first.path, "/a");
        assert_eq!(second.path, "/b");
        assert!(!wants_close(&first.headers));
        assert!(wants_close(&second.headers));
    }

    #[test]
    fn try_parse_yields_each_pipelined_request_with_consumed_len() {
        let mut buf = Vec::new();
        serialize_request(
            &mut buf,
            &RestRequest::new(HttpMethod::Post, "/a").json(Json::Int(1)),
            ConnectionMode::KeepAlive,
        );
        let first_len = buf.len();
        serialize_request(
            &mut buf,
            &RestRequest::new(HttpMethod::Get, "/b"),
            ConnectionMode::Close,
        );
        let (first, consumed) = try_parse_request(&buf).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        assert_eq!(consumed, first_len);
        let (second, rest) = try_parse_request(&buf[consumed..]).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(consumed + rest, buf.len());
    }

    #[test]
    fn try_parse_treats_every_prefix_as_incomplete() {
        let mut buf = Vec::new();
        serialize_request(
            &mut buf,
            &RestRequest::new(HttpMethod::Post, "/v3/1/volumes")
                .auth_token("tok")
                .json(Json::object(vec![("size", Json::Int(3))])),
            ConnectionMode::KeepAlive,
        );
        for cut in 0..buf.len() {
            assert!(
                try_parse_request(&buf[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes parsed as complete"
            );
        }
        assert!(try_parse_request(&buf).unwrap().is_some());
    }

    #[test]
    fn try_parse_rejects_malformed_and_oversized_heads() {
        assert!(matches!(
            try_parse_request(b"BREW /pot HTTP/1.1\r\n\r\n"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            try_parse_request(b"GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n"),
            Err(WireError::Malformed(_))
        ));
        let oversized = format!(
            "GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            usize::MAX / 2
        );
        assert!(matches!(
            try_parse_request(oversized.as_bytes()),
            Err(WireError::TooLarge(_))
        ));
        // A head that never terminates is rejected once past the cap.
        let runaway = vec![b'a'; MAX_HEADER_BYTES + 3];
        assert!(matches!(
            try_parse_request(&runaway),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn response_parts_concatenate_to_the_single_buffer_serialisation() {
        let responses = [
            RestResponse::ok(Json::object(vec![
                ("id", Json::Int(7)),
                ("name", Json::Str("vol".into())),
            ])),
            RestResponse::error(StatusCode::FORBIDDEN, "no"),
            RestResponse::no_content(),
            RestResponse {
                status: StatusCode::OK,
                headers: vec![
                    ("X-Custom".into(), "yes".into()),
                    ("Content-Length".into(), "999".into()),
                ],
                body: Some(Json::Array(vec![Json::Int(1), Json::Int(2)])),
            },
        ];
        for mode in [ConnectionMode::KeepAlive, ConnectionMode::Close] {
            for resp in &responses {
                let mut whole = Vec::new();
                serialize_response(&mut whole, resp, mode);
                let mut head = Vec::new();
                let mut body = String::new();
                serialize_response_parts(&mut head, &mut body, resp, mode);
                head.extend_from_slice(body.as_bytes());
                assert_eq!(head, whole, "split serialisation diverged: {resp:?}");
            }
        }
    }

    #[test]
    fn rejects_oversized_content_length() {
        let raw = format!(
            "GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            usize::MAX / 2
        );
        assert!(matches!(
            read_request(&mut Cursor::new(raw.as_bytes())),
            Err(WireError::TooLarge(_))
        ));
    }
}
