//! A hashed timer wheel for the reactor transport.
//!
//! Per-connection deadlines (idle timeout, slow-read guard, long-poll
//! parking, close-drain) used to cost one `setsockopt` syscall per state
//! change under the blocking transport. The reactor replaces them with
//! entries on this wheel: scheduling is an in-memory push, expiry is a
//! drain of the slots the cursor has passed, and cancellation is *lazy* —
//! each connection carries a generation counter, bumped whenever its
//! logical timer is rescheduled or dropped, and stale wheel entries are
//! discarded when their slot comes up.
//!
//! The wheel is single-threaded by design: each reactor shard owns one,
//! so no locking is needed anywhere on the timer path.

use std::time::{Duration, Instant};

/// One scheduled deadline: the connection token it belongs to, the
/// generation that must still be current for it to fire, and the tick it
/// is due at (entries whose due tick lies beyond the current wheel
/// revolution are re-queued instead of fired).
#[derive(Debug, Clone, Copy)]
struct TimerEntry {
    token: u64,
    generation: u64,
    due_tick: u64,
}

/// A fixed-size hashed timer wheel. Deadlines are quantised to `tick`
/// and hashed into `slots.len()` buckets; deadlines further out than one
/// revolution simply ride the wheel for another lap.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    tick: Duration,
    anchor: Instant,
    /// The next tick index to process (monotonic, not wrapped).
    next_tick: u64,
}

/// Default tick granularity: coarse enough that an idle wheel is cheap,
/// fine enough for the shortest configured timeout in the test battery.
pub const DEFAULT_TICK: Duration = Duration::from_millis(10);

/// Default slot count: one revolution covers `slots * tick` (2.56 s at
/// the default tick); longer deadlines lap.
pub const DEFAULT_SLOTS: usize = 256;

impl TimerWheel {
    /// A wheel of `slots` buckets at `tick` granularity, anchored at
    /// `now`.
    #[must_use]
    pub fn new(slots: usize, tick: Duration, now: Instant) -> Self {
        TimerWheel {
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            tick: tick.max(Duration::from_millis(1)),
            anchor: now,
            next_tick: 0,
        }
    }

    /// The wheel's tick granularity (the reactor's poll timeout).
    #[must_use]
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Schedule `(token, generation)` to fire at `deadline`. Deadlines in
    /// the past fire on the next expiry pass.
    pub fn schedule(&mut self, token: u64, generation: u64, deadline: Instant) {
        let due_tick = self
            .ticks_at(deadline)
            // Never schedule into a tick the cursor has already passed,
            // or the entry would wait a whole revolution.
            .max(self.next_tick);
        let slot = (due_tick as usize) % self.slots.len();
        self.slots[slot].push(TimerEntry {
            token,
            generation,
            due_tick,
        });
    }

    /// Advance the wheel to `now`, appending every due `(token,
    /// generation)` pair to `fired`. Entries due in a later revolution
    /// stay queued; the caller is responsible for discarding pairs whose
    /// generation is no longer current.
    pub fn expire_into(&mut self, now: Instant, fired: &mut Vec<(u64, u64)>) {
        let current = self.ticks_at(now);
        while self.next_tick <= current {
            let tick = self.next_tick;
            let slot = (tick as usize) % self.slots.len();
            // Entries hashed here but due on a later lap are retained.
            let mut i = 0;
            while i < self.slots[slot].len() {
                if self.slots[slot][i].due_tick <= tick {
                    let entry = self.slots[slot].swap_remove(i);
                    fired.push((entry.token, entry.generation));
                } else {
                    i += 1;
                }
            }
            self.next_tick += 1;
        }
    }

    fn ticks_at(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.anchor);
        // Round up so a deadline never fires early.
        elapsed.as_micros().div_ceil(self.tick.as_micros().max(1)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire(wheel: &mut TimerWheel, now: Instant) -> Vec<(u64, u64)> {
        let mut fired = Vec::new();
        wheel.expire_into(now, &mut fired);
        fired
    }

    #[test]
    fn fires_at_and_not_before_the_deadline() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(16, Duration::from_millis(10), start);
        wheel.schedule(7, 1, start + Duration::from_millis(55));
        assert!(fire(&mut wheel, start + Duration::from_millis(40)).is_empty());
        assert_eq!(
            fire(&mut wheel, start + Duration::from_millis(70)),
            [(7, 1)]
        );
        // One-shot: nothing fires again.
        assert!(fire(&mut wheel, start + Duration::from_millis(200)).is_empty());
    }

    #[test]
    fn deadlines_beyond_one_revolution_ride_extra_laps() {
        let start = Instant::now();
        // 8 slots x 10ms = 80ms per revolution; schedule 250ms out.
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10), start);
        wheel.schedule(1, 3, start + Duration::from_millis(250));
        assert!(fire(&mut wheel, start + Duration::from_millis(240)).is_empty());
        assert_eq!(
            fire(&mut wheel, start + Duration::from_millis(260)),
            [(1, 3)]
        );
    }

    #[test]
    fn past_deadlines_fire_on_the_next_pass() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(16, Duration::from_millis(10), start);
        let mut fired = Vec::new();
        wheel.expire_into(start + Duration::from_millis(100), &mut fired);
        wheel.schedule(9, 1, start); // long past
        wheel.expire_into(start + Duration::from_millis(110), &mut fired);
        assert_eq!(fired, [(9, 1)]);
    }

    #[test]
    fn stale_generations_are_the_callers_problem_but_all_fire() {
        // The wheel fires every scheduled entry; the reactor compares
        // generations. Rescheduling therefore just adds entries.
        let start = Instant::now();
        let mut wheel = TimerWheel::new(16, Duration::from_millis(10), start);
        wheel.schedule(4, 1, start + Duration::from_millis(20));
        wheel.schedule(4, 2, start + Duration::from_millis(40));
        let fired = fire(&mut wheel, start + Duration::from_millis(60));
        assert!(fired.contains(&(4, 1)) && fired.contains(&(4, 2)));
    }

    #[test]
    fn many_tokens_in_one_slot_all_fire() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(4, Duration::from_millis(10), start);
        for t in 0..100u64 {
            wheel.schedule(t, 0, start + Duration::from_millis(10 + (t % 3)));
        }
        let mut fired = fire(&mut wheel, start + Duration::from_millis(30));
        fired.sort_unstable();
        assert_eq!(fired.len(), 100);
        assert_eq!(fired.first(), Some(&(0, 0)));
        assert_eq!(fired.last(), Some(&(99, 0)));
    }
}
