//! # cm-httpkit — a minimal HTTP/1.1 transport
//!
//! The wire layer that lets the generated cloud monitor run as a real
//! network proxy (the paper drives its monitor with cURL): HTTP/1.1
//! message framing over `std::net` TCP with persistent (keep-alive)
//! connections on both sides of the proxy.
//!
//! * [`wire`] — request/response parsing and serialisation
//!   (`Content-Length` framing, JSON bodies, size limits, reusable
//!   serialisation buffers, incremental parsing for pipelined input);
//! * [`HttpServer`] — a keep-alive server with two engines behind one
//!   API ([`ServerConfig::transport`]): the default **readiness-driven
//!   reactor** ([`reactor`] — per-core epoll/poll event-loop shards,
//!   request pipelining, vectored writes, [`timer`]-wheel deadlines) and
//!   the blocking **bounded worker pool** baseline;
//! * [`PooledClient`] — a per-address pool of keep-alive client
//!   connections with health-checked checkout, reconnect-once on stale
//!   connections, and a batched probe path;
//! * [`resilience`] — deadline budgets, capped seeded-jitter backoff,
//!   and per-backend circuit breakers threaded through the client;
//! * [`send`] — the one-shot (`Connection: close`) client;
//! * [`RemoteService`] — the pooled backend adapter the monitor proxies
//!   through;
//! * [`AdminRoutes`] — the `/-/metrics`, `/-/events` and `/-/health`
//!   observability endpoints served in front of an application handler.
//!
//! ## Example
//!
//! ```
//! use cm_httpkit::{send, HttpServer};
//! use cm_model::HttpMethod;
//! use cm_rest::{Json, RestRequest, RestResponse};
//! use std::sync::Arc;
//!
//! let server = HttpServer::bind(
//!     "127.0.0.1:0",
//!     Arc::new(|_req| RestResponse::ok(Json::Str("hello".into()))),
//! )?;
//! let resp = send(server.local_addr(), &RestRequest::new(HttpMethod::Get, "/"))?;
//! assert_eq!(resp.body, Some(Json::Str("hello".into())));
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admin;
pub mod client;
#[cfg(unix)]
pub mod reactor;
pub mod resilience;
pub mod server;
pub mod timer;
pub mod wire;

pub use admin::{AdminRoutes, ADMIN_PREFIX, DEFAULT_EVENT_TAIL};
pub use client::{ClientConfig, PooledClient, RemoteService};
pub use resilience::{
    Admission, BackoffSchedule, BreakerState, CircuitBreaker, DeadlineBudget, TransportError,
    TransportStats,
};
pub use server::{
    send, try_request_park, Handler, HttpServer, OverloadConfig, ReactorBackend, ServerConfig,
    ShedCause, ShedDecision, ShedObserver, Transport,
};
pub use timer::TimerWheel;
pub use wire::{
    read_request, read_request_buf, read_response, read_response_buf, serialize_request,
    serialize_response, serialize_response_parts, try_parse_request, wants_close, write_request,
    write_response, ConnectionMode, WireError,
};
