//! # cm-httpkit — a minimal HTTP/1.1 transport
//!
//! The wire layer that lets the generated cloud monitor run as a real
//! network proxy (the paper drives its monitor with cURL): HTTP/1.1
//! message framing over `std::net` TCP with one request per connection.
//!
//! * [`wire`] — request/response parsing and serialisation
//!   (`Content-Length` framing, JSON bodies, size limits);
//! * [`HttpServer`] — a threaded blocking server with graceful shutdown;
//! * [`send`] — a one-shot client;
//! * [`AdminRoutes`] — the `/-/metrics` and `/-/events` observability
//!   endpoints served in front of an application handler.
//!
//! ## Example
//!
//! ```
//! use cm_httpkit::{send, HttpServer};
//! use cm_model::HttpMethod;
//! use cm_rest::{Json, RestRequest, RestResponse};
//! use std::sync::Arc;
//!
//! let server = HttpServer::bind(
//!     "127.0.0.1:0",
//!     Arc::new(|_req| RestResponse::ok(Json::Str("hello".into()))),
//! )?;
//! let resp = send(server.local_addr(), &RestRequest::new(HttpMethod::Get, "/"))?;
//! assert_eq!(resp.body, Some(Json::Str("hello".into())));
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admin;
pub mod server;
pub mod wire;

pub use admin::{AdminRoutes, ADMIN_PREFIX, DEFAULT_EVENT_TAIL};
pub use server::{send, Handler, HttpServer, RemoteService};
pub use wire::{read_request, read_response, write_request, write_response, WireError};
