//! A small JSON value type with parser and serializer.
//!
//! Resource representations in the monitored cloud are JSON documents (the
//! paper: attributes "represent a document containing an information about
//! the resource, i.e., an XML document or a JSON serialized object"). This
//! module is hand-written to stay within the approved dependency set;
//! object member order is preserved so generated documents are
//! deterministic.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (serialised without decimal point).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object; member order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    #[must_use]
    pub fn object(members: Vec<(impl Into<String>, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index lookup on arrays.
    #[must_use]
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// String payload.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload (floats with zero fraction are accepted).
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// Boolean payload.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialise compactly (no whitespace).
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialise compactly into an existing buffer (appending), so hot
    /// paths can reuse one scratch allocation per connection instead of
    /// building a fresh `String` per message.
    pub fn write_compact(&self, out: &mut String) {
        self.write(out);
    }

    /// Serialise with 2-space indentation (log files, generated fixtures).
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write(out),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep a decimal point so the value re-parses as Float.
                    if v.fract() == 0.0 {
                        out.push_str(&format!("{v:.1}"));
                    } else {
                        out.push_str(&v.to_string());
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth accepted by the parser (DoS guard: the parser
/// is recursive, so unbounded nesting would overflow the stack).
const MAX_DEPTH: usize = 128;

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing content.
pub fn parse_json(src: &str) -> Result<Json, JsonError> {
    let mut p = JsonParser {
        src: src.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.src.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct JsonParser<'a> {
    src: &'a [u8],
    pos: usize,
    depth: usize,
}

impl JsonParser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let out = self.value_inner();
        self.depth -= 1;
        out
    }

    fn value_inner(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Object(members));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.src.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.src[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.src.len() && (self.src[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err(format!("malformed number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err(format!("malformed number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("false").unwrap(), Json::Bool(false));
        assert_eq!(parse_json("42").unwrap(), Json::Int(42));
        assert_eq!(parse_json("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse_json("3.5").unwrap(), Json::Float(3.5));
        assert_eq!(parse_json("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse_json("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse_json(r#"{"volume": {"id": 4, "status": "in-use", "tags": [1, 2]}}"#).unwrap();
        let vol = v.get("volume").unwrap();
        assert_eq!(vol.get("id").unwrap().as_int(), Some(4));
        assert_eq!(vol.get("status").unwrap().as_str(), Some("in-use"));
        assert_eq!(vol.get("tags").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(vol.get("tags").unwrap().at(1).unwrap().as_int(), Some(2));
    }

    #[test]
    fn parses_escapes() {
        assert_eq!(
            parse_json(r#""a\"b\\c\ndA""#).unwrap(),
            Json::Str("a\"b\\c\ndA".into())
        );
    }

    #[test]
    fn parses_unicode_text() {
        assert_eq!(parse_json("\"åäö\"").unwrap(), Json::Str("åäö".into()));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"open").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("nul").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
    }

    #[test]
    fn serialisation_roundtrips() {
        let cases = [
            r#"{"a":1,"b":[true,null,"x"],"c":{"d":2.5}}"#,
            r#"[]"#,
            r#"{}"#,
            r#""tricky \"quote\" and \\ backslash""#,
        ];
        for src in cases {
            let v = parse_json(src).unwrap();
            let out = v.to_compact_string();
            assert_eq!(parse_json(&out).unwrap(), v, "roundtrip of {src}");
        }
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = Json::object(vec![("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.to_compact_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn float_serialisation_keeps_decimal() {
        assert_eq!(Json::Float(2.0).to_compact_string(), "2.0");
        let back = parse_json("2.0").unwrap();
        assert_eq!(back, Json::Float(2.0));
    }

    #[test]
    fn control_characters_escaped() {
        let v = Json::Str("\u{1}".into());
        assert_eq!(v.to_compact_string(), "\"\\u0001\"");
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;

    #[test]
    fn deep_nesting_is_rejected_gracefully() {
        let deep = "[".repeat(100_000);
        let err = parse_json(&deep).unwrap_err();
        assert!(err.message.contains("too deep"));
        // Moderate nesting still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_json(&ok).is_ok());
    }
}

#[cfg(test)]
mod pretty_tests {
    use super::*;

    #[test]
    fn pretty_output_reparses_to_the_same_value() {
        let v = parse_json(r#"{"a":1,"b":[true,null,{"c":"x"}],"d":{}}"#).unwrap();
        let pretty = v.to_pretty_string();
        assert!(pretty.contains("\n  \"b\": ["));
        assert_eq!(parse_json(&pretty).unwrap(), v);
    }

    #[test]
    fn pretty_scalars_and_empties_stay_compact() {
        assert_eq!(Json::Int(3).to_pretty_string(), "3");
        assert_eq!(Json::Array(vec![]).to_pretty_string(), "[]");
        assert_eq!(Json::Object(vec![]).to_pretty_string(), "{}");
    }
}
