//! Abstract REST request/response messages.
//!
//! These transport-independent messages are what the monitor, the cloud
//! simulator and the HTTP layer exchange: a method + path + headers + JSON
//! body, and a status + headers + JSON body back. The `X-Auth-Token`
//! header carries the Keystone-style token, as in OpenStack.

use crate::json::Json;
use crate::status::StatusCode;
use cm_model::HttpMethod;
use std::fmt;

/// Name of the authentication token header (OpenStack convention).
pub const AUTH_TOKEN_HEADER: &str = "X-Auth-Token";

/// Header marking a response as synthesised by the *transport* layer —
/// the backend never answered (connect failure, deadline exhaustion, an
/// open circuit breaker). The monitor uses it to tell a transport fault
/// apart from a genuine denial by the cloud, so backend outages become
/// `Degraded` verdicts instead of fake contract violations.
pub const TRANSPORT_FAULT_HEADER: &str = "X-CM-Transport-Fault";

/// Header marking a response as an *overload shed*: the serving layer
/// rejected the request before any monitor work because its queue wait
/// had already consumed the deadline budget (serving it would produce a
/// late, worthless answer). Like [`TRANSPORT_FAULT_HEADER`] this marker
/// separates capacity weather from genuine verdicts — a shed must never
/// surface as a contract violation.
pub const OVERLOAD_HEADER: &str = "X-CM-Overload";

/// An abstract REST request.
#[derive(Debug, Clone, PartialEq)]
pub struct RestRequest {
    /// HTTP method.
    pub method: HttpMethod,
    /// Request path, e.g. `/v3/4/volumes/7`.
    pub path: String,
    /// Headers as name/value pairs; names are case-insensitive on lookup.
    pub headers: Vec<(String, String)>,
    /// Optional JSON body.
    pub body: Option<Json>,
}

impl RestRequest {
    /// Create a request with no headers or body.
    #[must_use]
    pub fn new(method: HttpMethod, path: impl Into<String>) -> Self {
        RestRequest {
            method,
            path: path.into(),
            headers: Vec::new(),
            body: None,
        }
    }

    /// Builder: set a header.
    #[must_use]
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Builder: set the auth token header.
    #[must_use]
    pub fn auth_token(self, token: impl Into<String>) -> Self {
        self.header(AUTH_TOKEN_HEADER, token)
    }

    /// Builder: set the JSON body.
    #[must_use]
    pub fn json(mut self, body: Json) -> Self {
        self.body = Some(body);
        self
    }

    /// Case-insensitive header lookup.
    #[must_use]
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The auth token, if present.
    #[must_use]
    pub fn token(&self) -> Option<&str> {
        self.header_value(AUTH_TOKEN_HEADER)
    }
}

impl fmt::Display for RestRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.method, self.path)
    }
}

/// An abstract REST response.
#[derive(Debug, Clone, PartialEq)]
pub struct RestResponse {
    /// Status code.
    pub status: StatusCode,
    /// Headers.
    pub headers: Vec<(String, String)>,
    /// Optional JSON body.
    pub body: Option<Json>,
}

impl RestResponse {
    /// A response with the given status and no body.
    #[must_use]
    pub fn status(status: StatusCode) -> Self {
        RestResponse {
            status,
            headers: Vec::new(),
            body: None,
        }
    }

    /// A 200 OK response with a JSON body.
    #[must_use]
    pub fn ok(body: Json) -> Self {
        RestResponse {
            status: StatusCode::OK,
            headers: Vec::new(),
            body: Some(body),
        }
    }

    /// A 201 Created response with a JSON body.
    #[must_use]
    pub fn created(body: Json) -> Self {
        RestResponse {
            status: StatusCode::CREATED,
            headers: Vec::new(),
            body: Some(body),
        }
    }

    /// A 204 No Content response.
    #[must_use]
    pub fn no_content() -> Self {
        RestResponse::status(StatusCode::NO_CONTENT)
    }

    /// An error response carrying a JSON `{"error": {"code", "message"}}`
    /// body in the OpenStack style.
    #[must_use]
    pub fn error(status: StatusCode, message: impl Into<String>) -> Self {
        let body = Json::object(vec![(
            "error",
            Json::object(vec![
                ("code", Json::Int(i64::from(status.0))),
                ("message", Json::Str(message.into())),
            ]),
        )]);
        RestResponse {
            status,
            headers: Vec::new(),
            body: Some(body),
        }
    }

    /// An error response synthesised by the transport layer (marked with
    /// [`TRANSPORT_FAULT_HEADER`]): the backend never actually answered.
    #[must_use]
    pub fn transport_fault(status: StatusCode, message: impl Into<String>) -> Self {
        let message = message.into();
        RestResponse::error(status, message.clone()).header(TRANSPORT_FAULT_HEADER, message)
    }

    /// Was this response synthesised by the transport layer rather than
    /// sent by the service itself?
    #[must_use]
    pub fn is_transport_fault(&self) -> bool {
        self.header_value(TRANSPORT_FAULT_HEADER).is_some()
    }

    /// A 503 shed by overload control (marked with [`OVERLOAD_HEADER`]):
    /// the request was never admitted, so no verdict exists for it.
    #[must_use]
    pub fn overload_shed(message: impl Into<String>) -> Self {
        let message = message.into();
        RestResponse::error(StatusCode::SERVICE_UNAVAILABLE, message.clone())
            .header(OVERLOAD_HEADER, message)
            .header("Retry-After", "1")
    }

    /// Was this response shed by overload control rather than served?
    #[must_use]
    pub fn is_overload_shed(&self) -> bool {
        self.header_value(OVERLOAD_HEADER).is_some()
    }

    /// Builder: add a header.
    #[must_use]
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Case-insensitive header lookup.
    #[must_use]
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The error message from an OpenStack-style error body, if present.
    #[must_use]
    pub fn error_message(&self) -> Option<&str> {
        self.body.as_ref()?.get("error")?.get("message")?.as_str()
    }
}

impl fmt::Display for RestResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.status)
    }
}

/// Anything that can serve abstract REST requests: the cloud simulator, the
/// monitor wrapper, or a remote HTTP client adapter.
///
/// Concurrently callable services implement [`SharedRestService`] instead
/// and get this trait for free through a blanket impl, so single-threaded
/// call sites (`&mut service`) keep working unchanged.
pub trait RestService {
    /// Handle one request.
    fn handle(&mut self, request: &RestRequest) -> RestResponse;
}

/// A REST service that can be called concurrently from many threads
/// through a shared reference.
///
/// This is the contract the thread-per-connection HTTP server needs: one
/// `Arc<S>` shared by all connection handlers, no external lock. Services
/// manage their own interior synchronization (sharded locks, atomics).
/// Every `SharedRestService` is also a [`RestService`] via a blanket impl.
pub trait SharedRestService: Send + Sync {
    /// Handle one request through a shared reference.
    fn call(&self, request: &RestRequest) -> RestResponse;

    /// Handle a batch of independent requests, returning responses in
    /// request order.
    ///
    /// The default forwards each request through [`call`](Self::call).
    /// Network-backed services override this to issue the whole batch
    /// over a single pooled connection — the state prober sends every
    /// snapshot's GETs through here, so one monitored call's pre+post
    /// probe cycle costs one backend connection, not one per probe.
    fn call_batch(&self, requests: &[RestRequest]) -> Vec<RestResponse> {
        requests.iter().map(|r| self.call(r)).collect()
    }
}

impl<T: SharedRestService> RestService for T {
    fn handle(&mut self, request: &RestRequest) -> RestResponse {
        self.call(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_and_lookup() {
        let r = RestRequest::new(HttpMethod::Delete, "/v3/4/volumes/7")
            .auth_token("tok-123")
            .header("Accept", "application/json");
        assert_eq!(r.token(), Some("tok-123"));
        assert_eq!(r.header_value("accept"), Some("application/json"));
        assert_eq!(r.header_value("x-auth-token"), Some("tok-123"));
        assert_eq!(r.to_string(), "DELETE /v3/4/volumes/7");
    }

    #[test]
    fn response_constructors() {
        assert_eq!(RestResponse::no_content().status, StatusCode::NO_CONTENT);
        let ok = RestResponse::ok(Json::Int(1));
        assert_eq!(ok.status, StatusCode::OK);
        assert_eq!(ok.body, Some(Json::Int(1)));
    }

    #[test]
    fn error_body_shape() {
        let e = RestResponse::error(StatusCode::FORBIDDEN, "not allowed");
        assert_eq!(e.error_message(), Some("not allowed"));
        assert_eq!(
            e.body
                .unwrap()
                .get("error")
                .unwrap()
                .get("code")
                .unwrap()
                .as_int(),
            Some(403)
        );
    }

    #[test]
    fn overload_shed_marker() {
        let shed = RestResponse::overload_shed("queue wait 12ms exceeded budget 10ms");
        assert_eq!(shed.status, StatusCode::SERVICE_UNAVAILABLE);
        assert!(shed.is_overload_shed());
        assert!(!shed.is_transport_fault());
        assert_eq!(shed.header_value("retry-after"), Some("1"));
        assert!(shed.error_message().unwrap().contains("budget"));
        assert!(!RestResponse::error(StatusCode::SERVICE_UNAVAILABLE, "busy").is_overload_shed());
    }

    #[test]
    fn missing_headers_are_none() {
        let r = RestRequest::new(HttpMethod::Get, "/");
        assert!(r.token().is_none());
        assert!(r.header_value("anything").is_none());
    }
}
