//! HTTP status codes as interpreted by the cloud monitor.
//!
//! The monitor "interprets the response codes of different resources to
//! analyse how the request went" (paper, Section III-A). This newtype
//! carries the codes the paper names (200, 403, 404, …) plus the rest of
//! the common vocabulary the simulator emits.

use std::fmt;

/// An HTTP response status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK — "the request was successful".
    pub const OK: StatusCode = StatusCode(200);
    /// 201 Created — resource created by POST.
    pub const CREATED: StatusCode = StatusCode(201);
    /// 202 Accepted — request accepted for asynchronous processing.
    pub const ACCEPTED: StatusCode = StatusCode(202);
    /// 204 No Content — e.g. successful DELETE (Listing 2 checks this).
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 401 Unauthorized — missing/invalid credentials.
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// 403 Forbidden — "it is forbidden to make this request".
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found — "the resource was not found".
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 405 Method Not Allowed.
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// 409 Conflict — e.g. deleting an attached volume.
    pub const CONFLICT: StatusCode = StatusCode(409);
    /// 412 Precondition Failed — the monitor's pre-condition verdict.
    pub const PRECONDITION_FAILED: StatusCode = StatusCode(412);
    /// 413 Request Entity Too Large — quota exceeded (OpenStack uses 413).
    pub const OVER_LIMIT: StatusCode = StatusCode(413);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 502 Bad Gateway — the monitor could not reach the cloud.
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    /// 503 Service Unavailable — the transport shed the request (e.g.
    /// an open circuit breaker, or the monitor failing closed).
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);
    /// 504 Gateway Timeout — the request's deadline budget ran out.
    pub const GATEWAY_TIMEOUT: StatusCode = StatusCode(504);

    /// True for 2xx codes.
    #[must_use]
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// True for 4xx codes.
    #[must_use]
    pub fn is_client_error(self) -> bool {
        (400..500).contains(&self.0)
    }

    /// True for 5xx codes.
    #[must_use]
    pub fn is_server_error(self) -> bool {
        (500..600).contains(&self.0)
    }

    /// True for the gateway/infrastructure error codes (502, 503, 504):
    /// usually the path *to* the service failed, which says nothing
    /// about the service's own contract compliance. Since a misbehaving
    /// service could also answer these itself, the monitor does not take
    /// them at face value: probes treat them as unobservable state, and
    /// a forwarded call that comes back 5xx-gateway is checked against
    /// the post-state before being written off as `Verdict::Degraded`.
    #[must_use]
    pub fn is_gateway_error(self) -> bool {
        matches!(self.0, 502..=504)
    }

    /// Canonical reason phrase.
    #[must_use]
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            412 => "Precondition Failed",
            413 => "Request Entity Too Large",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

impl From<u16> for StatusCode {
    fn from(code: u16) -> Self {
        StatusCode(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_codes() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::NO_CONTENT.is_success());
        assert!(StatusCode::FORBIDDEN.is_client_error());
        assert!(StatusCode::INTERNAL_SERVER_ERROR.is_server_error());
        assert!(!StatusCode::OK.is_client_error());
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(StatusCode::NOT_FOUND.to_string(), "404 Not Found");
        assert_eq!(StatusCode(599).reason(), "Unknown");
    }

    #[test]
    fn from_u16() {
        assert_eq!(StatusCode::from(204), StatusCode::NO_CONTENT);
    }
}
