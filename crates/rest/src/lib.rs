//! # cm-rest — REST plumbing for the cloud monitor
//!
//! The REST layer shared by the monitor, the cloud simulator and the code
//! generator:
//!
//! * [`Json`] — a hand-written JSON value type with parser/serializer
//!   (object member order preserved);
//! * [`StatusCode`] — the response-code vocabulary the monitor interprets;
//! * [`UriTemplate`] — literal/parameter path templates with matching and
//!   rendering;
//! * [`RouteTable`] — route derivation from a [`cm_model::ResourceModel`]
//!   by traversing association role names (the paper's `urls.py` step);
//! * [`RestRequest`]/[`RestResponse`]/[`RestService`] — the abstract
//!   messages exchanged between monitor and cloud, independent of the wire
//!   transport in [`cm_httpkit`](https://docs.rs/cm-httpkit).
//!
//! ## Example
//!
//! ```
//! use cm_model::{cinder, HttpMethod};
//! use cm_rest::{Resolution, RouteTable};
//!
//! let table = RouteTable::derive(&cinder::resource_model(), "/v3");
//! match table.resolve(HttpMethod::Delete, "/v3/4/volumes/7") {
//!     Resolution::Matched { route, params } => {
//!         assert_eq!(route.resource, "volume");
//!         assert_eq!(params["volume_id"], "7");
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod message;
pub mod route;
pub mod status;
pub mod uri;

pub use json::{parse_json, Json, JsonError};
pub use message::{
    RestRequest, RestResponse, RestService, SharedRestService, AUTH_TOKEN_HEADER, OVERLOAD_HEADER,
    TRANSPORT_FAULT_HEADER,
};
pub use route::{Resolution, Route, RouteTable};
pub use status::StatusCode;
pub use uri::{Segment, UriTemplate};
