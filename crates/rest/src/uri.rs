//! URI templates and path matching.
//!
//! The paper composes each resource's URI "by traversing the tags on the
//! associations between the resources … always starting from the
//! corresponding collection" (Section VI). A [`UriTemplate`] is a sequence
//! of literal and parameter segments (`/v3/{project_id}/volumes/{volume_id}`)
//! that can be rendered with concrete identifiers or matched against an
//! incoming request path, capturing the parameters.

use std::collections::HashMap;
use std::fmt;

/// One segment of a URI template.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Segment {
    /// A fixed path segment, e.g. `volumes`.
    Literal(String),
    /// A captured parameter, e.g. `{volume_id}` with name `volume_id`.
    Param(String),
}

/// A URI template: an ordered list of segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct UriTemplate {
    segments: Vec<Segment>,
}

impl UriTemplate {
    /// The empty template (renders as `/`).
    #[must_use]
    pub fn root() -> Self {
        UriTemplate::default()
    }

    /// Parse a template string such as `/v3/{project_id}/volumes`.
    ///
    /// # Panics
    ///
    /// Panics if a `{` segment is not closed; templates are
    /// developer-provided constants, so this is a programming error.
    #[must_use]
    pub fn parse(template: &str) -> Self {
        let mut t = UriTemplate::default();
        for seg in template.split('/').filter(|s| !s.is_empty()) {
            if let Some(inner) = seg.strip_prefix('{') {
                let name = inner
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unclosed parameter segment `{seg}`"));
                t.segments.push(Segment::Param(name.to_string()));
            } else {
                t.segments.push(Segment::Literal(seg.to_string()));
            }
        }
        t
    }

    /// Append a literal segment.
    #[must_use]
    pub fn literal(mut self, seg: impl Into<String>) -> Self {
        self.segments.push(Segment::Literal(seg.into()));
        self
    }

    /// Append a parameter segment.
    #[must_use]
    pub fn param(mut self, name: impl Into<String>) -> Self {
        self.segments.push(Segment::Param(name.into()));
        self
    }

    /// The segments.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Parameter names, in order.
    pub fn params(&self) -> impl Iterator<Item = &str> {
        self.segments.iter().filter_map(|s| match s {
            Segment::Param(p) => Some(p.as_str()),
            _ => None,
        })
    }

    /// Match a concrete path, capturing parameters. Trailing slashes on the
    /// path are ignored. Returns `None` when the path does not match.
    #[must_use]
    pub fn match_path(&self, path: &str) -> Option<HashMap<String, String>> {
        let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        self.match_segments(&parts)
    }

    /// Match a pre-split path against the template. Literal segments are
    /// verified before the capture map is allocated, so a mismatch costs
    /// no heap work — this is the hot path for
    /// [`RouteTable::resolve`](crate::RouteTable::resolve), which splits
    /// the request path once and probes several candidate templates
    /// with it.
    #[must_use]
    pub fn match_segments(&self, parts: &[&str]) -> Option<HashMap<String, String>> {
        if parts.len() != self.segments.len() {
            return None;
        }
        for (seg, part) in self.segments.iter().zip(parts) {
            if let Segment::Literal(lit) = seg {
                if lit != part {
                    return None;
                }
            }
        }
        let mut captures = HashMap::new();
        for (seg, part) in self.segments.iter().zip(parts) {
            if let Segment::Param(name) = seg {
                captures.insert(name.clone(), (*part).to_string());
            }
        }
        Some(captures)
    }

    /// Render the template with concrete parameter values.
    ///
    /// # Errors
    ///
    /// Returns the name of the first missing parameter.
    pub fn render(&self, params: &HashMap<String, String>) -> Result<String, String> {
        let mut out = String::new();
        for seg in &self.segments {
            out.push('/');
            match seg {
                Segment::Literal(lit) => out.push_str(lit),
                Segment::Param(name) => match params.get(name) {
                    Some(v) => out.push_str(v),
                    None => return Err(name.clone()),
                },
            }
        }
        if out.is_empty() {
            out.push('/');
        }
        Ok(out)
    }
}

impl fmt::Display for UriTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segments.is_empty() {
            return write!(f, "/");
        }
        for seg in &self.segments {
            match seg {
                Segment::Literal(lit) => write!(f, "/{lit}")?,
                Segment::Param(name) => write!(f, "/{{{name}}}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let t = UriTemplate::parse("/v3/{project_id}/volumes/{volume_id}");
        assert_eq!(t.to_string(), "/v3/{project_id}/volumes/{volume_id}");
    }

    #[test]
    fn matches_and_captures() {
        let t = UriTemplate::parse("/v3/{project_id}/volumes/{volume_id}");
        let caps = t.match_path("/v3/4/volumes/7").unwrap();
        assert_eq!(caps["project_id"], "4");
        assert_eq!(caps["volume_id"], "7");
    }

    #[test]
    fn trailing_slash_is_ignored() {
        let t = UriTemplate::parse("/v3/{project_id}/volumes");
        assert!(t.match_path("/v3/4/volumes/").is_some());
    }

    #[test]
    fn mismatched_paths_do_not_match() {
        let t = UriTemplate::parse("/v3/{project_id}/volumes");
        assert!(t.match_path("/v3/4").is_none());
        assert!(t.match_path("/v3/4/servers").is_none());
        assert!(t.match_path("/v3/4/volumes/7").is_none());
    }

    #[test]
    fn renders_with_params() {
        let t = UriTemplate::parse("/v3/{project_id}/volumes/{volume_id}");
        let mut p = HashMap::new();
        p.insert("project_id".to_string(), "4".to_string());
        p.insert("volume_id".to_string(), "7".to_string());
        assert_eq!(t.render(&p).unwrap(), "/v3/4/volumes/7");
    }

    #[test]
    fn render_reports_missing_param() {
        let t = UriTemplate::parse("/{a}/{b}");
        let mut p = HashMap::new();
        p.insert("a".to_string(), "1".to_string());
        assert_eq!(t.render(&p).unwrap_err(), "b");
    }

    #[test]
    fn root_template() {
        let t = UriTemplate::root();
        assert_eq!(t.to_string(), "/");
        assert!(t.match_path("/").is_some());
        assert!(t.match_path("/x").is_none());
        assert_eq!(t.render(&HashMap::new()).unwrap(), "/");
    }

    #[test]
    fn builder_api() {
        let t = UriTemplate::root()
            .literal("v3")
            .param("project_id")
            .literal("volumes");
        assert_eq!(t.to_string(), "/v3/{project_id}/volumes");
        assert_eq!(t.params().collect::<Vec<_>>(), vec!["project_id"]);
    }

    #[test]
    #[should_panic(expected = "unclosed parameter")]
    fn unclosed_param_panics() {
        let _ = UriTemplate::parse("/{oops");
    }
}
