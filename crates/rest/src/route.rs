//! Route derivation from the resource model.
//!
//! Implements the paper's `urls.py` step: "By traversing the tags on the
//! associations between the resources, we compose the paths of each
//! resource. We always start from the corresponding collection, especially
//! if we are referencing an item in the collection."
//!
//! Derivation starts from the root resource definitions (those with no
//! incoming association). A collection target contributes its role name as
//! a literal segment and its contained resource adds an `{<name>_id}`
//! parameter; a to-one association contributes just its role name; a
//! to-many association to a normal resource contributes the role plus an id
//! parameter.

use crate::uri::{Segment, UriTemplate};
use cm_model::{HttpMethod, Multiplicity, ResourceKind, ResourceModel, UpperBound};
use std::collections::HashMap;
use std::fmt;

/// A derived route: a resource definition reachable at a URI template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Resource-definition name served at this route.
    pub resource: String,
    /// Whether the definition is a collection.
    pub kind: ResourceKind,
    /// The URI template.
    pub template: UriTemplate,
    /// Methods permitted at this route.
    pub methods: Vec<HttpMethod>,
    /// Name of the contained resource definition (collections only).
    pub contained: Option<String>,
    /// The permitted methods pre-joined for the `Allow` header (e.g.
    /// `"GET, PUT, DELETE"`) so a 405 response allocates nothing per
    /// mismatch.
    pub allow: String,
}

impl Route {
    /// Build a route, precomputing the `Allow`-header rendering of
    /// `methods`.
    fn derived(
        resource: String,
        kind: ResourceKind,
        template: UriTemplate,
        methods: Vec<HttpMethod>,
        contained: Option<String>,
    ) -> Route {
        let allow = methods
            .iter()
            .map(|m| m.as_str())
            .collect::<Vec<_>>()
            .join(", ");
        Route {
            resource,
            kind,
            template,
            methods,
            contained,
            allow,
        }
    }

    /// The resource-definition name that a `method` request to this route
    /// acts upon — POST to a collection creates an instance of the
    /// *contained* definition, so the behavioural trigger is on that name.
    #[must_use]
    pub fn trigger_resource(&self, method: HttpMethod) -> &str {
        match (&self.contained, method) {
            (Some(contained), HttpMethod::Post) => contained,
            _ => &self.resource,
        }
    }
}

/// Outcome of resolving a request against a [`RouteTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution<'a> {
    /// No route matches the path.
    NotFound,
    /// A route matches but does not permit the method; carries the
    /// permitted methods for the `Allow` header.
    MethodNotAllowed {
        /// The matched route.
        route: &'a Route,
    },
    /// Route matched; parameters captured from the path.
    Matched {
        /// The matched route.
        route: &'a Route,
        /// Captured path parameters, e.g. `volume_id -> "7"`.
        params: HashMap<String, String>,
    },
}

/// Per-segment-count dispatch bucket: route indices keyed by their
/// leading literal segment, plus the routes whose first segment is a
/// parameter (which can match any leading segment).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct LenBucket {
    by_literal: HashMap<String, Vec<usize>>,
    wildcard: Vec<usize>,
}

/// A table of derived routes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
    /// Dispatch index built once at derivation time: segment count →
    /// bucket. [`RouteTable::resolve`] only probes routes whose template
    /// has the request's segment count and a compatible leading segment,
    /// replacing the former linear scan over every template.
    dispatch: HashMap<usize, LenBucket>,
}

impl RouteTable {
    /// Derive the route table from a resource model.
    ///
    /// `prefix` is prepended to every template (e.g. `/v3`). Root
    /// *collections* contribute no literal segment — matching the Cinder
    /// paths `/v3/{project_id}/volumes/{volume_id}` where the `Projects`
    /// collection is implicit; root *normal* definitions contribute their
    /// name.
    #[must_use]
    pub fn derive(model: &ResourceModel, prefix: &str) -> RouteTable {
        let mut table = RouteTable::default();
        let base = UriTemplate::parse(prefix);
        let roots: Vec<String> = model.roots().map(|d| d.name.clone()).collect();
        for root in roots {
            let mut visited = Vec::new();
            table.derive_into(model, &root, base.clone(), true, &mut visited);
        }
        table.build_dispatch();
        table
    }

    /// Index every route by (segment count, leading literal). Buckets
    /// hold indices in derivation order, so merged iteration preserves
    /// the first-match semantics of the old linear scan.
    fn build_dispatch(&mut self) {
        self.dispatch.clear();
        for (i, route) in self.routes.iter().enumerate() {
            let segments = route.template.segments();
            let bucket = self.dispatch.entry(segments.len()).or_default();
            match segments.first() {
                Some(Segment::Literal(lit)) => {
                    bucket.by_literal.entry(lit.clone()).or_default().push(i);
                }
                _ => bucket.wildcard.push(i),
            }
        }
    }

    fn derive_into(
        &mut self,
        model: &ResourceModel,
        def_name: &str,
        path_so_far: UriTemplate,
        is_root: bool,
        visited: &mut Vec<String>,
    ) {
        if visited.iter().any(|v| v == def_name) {
            return; // cycle guard
        }
        visited.push(def_name.to_string());

        let Some(def) = model.definition(def_name) else {
            visited.pop();
            return;
        };

        match def.kind {
            ResourceKind::Collection => {
                // Root collections are implicit; nested ones already got
                // their role segment from the caller.
                let collection_path = path_so_far;
                let contained = model
                    .outgoing(&def.name)
                    .find(|a| a.multiplicity == Multiplicity::ZERO_MANY)
                    .map(|a| a.target.clone());
                if !is_root {
                    self.routes.push(Route::derived(
                        def.name.clone(),
                        ResourceKind::Collection,
                        collection_path.clone(),
                        vec![HttpMethod::Get, HttpMethod::Post],
                        contained.clone(),
                    ));
                }
                if let Some(contained_name) = contained {
                    let item_path = collection_path.param(format!("{contained_name}_id"));
                    self.routes.push(Route::derived(
                        contained_name.clone(),
                        ResourceKind::Normal,
                        item_path.clone(),
                        vec![HttpMethod::Get, HttpMethod::Put, HttpMethod::Delete],
                        None,
                    ));
                    // Recurse into the contained resource's associations.
                    self.derive_children(model, &contained_name, item_path, visited);
                }
            }
            ResourceKind::Normal => {
                let path = if is_root {
                    path_so_far.literal(def.name.clone())
                } else {
                    path_so_far
                };
                self.routes.push(Route::derived(
                    def.name.clone(),
                    ResourceKind::Normal,
                    path.clone(),
                    vec![HttpMethod::Get, HttpMethod::Put, HttpMethod::Delete],
                    None,
                ));
                self.derive_children(model, &def.name, path, visited);
            }
        }
        visited.pop();
    }

    fn derive_children(
        &mut self,
        model: &ResourceModel,
        def_name: &str,
        base: UriTemplate,
        visited: &mut Vec<String>,
    ) {
        let assocs: Vec<_> = model.outgoing(def_name).cloned().collect();
        for a in assocs {
            let Some(target) = model.definition(&a.target) else {
                continue;
            };
            match target.kind {
                ResourceKind::Collection => {
                    let collection_path = base.clone().literal(a.role.clone());
                    // Route for the collection itself, then its items.
                    let contained = model
                        .outgoing(&target.name)
                        .find(|x| x.multiplicity == Multiplicity::ZERO_MANY)
                        .map(|x| x.target.clone());
                    self.routes.push(Route::derived(
                        target.name.clone(),
                        ResourceKind::Collection,
                        collection_path.clone(),
                        vec![HttpMethod::Get, HttpMethod::Post],
                        contained.clone(),
                    ));
                    if let Some(contained_name) = contained {
                        if visited.iter().any(|v| v == &contained_name) {
                            continue;
                        }
                        visited.push(contained_name.clone());
                        let item_path = collection_path.param(format!("{contained_name}_id"));
                        self.routes.push(Route::derived(
                            contained_name.clone(),
                            ResourceKind::Normal,
                            item_path.clone(),
                            vec![HttpMethod::Get, HttpMethod::Put, HttpMethod::Delete],
                            None,
                        ));
                        self.derive_children(model, &contained_name, item_path, visited);
                        visited.pop();
                    }
                }
                ResourceKind::Normal => {
                    if visited.iter().any(|v| v == &target.name) {
                        continue;
                    }
                    let to_many = matches!(a.multiplicity.upper, UpperBound::Many)
                        || matches!(a.multiplicity.upper, UpperBound::Finite(n) if n > 1);
                    let path = if to_many {
                        base.clone()
                            .literal(a.role.clone())
                            .param(format!("{}_id", target.name))
                    } else {
                        base.clone().literal(a.role.clone())
                    };
                    visited.push(target.name.clone());
                    self.routes.push(Route::derived(
                        target.name.clone(),
                        ResourceKind::Normal,
                        path.clone(),
                        vec![HttpMethod::Get, HttpMethod::Put, HttpMethod::Delete],
                        None,
                    ));
                    self.derive_children(model, &target.name, path, visited);
                    visited.pop();
                }
            }
        }
    }

    /// All routes, in derivation order.
    #[must_use]
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// First route serving the given resource definition.
    #[must_use]
    pub fn route_for(&self, resource: &str) -> Option<&Route> {
        self.routes.iter().find(|r| r.resource == resource)
    }

    /// The route on which a behavioural trigger is exercised: the route
    /// that permits the method *and* whose acted-on resource matches —
    /// e.g. `POST(volume)` resolves to the `Volumes` collection route,
    /// `DELETE(volume)` to the volume item route.
    #[must_use]
    pub fn route_for_trigger(&self, method: HttpMethod, resource: &str) -> Option<&Route> {
        self.routes
            .iter()
            .find(|r| r.methods.contains(&method) && r.trigger_resource(method) == resource)
    }

    /// Resolve a method + path against the table.
    ///
    /// The path is split once; only routes in the matching dispatch
    /// bucket (same segment count, compatible leading segment) are
    /// probed, in derivation order.
    #[must_use]
    pub fn resolve(&self, method: HttpMethod, path: &str) -> Resolution<'_> {
        let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let Some(bucket) = self.dispatch.get(&parts.len()) else {
            return Resolution::NotFound;
        };
        let by_literal: &[usize] = parts
            .first()
            .and_then(|first| bucket.by_literal.get(*first))
            .map_or(&[], Vec::as_slice);
        // Merge the two ascending index lists so candidates are visited
        // in derivation order, exactly like the old full scan.
        let (mut i, mut j) = (0, 0);
        while i < by_literal.len() || j < bucket.wildcard.len() {
            let idx = match (by_literal.get(i), bucket.wildcard.get(j)) {
                (Some(&a), Some(&b)) if a < b => {
                    i += 1;
                    a
                }
                (Some(_), Some(&b)) => {
                    j += 1;
                    b
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!(),
            };
            let route = &self.routes[idx];
            if let Some(params) = route.template.match_segments(&parts) {
                if route.methods.contains(&method) {
                    return Resolution::Matched { route, params };
                }
                return Resolution::MethodNotAllowed { route };
            }
        }
        Resolution::NotFound
    }
}

impl fmt::Display for RouteTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.routes.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{} [{}] -> {}", r.template, r.allow, r.resource)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_model::cinder;

    fn cinder_table() -> RouteTable {
        RouteTable::derive(&cinder::resource_model(), "/v3")
    }

    #[test]
    fn derives_cinder_paths() {
        let table = cinder_table();
        let templates: Vec<String> = table
            .routes()
            .iter()
            .map(|r| r.template.to_string())
            .collect();
        assert!(
            templates.contains(&"/v3/{project_id}".to_string()),
            "{templates:?}"
        );
        assert!(templates.contains(&"/v3/{project_id}/volumes".to_string()));
        assert!(
            templates.contains(&"/v3/{project_id}/volumes/{volume_id}".to_string()),
            "{templates:?}"
        );
        assert!(templates.contains(&"/v3/{project_id}/quota_sets".to_string()));
        assert!(templates.contains(&"/v3/{project_id}/usergroup/{usergroup_id}".to_string()));
    }

    #[test]
    fn volume_route_permits_paper_methods() {
        let table = cinder_table();
        let volume = table.route_for("volume").unwrap();
        assert_eq!(
            volume.methods,
            vec![HttpMethod::Get, HttpMethod::Put, HttpMethod::Delete]
        );
        let volumes = table.route_for("Volumes").unwrap();
        assert_eq!(volumes.methods, vec![HttpMethod::Get, HttpMethod::Post]);
    }

    #[test]
    fn resolve_matches_volume_item() {
        let table = cinder_table();
        match table.resolve(HttpMethod::Delete, "/v3/4/volumes/7") {
            Resolution::Matched { route, params } => {
                assert_eq!(route.resource, "volume");
                assert_eq!(params["project_id"], "4");
                assert_eq!(params["volume_id"], "7");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resolve_method_not_allowed() {
        let table = cinder_table();
        match table.resolve(HttpMethod::Delete, "/v3/4/volumes") {
            Resolution::MethodNotAllowed { route } => {
                assert_eq!(route.resource, "Volumes");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resolve_not_found() {
        let table = cinder_table();
        assert_eq!(
            table.resolve(HttpMethod::Get, "/v3/4/servers/1"),
            Resolution::NotFound
        );
    }

    #[test]
    fn post_on_collection_triggers_contained_resource() {
        let table = cinder_table();
        let volumes = table.route_for("Volumes").unwrap();
        assert_eq!(volumes.trigger_resource(HttpMethod::Post), "volume");
        assert_eq!(volumes.trigger_resource(HttpMethod::Get), "Volumes");
        let volume = table.route_for("volume").unwrap();
        assert_eq!(volume.trigger_resource(HttpMethod::Delete), "volume");
    }

    #[test]
    fn display_lists_routes() {
        let table = cinder_table();
        let text = table.to_string();
        assert!(text.contains("/v3/{project_id}/volumes/{volume_id} [GET, PUT, DELETE] -> volume"));
    }

    #[test]
    fn allow_header_is_precomputed_per_route() {
        let table = cinder_table();
        for route in table.routes() {
            let joined = route
                .methods
                .iter()
                .map(|m| m.as_str())
                .collect::<Vec<_>>()
                .join(", ");
            assert_eq!(route.allow, joined, "{}", route.template);
        }
        assert_eq!(table.route_for("volume").unwrap().allow, "GET, PUT, DELETE");
    }

    #[test]
    fn dispatch_agrees_with_linear_scan() {
        // The dispatch index must give the same resolution (route AND
        // verdict) as scanning every template in derivation order.
        let table = cinder_table();
        let paths = [
            "/v3/4",
            "/v3/4/volumes",
            "/v3/4/volumes/7",
            "/v3/4/volumes/7/snapshots",
            "/v3/4/quota_sets",
            "/v3/4/usergroup/2",
            "/v4/4/volumes",
            "/v3/4/servers/1",
            "/v3",
            "/",
            "/v3/4/volumes/7/snapshots/9/extra",
        ];
        for method in [
            HttpMethod::Get,
            HttpMethod::Post,
            HttpMethod::Put,
            HttpMethod::Delete,
        ] {
            for path in paths {
                let linear = table
                    .routes()
                    .iter()
                    .find_map(|route| {
                        route.template.match_path(path).map(|params| {
                            if route.methods.contains(&method) {
                                Resolution::Matched { route, params }
                            } else {
                                Resolution::MethodNotAllowed { route }
                            }
                        })
                    })
                    .unwrap_or(Resolution::NotFound);
                assert_eq!(table.resolve(method, path), linear, "{method:?} {path}");
            }
        }
    }

    #[test]
    fn cyclic_models_terminate() {
        use cm_model::{Association, AttrType, Attribute, ResourceDef, ResourceModel};
        let mut m = ResourceModel::new("cyclic");
        m.define(ResourceDef::normal(
            "a",
            vec![Attribute::new("x", AttrType::Int)],
        ))
        .define(ResourceDef::normal(
            "b",
            vec![Attribute::new("y", AttrType::Int)],
        ))
        .associate(Association::new("b", "a", "b", Multiplicity::ONE))
        .associate(Association::new("a", "b", "a", Multiplicity::ONE));
        // must not loop forever; `a` is a root (no incoming? both have incoming)
        let table = RouteTable::derive(&m, "/api");
        // Fully cyclic model has no roots, so no routes — fine, just terminate.
        assert!(table.routes().len() < 10);
    }
}

#[cfg(test)]
mod trigger_route_tests {
    use super::*;
    use cm_model::cinder;

    #[test]
    fn trigger_routes_pick_collection_for_post() {
        let table = RouteTable::derive(&cinder::resource_model(), "/v3");
        let post = table.route_for_trigger(HttpMethod::Post, "volume").unwrap();
        assert_eq!(post.template.to_string(), "/v3/{project_id}/volumes");
        let delete = table
            .route_for_trigger(HttpMethod::Delete, "volume")
            .unwrap();
        assert_eq!(
            delete.template.to_string(),
            "/v3/{project_id}/volumes/{volume_id}"
        );
        assert!(table
            .route_for_trigger(HttpMethod::Delete, "Volumes")
            .is_none());
    }
}
