//! The durable verdict record and its binary codec.
//!
//! One [`AuditRecord`] is written per monitored request. Beyond what the
//! in-memory `MonitorEvent` carries, a record captures everything replay
//! needs to *re-evaluate* the request against a different (updated)
//! contract set without a live cloud: the observed pre-/post-state
//! environments, the cloud's raw status code (before any enforce-mode
//! rewrite), the probe denials, and the degraded-policy context that
//! explains unchecked or refused forwards.
//!
//! ## Encoding
//!
//! Records are encoded with a deterministic, versioned, little-endian
//! binary codec (`encode_record` / `decode_record`): encoding the same
//! record twice yields identical bytes, and decoding then re-encoding a
//! current-version payload is byte-identical — the property the
//! corruption battery pins down. Older-version payloads still decode
//! (re-encoding upgrades them to the current version). On disk each payload travels in a CRC frame
//! ([`encode_frame`]): `len: u32 | crc32(payload): u32 | payload`.

use crate::crc::crc32;
use cm_ocl::{CollectionKind, MapNavigator, ObjRef, Value};
use cm_rest::Json;
use std::fmt;

/// Codec version written as the first payload byte. Version 2 added the
/// [`VerdictCode::Drift`] verdict, the [`ReplayContext::Drift`] context,
/// and the environment-provenance byte on [`ReplayContext::Checked`];
/// version-1 payloads still decode (provenance defaults to
/// [`EnvProvenance::Probe`]).
pub const RECORD_VERSION: u8 = 2;

/// Oldest codec version [`decode_record`] still accepts.
pub const MIN_RECORD_VERSION: u8 = 1;

/// Upper bound on one frame's payload, rejecting corrupt length headers
/// before any allocation happens.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Bytes of frame overhead in front of every payload (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// The monitor mode a record was taken under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorMode {
    /// Blocking proxy (Figure 2).
    Enforce,
    /// Forward-and-classify test oracle.
    Observe,
}

impl MonitorMode {
    fn tag(self) -> u8 {
        match self {
            MonitorMode::Enforce => 0,
            MonitorMode::Observe => 1,
        }
    }
}

/// Structured verdict, mirroring `cm_core::Verdict` without the
/// dependency (cm-core sits *above* this crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerdictCode {
    /// Contract satisfied (or correctly denied request).
    Pass,
    /// Outside the behavioural model.
    NotModelled,
    /// Blocked by the enforce-mode pre-check.
    PreBlocked,
    /// Unauthorized/disallowed request succeeded.
    WrongAcceptance,
    /// Authorized request denied.
    WrongDenial,
    /// Post-condition failed.
    PostViolation,
    /// Unexpected success status.
    WrongStatus {
        /// Status the uniform interface specifies.
        expected: u16,
        /// Status the cloud sent.
        actual: u16,
    },
    /// Contract evaluation failed.
    ContractError,
    /// Transport prevented checking; explicitly not a violation.
    Degraded,
    /// Anti-entropy reconciliation found the shadow replica diverged
    /// from the cloud: out-of-band mutation bypassed the monitor. Not a
    /// request violation — the monitored request itself was judged
    /// separately.
    Drift,
}

impl VerdictCode {
    /// The label `cm_core::Verdict::Display` renders for this verdict.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            VerdictCode::Pass => "pass".into(),
            VerdictCode::NotModelled => "not-modelled".into(),
            VerdictCode::PreBlocked => "pre-blocked".into(),
            VerdictCode::WrongAcceptance => "wrong-acceptance".into(),
            VerdictCode::WrongDenial => "wrong-denial".into(),
            VerdictCode::PostViolation => "post-violation".into(),
            VerdictCode::WrongStatus { expected, actual } => {
                format!("wrong-status(expected {expected}, got {actual})")
            }
            VerdictCode::ContractError => "contract-error".into(),
            VerdictCode::Degraded => "degraded".into(),
            VerdictCode::Drift => "drift".into(),
        }
    }

    /// True for verdicts that indicate a fault in the cloud.
    #[must_use]
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            VerdictCode::WrongAcceptance
                | VerdictCode::WrongDenial
                | VerdictCode::PostViolation
                | VerdictCode::WrongStatus { .. }
        )
    }
}

impl fmt::Display for VerdictCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A serialized OCL evaluation environment: the flattened, *sorted*
/// bindings of a `MapNavigator` snapshot. Sorting makes the encoding
/// deterministic regardless of hash-map iteration order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnvSnapshot {
    /// Root variable bindings, sorted by name.
    pub vars: Vec<(String, Value)>,
    /// Attribute bindings, sorted by (class, id, property).
    pub attrs: Vec<(ObjRef, String, Value)>,
}

impl EnvSnapshot {
    /// Capture a navigator's bindings.
    #[must_use]
    pub fn capture(nav: &MapNavigator) -> Self {
        let mut vars: Vec<(String, Value)> = nav
            .variables()
            .map(|(name, value)| (name.to_string(), value.clone()))
            .collect();
        vars.sort_by(|a, b| a.0.cmp(&b.0));
        let mut attrs: Vec<(ObjRef, String, Value)> = nav
            .attributes()
            .map(|(obj, prop, value)| (obj.clone(), prop.to_string(), value.clone()))
            .collect();
        attrs.sort_by(|a, b| (&a.0.class, a.0.id, &a.1).cmp(&(&b.0.class, b.0.id, &b.1)));
        EnvSnapshot { vars, attrs }
    }

    /// Rebuild the navigator for re-evaluation.
    #[must_use]
    pub fn to_navigator(&self) -> MapNavigator {
        let mut nav = MapNavigator::new();
        for (name, value) in &self.vars {
            nav.set_variable(name.clone(), value.clone());
        }
        for (obj, prop, value) in &self.attrs {
            nav.set_attribute(obj.clone(), prop.clone(), value.clone());
        }
        nav
    }
}

/// Where the environments in a [`ReplayContext::Checked`] record came
/// from: live probe round-trips against the cloud, or the monitor's
/// shadow replica (zero probes). Replay uses this to re-judge
/// replica-mode traces with the same trust model they were taken under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnvProvenance {
    /// Environments observed by probing the cloud (version-1 default).
    #[default]
    Probe,
    /// Environments served from the model-derived shadow replica.
    Replica,
}

impl EnvProvenance {
    fn tag(self) -> u8 {
        match self {
            EnvProvenance::Probe => 0,
            EnvProvenance::Replica => 1,
        }
    }

    /// The label rendered in summaries and replay reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EnvProvenance::Probe => "probe",
            EnvProvenance::Replica => "replica",
        }
    }
}

/// The branch `CloudMonitor::process` took, capturing the transport-level
/// facts replay cannot re-derive from a contract set alone.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayContext {
    /// No modelled route / no contract for the trigger.
    Unmodelled,
    /// Method outside the model-derived interface.
    MethodNotAllowed {
        /// Enforce blocked it; observe forwarded it.
        enforced: bool,
        /// Status the cloud answered when forwarded.
        cloud_status: Option<u16>,
    },
    /// The URI parameters did not identify a probe target.
    BadTarget,
    /// Pre-snapshot was partial (transport faults); the degraded policy
    /// decided what happened next.
    DegradedPre {
        /// Whether the request was forwarded unchecked.
        forwarded: bool,
        /// The probes the transport failed to deliver.
        faults: Vec<String>,
    },
    /// The forward itself came back as a marked transport fault.
    DegradedForward,
    /// The contract-checked path: full pre-state observed.
    Checked {
        /// The pre-state environment (doubles as the post phase's
        /// `pre()` snapshot).
        pre_env: EnvSnapshot,
        /// The post-state environment, when a post snapshot was taken
        /// and complete.
        post_env: Option<EnvSnapshot>,
        /// A post snapshot was attempted but came back partial.
        post_partial: bool,
        /// Denied admin-authority probes (the wrong-denial signal).
        probe_denials: Vec<String>,
        /// Whether the request reached the cloud.
        forwarded: bool,
        /// The status the *cloud* answered with, before any
        /// enforce-mode rewrite of violation responses.
        cloud_status: Option<u16>,
        /// Where the environments came from (probe vs shadow replica).
        provenance: EnvProvenance,
    },
    /// An anti-entropy pass found replica/cloud divergence. The record's
    /// requirements list carries the contracts whose scopes touch the
    /// drifted attributes.
    Drift {
        /// `root.attr` pairs that diverged, e.g. `volume.size`.
        attributes: Vec<String>,
    },
}

/// One durable verdict record.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// The monitor's global admission sequence number (causal order).
    pub seq: u64,
    /// Wall-clock nanoseconds since the Unix epoch at emission.
    pub ts_nanos: u64,
    /// HTTP method of the monitored request.
    pub method: String,
    /// Request path (including any query string).
    pub path: String,
    /// Resolved route template, if modelled.
    pub route: Option<String>,
    /// The behavioural trigger as `(method, resource)`, if resolved.
    pub trigger: Option<(String, String)>,
    /// The monitoring mode in force.
    pub mode: MonitorMode,
    /// The degraded policy in force, e.g. `fail-closed`, `fail-open:16`.
    pub degraded_policy: String,
    /// The verdict.
    pub verdict: VerdictCode,
    /// Security-requirement ids exercised (or untestable, for Degraded).
    pub requirements: Vec<String>,
    /// Status returned to the monitor's client.
    pub status: u16,
    /// Free-form diagnostics.
    pub diagnostics: String,
    /// The replay context; see [`ReplayContext`].
    pub context: ReplayContext,
}

impl AuditRecord {
    /// Compact JSON summary served by `/-/events/stream` and
    /// `cmcli audit verify` (environments elided — they are replay
    /// inputs, not dashboard material).
    #[must_use]
    pub fn summary_json(&self, offset: u64) -> Json {
        let int = |v: u64| Json::Int(i64::try_from(v).unwrap_or(i64::MAX));
        Json::object(vec![
            ("offset", int(offset)),
            ("seq", int(self.seq)),
            ("ts_nanos", int(self.ts_nanos)),
            ("method", Json::Str(self.method.clone())),
            ("path", Json::Str(self.path.clone())),
            ("route", self.route.clone().map_or(Json::Null, Json::Str)),
            ("verdict", Json::Str(self.verdict.label())),
            ("violation", Json::Bool(self.verdict.is_violation())),
            ("status", Json::Int(i64::from(self.status))),
            (
                "requirements",
                Json::Array(self.requirements.iter().cloned().map(Json::Str).collect()),
            ),
            ("diagnostics", Json::Str(self.diagnostics.clone())),
        ])
    }
}

/// A codec failure: the payload is not a valid record of any known
/// version. During recovery this terminates the scan (torn tail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    pub message: String,
}

impl DecodeError {
    fn new(message: impl Into<String>) -> Self {
        DecodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit record decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Primitive writers / readers
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).unwrap_or(u32::MAX));
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => put_u8(out, 0),
        Some(s) => {
            put_u8(out, 1);
            put_str(out, s);
        }
    }
}

fn put_strs(out: &mut Vec<u8>, items: &[String]) {
    put_u32(out, u32::try_from(items.len()).unwrap_or(u32::MAX));
    for item in items {
        put_str(out, item);
    }
}

/// Cursor over a payload being decoded.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| DecodeError::new("payload truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        if len > self.bytes.len().saturating_sub(self.pos) {
            return Err(DecodeError::new("string length exceeds payload"));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| DecodeError::new("string is not UTF-8"))
    }

    fn opt_str(&mut self) -> Result<Option<String>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            t => Err(DecodeError::new(format!("bad option tag {t}"))),
        }
    }

    fn strs(&mut self) -> Result<Vec<String>, DecodeError> {
        let count = self.u32()? as usize;
        if count > self.bytes.len().saturating_sub(self.pos) {
            return Err(DecodeError::new("list count exceeds payload"));
        }
        (0..count).map(|_| self.str()).collect()
    }

    fn done(&self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::new("trailing bytes after record"))
        }
    }
}

// ---------------------------------------------------------------------
// Value / environment codec
// ---------------------------------------------------------------------

fn collection_tag(kind: CollectionKind) -> u8 {
    match kind {
        CollectionKind::Set => 0,
        CollectionKind::Bag => 1,
        CollectionKind::Sequence => 2,
        CollectionKind::OrderedSet => 3,
    }
}

fn collection_kind(tag: u8) -> Result<CollectionKind, DecodeError> {
    match tag {
        0 => Ok(CollectionKind::Set),
        1 => Ok(CollectionKind::Bag),
        2 => Ok(CollectionKind::Sequence),
        3 => Ok(CollectionKind::OrderedSet),
        t => Err(DecodeError::new(format!("bad collection kind {t}"))),
    }
}

fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Undefined => put_u8(out, 0),
        Value::Bool(b) => {
            put_u8(out, 1);
            put_u8(out, u8::from(*b));
        }
        Value::Int(i) => {
            put_u8(out, 2);
            put_u64(out, *i as u64);
        }
        Value::Real(r) => {
            put_u8(out, 3);
            put_u64(out, r.to_bits());
        }
        Value::Str(s) => {
            put_u8(out, 4);
            put_str(out, s);
        }
        Value::Obj(obj) => {
            put_u8(out, 5);
            put_str(out, &obj.class);
            put_u64(out, obj.id);
        }
        Value::Coll(kind, elements) => {
            put_u8(out, 6);
            put_u8(out, collection_tag(*kind));
            put_u32(out, u32::try_from(elements.len()).unwrap_or(u32::MAX));
            for element in elements {
                put_value(out, element);
            }
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, DecodeError> {
    match r.u8()? {
        0 => Ok(Value::Undefined),
        1 => Ok(Value::Bool(r.u8()? != 0)),
        2 => Ok(Value::Int(r.u64()? as i64)),
        3 => Ok(Value::Real(f64::from_bits(r.u64()?))),
        4 => Ok(Value::Str(r.str()?)),
        5 => {
            let class = r.str()?;
            let id = r.u64()?;
            Ok(Value::Obj(ObjRef::new(class, id)))
        }
        6 => {
            let kind = collection_kind(r.u8()?)?;
            let count = r.u32()? as usize;
            if count > r.bytes.len().saturating_sub(r.pos) {
                return Err(DecodeError::new("collection count exceeds payload"));
            }
            let elements = (0..count)
                .map(|_| read_value(r))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::Coll(kind, elements))
        }
        t => Err(DecodeError::new(format!("bad value tag {t}"))),
    }
}

fn put_env(out: &mut Vec<u8>, env: &EnvSnapshot) {
    put_u32(out, u32::try_from(env.vars.len()).unwrap_or(u32::MAX));
    for (name, value) in &env.vars {
        put_str(out, name);
        put_value(out, value);
    }
    put_u32(out, u32::try_from(env.attrs.len()).unwrap_or(u32::MAX));
    for (obj, prop, value) in &env.attrs {
        put_str(out, &obj.class);
        put_u64(out, obj.id);
        put_str(out, prop);
        put_value(out, value);
    }
}

fn read_env(r: &mut Reader<'_>) -> Result<EnvSnapshot, DecodeError> {
    let var_count = r.u32()? as usize;
    if var_count > r.bytes.len().saturating_sub(r.pos) {
        return Err(DecodeError::new("variable count exceeds payload"));
    }
    let mut vars = Vec::with_capacity(var_count);
    for _ in 0..var_count {
        let name = r.str()?;
        let value = read_value(r)?;
        vars.push((name, value));
    }
    let attr_count = r.u32()? as usize;
    if attr_count > r.bytes.len().saturating_sub(r.pos) {
        return Err(DecodeError::new("attribute count exceeds payload"));
    }
    let mut attrs = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let class = r.str()?;
        let id = r.u64()?;
        let prop = r.str()?;
        let value = read_value(r)?;
        attrs.push((ObjRef::new(class, id), prop, value));
    }
    Ok(EnvSnapshot { vars, attrs })
}

// ---------------------------------------------------------------------
// Verdict / context / record codec
// ---------------------------------------------------------------------

fn put_verdict(out: &mut Vec<u8>, verdict: &VerdictCode) {
    match verdict {
        VerdictCode::Pass => put_u8(out, 0),
        VerdictCode::NotModelled => put_u8(out, 1),
        VerdictCode::PreBlocked => put_u8(out, 2),
        VerdictCode::WrongAcceptance => put_u8(out, 3),
        VerdictCode::WrongDenial => put_u8(out, 4),
        VerdictCode::PostViolation => put_u8(out, 5),
        VerdictCode::WrongStatus { expected, actual } => {
            put_u8(out, 6);
            put_u16(out, *expected);
            put_u16(out, *actual);
        }
        VerdictCode::ContractError => put_u8(out, 7),
        VerdictCode::Degraded => put_u8(out, 8),
        VerdictCode::Drift => put_u8(out, 9),
    }
}

fn read_verdict(r: &mut Reader<'_>, version: u8) -> Result<VerdictCode, DecodeError> {
    Ok(match r.u8()? {
        0 => VerdictCode::Pass,
        1 => VerdictCode::NotModelled,
        2 => VerdictCode::PreBlocked,
        3 => VerdictCode::WrongAcceptance,
        4 => VerdictCode::WrongDenial,
        5 => VerdictCode::PostViolation,
        6 => VerdictCode::WrongStatus {
            expected: r.u16()?,
            actual: r.u16()?,
        },
        7 => VerdictCode::ContractError,
        8 => VerdictCode::Degraded,
        9 if version >= 2 => VerdictCode::Drift,
        t => return Err(DecodeError::new(format!("bad verdict tag {t}"))),
    })
}

fn put_opt_u16(out: &mut Vec<u8>, v: Option<u16>) {
    match v {
        None => put_u8(out, 0),
        Some(v) => {
            put_u8(out, 1);
            put_u16(out, v);
        }
    }
}

fn read_opt_u16(r: &mut Reader<'_>) -> Result<Option<u16>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u16()?)),
        t => Err(DecodeError::new(format!("bad option tag {t}"))),
    }
}

fn put_context(out: &mut Vec<u8>, context: &ReplayContext) {
    match context {
        ReplayContext::Unmodelled => put_u8(out, 0),
        ReplayContext::MethodNotAllowed {
            enforced,
            cloud_status,
        } => {
            put_u8(out, 1);
            put_u8(out, u8::from(*enforced));
            put_opt_u16(out, *cloud_status);
        }
        ReplayContext::BadTarget => put_u8(out, 2),
        ReplayContext::DegradedPre { forwarded, faults } => {
            put_u8(out, 3);
            put_u8(out, u8::from(*forwarded));
            put_strs(out, faults);
        }
        ReplayContext::DegradedForward => put_u8(out, 4),
        ReplayContext::Checked {
            pre_env,
            post_env,
            post_partial,
            probe_denials,
            forwarded,
            cloud_status,
            provenance,
        } => {
            put_u8(out, 5);
            put_env(out, pre_env);
            match post_env {
                None => put_u8(out, 0),
                Some(env) => {
                    put_u8(out, 1);
                    put_env(out, env);
                }
            }
            put_u8(out, u8::from(*post_partial));
            put_strs(out, probe_denials);
            put_u8(out, u8::from(*forwarded));
            put_opt_u16(out, *cloud_status);
            put_u8(out, provenance.tag());
        }
        ReplayContext::Drift { attributes } => {
            put_u8(out, 6);
            put_strs(out, attributes);
        }
    }
}

fn read_context(r: &mut Reader<'_>, version: u8) -> Result<ReplayContext, DecodeError> {
    Ok(match r.u8()? {
        0 => ReplayContext::Unmodelled,
        1 => ReplayContext::MethodNotAllowed {
            enforced: r.u8()? != 0,
            cloud_status: read_opt_u16(r)?,
        },
        2 => ReplayContext::BadTarget,
        3 => ReplayContext::DegradedPre {
            forwarded: r.u8()? != 0,
            faults: r.strs()?,
        },
        4 => ReplayContext::DegradedForward,
        5 => {
            let pre_env = read_env(r)?;
            let post_env = match r.u8()? {
                0 => None,
                1 => Some(read_env(r)?),
                t => return Err(DecodeError::new(format!("bad option tag {t}"))),
            };
            let post_partial = r.u8()? != 0;
            let probe_denials = r.strs()?;
            let forwarded = r.u8()? != 0;
            let cloud_status = read_opt_u16(r)?;
            // Version 1 predates the provenance byte: every checked
            // record was probe-observed.
            let provenance = if version >= 2 {
                match r.u8()? {
                    0 => EnvProvenance::Probe,
                    1 => EnvProvenance::Replica,
                    t => return Err(DecodeError::new(format!("bad provenance tag {t}"))),
                }
            } else {
                EnvProvenance::Probe
            };
            ReplayContext::Checked {
                pre_env,
                post_env,
                post_partial,
                probe_denials,
                forwarded,
                cloud_status,
                provenance,
            }
        }
        6 if version >= 2 => ReplayContext::Drift {
            attributes: r.strs()?,
        },
        t => return Err(DecodeError::new(format!("bad context tag {t}"))),
    })
}

/// Encode one record as a versioned payload (no frame).
#[must_use]
pub fn encode_record(record: &AuditRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    put_u8(&mut out, RECORD_VERSION);
    put_u64(&mut out, record.seq);
    put_u64(&mut out, record.ts_nanos);
    put_str(&mut out, &record.method);
    put_str(&mut out, &record.path);
    put_opt_str(&mut out, record.route.as_deref());
    match &record.trigger {
        None => put_u8(&mut out, 0),
        Some((method, resource)) => {
            put_u8(&mut out, 1);
            put_str(&mut out, method);
            put_str(&mut out, resource);
        }
    }
    put_u8(&mut out, record.mode.tag());
    put_str(&mut out, &record.degraded_policy);
    put_verdict(&mut out, &record.verdict);
    put_strs(&mut out, &record.requirements);
    put_u16(&mut out, record.status);
    put_str(&mut out, &record.diagnostics);
    put_context(&mut out, &record.context);
    out
}

/// Decode one payload produced by [`encode_record`].
///
/// # Errors
///
/// [`DecodeError`] on any malformed, truncated, or trailing bytes —
/// recovery treats that as the torn tail.
pub fn decode_record(payload: &[u8]) -> Result<AuditRecord, DecodeError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if !(MIN_RECORD_VERSION..=RECORD_VERSION).contains(&version) {
        return Err(DecodeError::new(format!(
            "unsupported record version {version}"
        )));
    }
    let seq = r.u64()?;
    let ts_nanos = r.u64()?;
    let method = r.str()?;
    let path = r.str()?;
    let route = r.opt_str()?;
    let trigger = match r.u8()? {
        0 => None,
        1 => Some((r.str()?, r.str()?)),
        t => return Err(DecodeError::new(format!("bad option tag {t}"))),
    };
    let mode = match r.u8()? {
        0 => MonitorMode::Enforce,
        1 => MonitorMode::Observe,
        t => return Err(DecodeError::new(format!("bad mode tag {t}"))),
    };
    let degraded_policy = r.str()?;
    let verdict = read_verdict(&mut r, version)?;
    let requirements = r.strs()?;
    let status = r.u16()?;
    let diagnostics = r.str()?;
    let context = read_context(&mut r, version)?;
    r.done()?;
    Ok(AuditRecord {
        seq,
        ts_nanos,
        method,
        path,
        route,
        trigger,
        mode,
        degraded_policy,
        verdict,
        requirements,
        status,
        diagnostics,
        context,
    })
}

/// Append `payload` to `out` as a CRC frame:
/// `len: u32 LE | crc32(payload): u32 LE | payload`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .unwrap_or(u32::MAX)
            .to_le_bytes(),
    );
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Why a frame scan stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEnd {
    /// Clean end exactly at the end of input.
    Clean,
    /// Input ended inside a header or payload (torn write).
    Torn,
    /// The length header exceeds [`MAX_PAYLOAD`] (corruption).
    BadLength,
    /// The payload's checksum did not match (corruption / bit flip).
    BadChecksum,
}

/// Parse the next frame starting at `bytes[offset..]`.
///
/// Returns `Ok((payload, next_offset))` or the [`FrameEnd`] that stops
/// the scan at `offset` — the last good byte of the log.
pub fn next_frame(bytes: &[u8], offset: usize) -> Result<(&[u8], usize), FrameEnd> {
    let rest = match bytes.get(offset..) {
        Some(rest) => rest,
        None => return Err(FrameEnd::Torn),
    };
    if rest.is_empty() {
        return Err(FrameEnd::Clean);
    }
    if rest.len() < FRAME_HEADER {
        return Err(FrameEnd::Torn);
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(FrameEnd::BadLength);
    }
    let expected_crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let end = FRAME_HEADER + len as usize;
    if rest.len() < end {
        return Err(FrameEnd::Torn);
    }
    let payload = &rest[FRAME_HEADER..end];
    if crc32(payload) != expected_crc {
        return Err(FrameEnd::BadChecksum);
    }
    Ok((payload, offset + end))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record(i: u64) -> AuditRecord {
        let mut nav = MapNavigator::new();
        nav.set_variable("project", Value::Obj(ObjRef::new("Project", i)));
        nav.set_attribute(
            ObjRef::new("Project", i),
            "volumes",
            Value::set(vec![Value::Obj(ObjRef::new("Volume", i + 1))]),
        );
        nav.set_attribute(ObjRef::new("Volume", i + 1), "size", Value::Int(5));
        AuditRecord {
            seq: i,
            ts_nanos: 1_700_000_000_000_000_000 + i,
            method: "DELETE".into(),
            path: format!("/v3/1/volumes/{i}"),
            route: Some("/v3/{project_id}/volumes/{volume_id}".into()),
            trigger: Some(("DELETE".into(), "volume".into())),
            mode: MonitorMode::Observe,
            degraded_policy: "fail-closed".into(),
            verdict: if i.is_multiple_of(3) {
                VerdictCode::Pass
            } else {
                VerdictCode::WrongStatus {
                    expected: 204,
                    actual: 200,
                }
            },
            requirements: vec!["1.4".into(), "2.1".into()],
            status: 204,
            diagnostics: "state: Created".into(),
            context: ReplayContext::Checked {
                pre_env: EnvSnapshot::capture(&nav),
                post_env: (i.is_multiple_of(2)).then(|| EnvSnapshot::capture(&nav)),
                post_partial: false,
                probe_denials: Vec::new(),
                forwarded: true,
                cloud_status: Some(204),
                provenance: if i.is_multiple_of(2) {
                    EnvProvenance::Probe
                } else {
                    EnvProvenance::Replica
                },
            },
        }
    }

    #[test]
    fn record_round_trips() {
        for i in 0..8 {
            let record = sample_record(i);
            let bytes = encode_record(&record);
            let decoded = decode_record(&bytes).unwrap();
            assert_eq!(decoded, record);
            // Byte-identical re-encoding.
            assert_eq!(encode_record(&decoded), bytes);
        }
    }

    #[test]
    fn every_context_variant_round_trips() {
        let contexts = vec![
            ReplayContext::Unmodelled,
            ReplayContext::MethodNotAllowed {
                enforced: false,
                cloud_status: Some(200),
            },
            ReplayContext::BadTarget,
            ReplayContext::DegradedPre {
                forwarded: true,
                faults: vec!["GET /v3/1 -> 504 (deadline)".into()],
            },
            ReplayContext::DegradedForward,
            ReplayContext::Drift {
                attributes: vec!["volume.size".into(), "project.volumes".into()],
            },
        ];
        for context in contexts {
            let mut record = sample_record(1);
            record.context = context;
            let bytes = encode_record(&record);
            assert_eq!(decode_record(&bytes).unwrap(), record);
        }
    }

    #[test]
    fn drift_verdict_round_trips_and_is_not_a_violation() {
        let mut record = sample_record(4);
        record.verdict = VerdictCode::Drift;
        record.context = ReplayContext::Drift {
            attributes: vec!["volume.status".into()],
        };
        assert_eq!(record.verdict.label(), "drift");
        assert!(!record.verdict.is_violation());
        let bytes = encode_record(&record);
        let decoded = decode_record(&bytes).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(encode_record(&decoded), bytes);
    }

    /// Hand-encode a version-1 payload (no provenance byte, no Drift
    /// tags) with the in-file putters and assert it still decodes, with
    /// provenance defaulting to `Probe`.
    #[test]
    fn version_one_payloads_still_decode() {
        let record = sample_record(6); // even i -> Probe provenance
        let (pre_env, post_env, post_partial, probe_denials, forwarded, cloud_status) =
            match &record.context {
                ReplayContext::Checked {
                    pre_env,
                    post_env,
                    post_partial,
                    probe_denials,
                    forwarded,
                    cloud_status,
                    ..
                } => (
                    pre_env,
                    post_env,
                    *post_partial,
                    probe_denials,
                    *forwarded,
                    *cloud_status,
                ),
                other => panic!("sample_record changed shape: {other:?}"),
            };
        let mut v1 = Vec::new();
        put_u8(&mut v1, 1); // version 1
        put_u64(&mut v1, record.seq);
        put_u64(&mut v1, record.ts_nanos);
        put_str(&mut v1, &record.method);
        put_str(&mut v1, &record.path);
        put_opt_str(&mut v1, record.route.as_deref());
        let (tm, tr) = record.trigger.as_ref().unwrap();
        put_u8(&mut v1, 1);
        put_str(&mut v1, tm);
        put_str(&mut v1, tr);
        put_u8(&mut v1, record.mode.tag());
        put_str(&mut v1, &record.degraded_policy);
        put_verdict(&mut v1, &record.verdict);
        put_strs(&mut v1, &record.requirements);
        put_u16(&mut v1, record.status);
        put_str(&mut v1, &record.diagnostics);
        // Version-1 Checked context: ends at cloud_status.
        put_u8(&mut v1, 5);
        put_env(&mut v1, pre_env);
        match post_env {
            None => put_u8(&mut v1, 0),
            Some(env) => {
                put_u8(&mut v1, 1);
                put_env(&mut v1, env);
            }
        }
        put_u8(&mut v1, u8::from(post_partial));
        put_strs(&mut v1, probe_denials);
        put_u8(&mut v1, u8::from(forwarded));
        put_opt_u16(&mut v1, cloud_status);

        let decoded = decode_record(&v1).unwrap();
        assert_eq!(decoded, record);

        // Version-1 payloads must reject version-2-only tags: a Drift
        // verdict tag (9) is a codec error under version 1.
        let mut bad = v1.clone();
        // The verdict tag for sample_record(6) is Pass (0), one byte.
        // Rather than hunt the offset, re-encode with the Drift tag.
        let mut record9 = record.clone();
        record9.verdict = VerdictCode::Drift;
        let mut v1_drift = encode_record(&record9);
        v1_drift[0] = 1; // claim version 1
        assert!(decode_record(&v1_drift).is_err());
        bad[0] = 3; // unknown future version
        assert!(decode_record(&bad).is_err());
    }

    #[test]
    fn env_snapshot_capture_is_sorted_and_rebuilds() {
        let mut nav = MapNavigator::new();
        nav.set_variable("zeta", Value::Int(1));
        nav.set_variable("alpha", Value::Bool(true));
        nav.set_attribute(ObjRef::new("B", 2), "y", Value::Int(2));
        nav.set_attribute(ObjRef::new("A", 9), "x", Value::Undefined);
        let env = EnvSnapshot::capture(&nav);
        assert_eq!(env.vars[0].0, "alpha");
        assert_eq!(&*env.attrs[0].0.class, "A");
        let rebuilt = env.to_navigator();
        assert_eq!(rebuilt, nav);
        // Deterministic: capturing twice encodes identically.
        let mut a = Vec::new();
        let mut b = Vec::new();
        put_env(&mut a, &env);
        put_env(&mut b, &EnvSnapshot::capture(&nav));
        assert_eq!(a, b);
    }

    #[test]
    fn frame_scan_stops_at_corruption() {
        let mut bytes = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..3).map(|i| encode_record(&sample_record(i))).collect();
        for p in &payloads {
            encode_frame(p, &mut bytes);
        }
        // Clean scan sees all three.
        let mut offset = 0;
        let mut seen = 0;
        loop {
            match next_frame(&bytes, offset) {
                Ok((payload, next)) => {
                    assert_eq!(payload, payloads[seen].as_slice());
                    seen += 1;
                    offset = next;
                }
                Err(end) => {
                    assert_eq!(end, FrameEnd::Clean);
                    break;
                }
            }
        }
        assert_eq!(seen, 3);

        // A bit flip in the middle frame stops the scan there.
        let first_len = FRAME_HEADER + payloads[0].len();
        let mut flipped = bytes.clone();
        flipped[first_len + FRAME_HEADER + 3] ^= 0x40;
        let (_, after_first) = next_frame(&flipped, 0).unwrap();
        assert_eq!(
            next_frame(&flipped, after_first),
            Err(FrameEnd::BadChecksum)
        );

        // Truncation mid-payload is a torn tail.
        let torn = &bytes[..first_len + 5];
        assert_eq!(next_frame(torn, first_len), Err(FrameEnd::Torn));

        // An absurd length header is rejected before allocation.
        let mut bad_len = bytes.clone();
        bad_len[first_len..first_len + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(next_frame(&bad_len, first_len), Err(FrameEnd::BadLength));
    }

    #[test]
    fn decode_rejects_trailing_and_truncated() {
        let record = sample_record(2);
        let mut bytes = encode_record(&record);
        bytes.push(0);
        assert!(decode_record(&bytes).is_err());
        bytes.pop();
        bytes.truncate(bytes.len() - 1);
        assert!(decode_record(&bytes).is_err());
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[99]).is_err());
    }
}
