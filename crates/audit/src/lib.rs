//! # cm-audit — durable audit trail for the generated cloud monitor
//!
//! The monitor's verdicts are *evidence* (the paper's Figure-2 verdict
//! stream; ISO/IEC TR 3445's audit-trail semantics) and evidence must
//! outlive the process that produced it. This crate provides:
//!
//! * [`AuditRecord`] — one self-contained record per monitored request,
//!   carrying verdict, requirement ids, degraded-policy context, and
//!   the observed pre/post state environments so the trace can later be
//!   **re-evaluated** against an updated contract set (`cmcli audit
//!   replay`);
//! * a deterministic CRC32-framed binary codec
//!   ([`encode_record`] / [`decode_record`] / [`encode_frame`]);
//! * [`AuditLog`] — an append-only segmented log with group-commit
//!   batching off the serve path (bounded channel + dedicated writer
//!   thread, one fsync per group), rotation, retention, checkpoints,
//!   and a bounded in-memory tail implementing `cm_obs::TailStream`
//!   for `/-/events/stream`;
//! * crash-safe recovery ([`recover()`]) that truncates a torn tail
//!   instead of refusing to start, quarantines untrustworthy segments,
//!   and reports any loss against the checkpoint.
//!
//! ## Durability contract
//!
//! `append` is fire-and-forget: on crash, the log loses at most the
//! records still in the bounded channel plus **one** partially-written
//! group (which recovery truncates). Everything before the last
//! group fsync is recovered exactly once, in commit order. A full
//! channel drops records (counted under `audit.dropped` in
//! `/-/metrics`) rather than stalling the monitor.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crc;
pub mod log;
pub mod record;
pub mod recover;

pub use crc::crc32;
pub use log::{AuditLog, AuditLogOptions};
pub use record::{
    decode_record, encode_frame, encode_record, next_frame, AuditRecord, DecodeError,
    EnvProvenance, EnvSnapshot, FrameEnd, MonitorMode, ReplayContext, VerdictCode, FRAME_HEADER,
    MAX_PAYLOAD, MIN_RECORD_VERSION, RECORD_VERSION,
};
pub use recover::{
    read_records, recover, recover_with, write_checkpoint, Recovered, RecoveryReport, SegmentInfo,
};

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Destination for audit records, implemented by [`AuditLog`] (durable)
/// and [`MemoryRecorder`] (tests). Must never block the caller.
pub trait AuditRecorder: Send + Sync + std::fmt::Debug {
    /// Accept one record.
    fn record(&self, record: AuditRecord);
}

impl AuditRecorder for AuditLog {
    fn record(&self, record: AuditRecord) {
        self.append(record);
    }
}

/// In-memory recorder for tests and replay capture.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    records: Mutex<Vec<AuditRecord>>,
}

fn plock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MemoryRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything recorded so far, in order.
    #[must_use]
    pub fn records(&self) -> Vec<AuditRecord> {
        plock(&self.records).clone()
    }

    /// Number of records taken.
    #[must_use]
    pub fn len(&self) -> usize {
        plock(&self.records).len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AuditRecorder for MemoryRecorder {
    fn record(&self, record: AuditRecord) {
        plock(&self.records).push(record);
    }
}
