//! Startup recovery: scan segments, verify every frame, truncate the
//! torn tail, and report what (if anything) was lost.
//!
//! ## Invariants
//!
//! * Recovery never refuses to start on corruption: the log is
//!   truncated at the last byte that parses and checksums cleanly.
//! * Every record before the truncation point is returned exactly once,
//!   in commit order — no duplicates, no gaps.
//! * Corruption in a *non-final* segment quarantines every later
//!   segment (renamed `*.corrupt`, never deleted): commit order cannot
//!   be trusted past the first bad byte.
//! * The checkpoint file is a loss *detector*, not a recovery
//!   dependency: if it records more committed records than the scan
//!   recovers, the difference is surfaced as `lost_committed` and the
//!   log still opens.

use crate::crc::crc32;
use crate::record::{decode_record, next_frame, AuditRecord, FrameEnd};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Magic leading every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"CMAUDSEG";

/// Segment format version.
pub const SEGMENT_VERSION: u32 = 1;

/// Segment header: magic + version + first record offset.
pub const SEGMENT_HEADER: usize = 8 + 4 + 8;

/// Magic leading the checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"CMAUDCKP";

/// Name of the checkpoint file inside the log directory.
pub const CHECKPOINT_FILE: &str = "checkpoint";

/// Build a segment file name from its first record offset. Zero-padded
/// so lexicographic order is commit order.
#[must_use]
pub fn segment_file_name(first_offset: u64) -> String {
    format!("segment-{first_offset:020}.log")
}

/// Serialize a segment header.
#[must_use]
pub fn segment_header(first_offset: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER);
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out.extend_from_slice(&first_offset.to_le_bytes());
    out
}

/// What recovery found and did. All fields are advisory except
/// `next_offset`, which seeds the writer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments that survived the scan.
    pub segments: usize,
    /// Records recovered across all surviving segments.
    pub records: u64,
    /// Offset the next committed record will take.
    pub next_offset: u64,
    /// Bytes cut from the tail of the last surviving segment.
    pub truncated_bytes: u64,
    /// Segments quarantined (renamed `*.corrupt`) because an earlier
    /// segment was corrupt, plus corrupt headers themselves.
    pub quarantined_segments: usize,
    /// Records the checkpoint says were committed but the scan could
    /// not recover (0 when the durability contract held).
    pub lost_committed: u64,
    /// Committed count the checkpoint recorded, if one was readable.
    pub checkpoint: Option<u64>,
}

/// One surviving segment after recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Absolute path of the segment file.
    pub path: PathBuf,
    /// Offset of the segment's first record.
    pub first_offset: u64,
    /// Records in this segment after truncation.
    pub records: u64,
    /// Byte length after truncation (header included).
    pub len: u64,
}

/// Full result of [`recover`].
#[derive(Debug)]
pub struct Recovered {
    /// Summary of the scan.
    pub report: RecoveryReport,
    /// Surviving segments in commit order.
    pub segments: Vec<SegmentInfo>,
}

fn is_segment_name(name: &str) -> bool {
    name.starts_with("segment-") && name.ends_with(".log")
}

fn list_segments(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if is_segment_name(name) {
                segments.push(entry.path());
            }
        }
    }
    segments.sort();
    Ok(segments)
}

fn quarantine(path: &Path) -> io::Result<()> {
    let mut corrupt = path.as_os_str().to_owned();
    corrupt.push(".corrupt");
    fs::rename(path, PathBuf::from(corrupt))
}

/// Scan one segment: verify the header, walk the frames, and decode
/// each record with `visit`. Returns
/// `(header_first_offset, records, valid_len, clean)`; `clean` is
/// false when the scan stopped early (corruption / torn tail).
/// `expected_first = None` accepts any header offset — retention may
/// have deleted older segments, so the first surviving segment defines
/// the base offset.
fn scan_segment(
    bytes: &[u8],
    expected_first: Option<u64>,
    mut visit: impl FnMut(&AuditRecord),
) -> Option<(u64, u64, u64, bool)> {
    if bytes.len() < SEGMENT_HEADER
        || &bytes[0..8] != SEGMENT_MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != SEGMENT_VERSION
    {
        return None;
    }
    let first = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if expected_first.is_some_and(|expected| expected != first) {
        return None;
    }
    let mut offset = SEGMENT_HEADER;
    let mut records = 0u64;
    loop {
        match next_frame(bytes, offset) {
            Ok((payload, next)) => match decode_record(payload) {
                Ok(record) => {
                    visit(&record);
                    records += 1;
                    offset = next;
                }
                // CRC-valid but undecodable payload: treat exactly like
                // a torn tail — stop, do not skip forward.
                Err(_) => return Some((first, records, offset as u64, false)),
            },
            Err(FrameEnd::Clean) => return Some((first, records, offset as u64, true)),
            Err(FrameEnd::Torn | FrameEnd::BadLength | FrameEnd::BadChecksum) => {
                return Some((first, records, offset as u64, false));
            }
        }
    }
}

/// Read the checkpoint file: committed record count at last write.
#[must_use]
pub fn read_checkpoint(dir: &Path) -> Option<u64> {
    let bytes = fs::read(dir.join(CHECKPOINT_FILE)).ok()?;
    if bytes.len() != 8 + 8 + 4 || &bytes[0..8] != CHECKPOINT_MAGIC {
        return None;
    }
    let committed = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    (crc32(&bytes[0..16]) == crc).then_some(committed)
}

/// Atomically write the checkpoint file (`committed` records durable).
pub fn write_checkpoint(dir: &Path, committed: u64) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(20);
    bytes.extend_from_slice(CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&committed.to_le_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    let tmp = dir.join("checkpoint.tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    sync_dir(dir)
}

/// fsync a directory so renames/creations within it are durable.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// Recover the log directory in place: truncate the torn tail of the
/// last trustworthy segment, quarantine anything after a corrupt one,
/// and report. Calls `visit` once per surviving record in commit order.
///
/// # Errors
///
/// Only genuine I/O failures (permission, disk) — corruption is
/// handled, not propagated.
pub fn recover_with(dir: &Path, mut visit: impl FnMut(&AuditRecord)) -> io::Result<Recovered> {
    fs::create_dir_all(dir)?;
    let mut report = RecoveryReport {
        checkpoint: read_checkpoint(dir),
        ..RecoveryReport::default()
    };
    let mut segments = Vec::new();
    let mut next_offset: Option<u64> = None;
    let mut poisoned = false;

    for path in list_segments(dir)? {
        if poisoned {
            quarantine(&path)?;
            report.quarantined_segments += 1;
            continue;
        }
        let mut bytes = Vec::new();
        fs::File::open(&path)?.read_to_end(&mut bytes)?;
        match scan_segment(&bytes, next_offset, &mut visit) {
            None => {
                // Header unreadable or out of sequence: this segment
                // and everything after cannot be ordered.
                quarantine(&path)?;
                report.quarantined_segments += 1;
                poisoned = true;
            }
            Some((first, records, valid_len, clean)) => {
                if !clean {
                    report.truncated_bytes += bytes.len() as u64 - valid_len;
                    let file = fs::OpenOptions::new().write(true).open(&path)?;
                    file.set_len(valid_len)?;
                    file.sync_data()?;
                    // Later segments postdate the torn write; their
                    // records would leave a gap in commit order.
                    poisoned = true;
                }
                segments.push(SegmentInfo {
                    path,
                    first_offset: first,
                    records,
                    len: valid_len,
                });
                next_offset = Some(first + records);
                report.records += records;
            }
        }
    }

    report.segments = segments.len();
    report.next_offset = next_offset.unwrap_or(0);
    report.lost_committed = report
        .checkpoint
        .map_or(0, |c| c.saturating_sub(report.next_offset));
    Ok(Recovered { report, segments })
}

/// Recover and also collect every surviving record.
///
/// # Errors
///
/// Propagates only genuine I/O failures, as [`recover_with`].
pub fn recover(dir: &Path) -> io::Result<(Vec<AuditRecord>, Recovered)> {
    let mut records = Vec::new();
    let recovered = recover_with(dir, |record| records.push(record.clone()))?;
    Ok((records, recovered))
}

/// Read every record from a recovered (or live, after [`recover`]) log
/// directory without mutating anything. Scan stops silently at the
/// first invalid byte, mirroring recovery semantics.
///
/// # Errors
///
/// Genuine I/O failures only.
pub fn read_records(dir: &Path) -> io::Result<Vec<AuditRecord>> {
    let mut records = Vec::new();
    let mut next_offset: Option<u64> = None;
    for path in list_segments(dir)? {
        let mut bytes = Vec::new();
        fs::File::open(&path)?.read_to_end(&mut bytes)?;
        match scan_segment(&bytes, next_offset, |record| records.push(record.clone())) {
            None => break,
            Some((first, count, _, clean)) => {
                next_offset = Some(first + count);
                if !clean {
                    break;
                }
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{
        encode_frame, encode_record, EnvProvenance, EnvSnapshot, MonitorMode, ReplayContext,
        VerdictCode,
    };

    fn record(i: u64) -> AuditRecord {
        AuditRecord {
            seq: i,
            ts_nanos: i * 1000,
            method: "GET".into(),
            path: format!("/v3/{i}"),
            route: None,
            trigger: None,
            mode: MonitorMode::Enforce,
            degraded_policy: "fail-closed".into(),
            verdict: VerdictCode::Pass,
            requirements: vec![],
            status: 200,
            diagnostics: String::new(),
            context: ReplayContext::Checked {
                pre_env: EnvSnapshot::default(),
                post_env: None,
                post_partial: false,
                probe_denials: vec![],
                forwarded: true,
                cloud_status: Some(200),
                provenance: EnvProvenance::default(),
            },
        }
    }

    fn write_segment(dir: &Path, first: u64, count: u64) -> PathBuf {
        let mut bytes = segment_header(first);
        for i in 0..count {
            encode_frame(&encode_record(&record(first + i)), &mut bytes);
        }
        let path = dir.join(segment_file_name(first));
        fs::write(&path, &bytes).unwrap();
        path
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cm-audit-recover-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn clean_multi_segment_log_recovers_everything() {
        let dir = tmp("clean");
        write_segment(&dir, 0, 3);
        write_segment(&dir, 3, 2);
        let (records, recovered) = recover(&dir).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(recovered.report.next_offset, 5);
        assert_eq!(recovered.report.truncated_bytes, 0);
        assert_eq!(recovered.segments.len(), 2);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp("torn");
        let path = write_segment(&dir, 0, 4);
        let full = fs::metadata(&path).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(full - 3)
            .unwrap();
        let (records, recovered) = recover(&dir).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(recovered.report.next_offset, 3);
        assert!(recovered.report.truncated_bytes > 0);
        // Idempotent: a second recovery finds a clean log.
        let (again, r2) = recover(&dir).unwrap();
        assert_eq!(again.len(), 3);
        assert_eq!(r2.report.truncated_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_segment_quarantines_later_ones() {
        let dir = tmp("middle");
        write_segment(&dir, 0, 2);
        let middle = write_segment(&dir, 2, 2);
        write_segment(&dir, 4, 2);
        // Flip a payload byte in the middle segment's first record.
        let mut bytes = fs::read(&middle).unwrap();
        let hit = SEGMENT_HEADER + 8 + 4;
        bytes[hit] ^= 0x10;
        fs::write(&middle, &bytes).unwrap();

        let (records, recovered) = recover(&dir).unwrap();
        assert_eq!(records.len(), 2, "only the first segment survives");
        assert_eq!(recovered.report.quarantined_segments, 1);
        assert_eq!(recovered.report.next_offset, 2);
        // The middle segment was truncated to its header; the later
        // segment is quarantined, not silently replayed out of order.
        assert!(dir
            .read_dir()
            .unwrap()
            .filter_map(Result::ok)
            .any(|e| e.file_name().to_string_lossy().ends_with(".corrupt")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_header_quarantines_segment() {
        let dir = tmp("header");
        write_segment(&dir, 0, 2);
        let bogus = dir.join(segment_file_name(2));
        fs::write(&bogus, b"NOTASEGMENT").unwrap();
        let (records, recovered) = recover(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(recovered.report.quarantined_segments, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_detects_lost_commits() {
        let dir = tmp("ckpt");
        write_segment(&dir, 0, 2);
        write_checkpoint(&dir, 5).unwrap();
        let (_, recovered) = recover(&dir).unwrap();
        assert_eq!(recovered.report.checkpoint, Some(5));
        assert_eq!(recovered.report.lost_committed, 3);
        // A stale (smaller) checkpoint reports no loss.
        write_checkpoint(&dir, 1).unwrap();
        let (_, recovered) = recover(&dir).unwrap();
        assert_eq!(recovered.report.lost_committed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_ignored() {
        let dir = tmp("badckpt");
        write_segment(&dir, 0, 1);
        fs::write(dir.join(CHECKPOINT_FILE), b"garbage").unwrap();
        let (_, recovered) = recover(&dir).unwrap();
        assert_eq!(recovered.report.checkpoint, None);
        assert_eq!(recovered.report.lost_committed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retained_suffix_starting_past_zero_recovers() {
        // Retention may have deleted segment-0: the base offset comes
        // from the first surviving segment's header.
        let dir = tmp("suffix");
        write_segment(&dir, 7, 2);
        write_segment(&dir, 9, 3);
        let (records, recovered) = recover(&dir).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(recovered.report.next_offset, 12);
        assert_eq!(recovered.segments[0].first_offset, 7);
        // A gap between segments is corruption, not tolerated.
        write_segment(&dir, 13, 1);
        let (records, recovered) = recover(&dir).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(recovered.report.quarantined_segments, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_recovers_to_empty_log() {
        let dir = tmp("empty");
        let (records, recovered) = recover(&dir).unwrap();
        assert!(records.is_empty());
        assert_eq!(recovered.report.next_offset, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
