//! The durable audit log: group-commit writer, segment rotation,
//! retention, and the bounded streaming tail.
//!
//! ## Group-commit protocol
//!
//! `append` never blocks and never touches the disk: it `try_send`s the
//! record into a bounded channel (a full channel *drops* the record and
//! counts it — durability pressure must not stall the serve path). A
//! dedicated writer thread drains the channel in groups of up to
//! `group_max`, serializes each record into one buffer of CRC frames,
//! issues **one `write` + one `fsync`** for the whole group, and only
//! then advances the shared `committed` watermark and publishes the
//! group to the in-memory tail ring. On crash the log therefore loses
//! at most the channel contents plus one partially-written group — and
//! the torn group is truncated, never misparsed (see `recover`).
//!
//! ## Rotation and retention
//!
//! When the active segment exceeds `segment_max_bytes` the writer
//! rotates: new segment named by its first record offset, directory
//! fsync, checkpoint update, and deletion of the oldest segments beyond
//! `max_segments`. Offsets are *commit order* across the whole log —
//! retention deletes files but never renumbers.

use crate::record::{encode_frame, encode_record, AuditRecord};
use crate::recover::{
    recover_with, segment_file_name, segment_header, sync_dir, write_checkpoint, RecoveryReport,
    SegmentInfo,
};
use cm_obs::{BrownoutSignal, MetricsRegistry, StreamBatch, TailStream};
use cm_rest::Json;
use std::collections::VecDeque;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Lock recovering from poisoning — the tail ring is observational.
fn plock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`AuditLog::open`].
#[derive(Debug, Clone)]
pub struct AuditLogOptions {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// Keep at most this many segments (oldest deleted on rotation).
    pub max_segments: usize,
    /// Capacity of the bounded append channel.
    pub channel_capacity: usize,
    /// Maximum records per group commit.
    pub group_max: usize,
    /// Records kept in the in-memory streaming tail.
    pub tail_capacity: usize,
    /// fsync after each group (disable only in tests that measure
    /// logic, never in production — the durability contract needs it).
    pub fsync: bool,
    /// Also expire sealed segments older than this at each rotation
    /// (`None` keeps the count-based retention alone). Age is the
    /// segment file's last write; the active segment never expires.
    pub max_age: Option<Duration>,
    /// Brownout ladder signal: while it reports
    /// [`BrownoutSignal::audit_relaxed`] (step ≥ 3), group commits skip
    /// the per-group fsync — durability downgrades to flush-on-rotation
    /// (rotation and shutdown always sync). Each skipped sync counts as
    /// `audit.relaxed_commits`. The record *stream* is unaffected:
    /// every record is still written, in order.
    pub durability_signal: Option<Arc<BrownoutSignal>>,
}

impl Default for AuditLogOptions {
    fn default() -> Self {
        AuditLogOptions {
            segment_max_bytes: 32 * 1024 * 1024,
            max_segments: 8,
            channel_capacity: 4096,
            group_max: 256,
            tail_capacity: 1024,
            fsync: true,
            max_age: None,
            durability_signal: None,
        }
    }
}

/// Commands crossing from the serve path to the writer thread.
enum Cmd {
    Record(Box<AuditRecord>),
    /// Durability barrier: ack once everything sent before it is
    /// committed.
    Flush(mpsc::SyncSender<()>),
}

/// State shared between appenders, the writer, and streaming readers.
#[derive(Debug)]
struct Shared {
    /// Next offset to be committed == total committed records.
    committed: AtomicU64,
    /// Records accepted into the channel.
    appended: AtomicU64,
    /// Records dropped because the channel was full.
    dropped: AtomicU64,
    /// Group-commit write errors.
    write_errors: AtomicU64,
    /// Bounded ring of committed `(offset, summary)` pairs.
    tail: Mutex<VecDeque<(u64, Json)>>,
    /// Signalled after every commit.
    commit_signal: Condvar,
    metrics: Option<Arc<MetricsRegistry>>,
}

/// Handle to a durable audit log. Cloneable via `Arc`; dropping the
/// last handle flushes and joins the writer.
#[derive(Debug)]
pub struct AuditLog {
    shared: Arc<Shared>,
    tx: SyncSender<Cmd>,
    writer: Mutex<Option<thread::JoinHandle<()>>>,
    dir: PathBuf,
}

impl AuditLog {
    /// Open (recovering if necessary) the log in `dir` and start the
    /// writer thread. Returns the handle and the recovery report.
    ///
    /// # Errors
    ///
    /// Genuine I/O failures only; corruption is recovered from.
    pub fn open(
        dir: &Path,
        options: AuditLogOptions,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> io::Result<(Self, RecoveryReport)> {
        let recovered = recover_with(dir, |_| {})?;
        let report = recovered.report.clone();
        let next_offset = report.next_offset;

        // Reuse the last surviving segment if it still has room,
        // otherwise start a fresh one at the current offset.
        let (active_path, active_len, segments) = match recovered.segments.last() {
            Some(last) if last.len < options.segment_max_bytes => {
                (last.path.clone(), last.len, recovered.segments.clone())
            }
            _ => {
                let path = dir.join(segment_file_name(next_offset));
                let header = segment_header(next_offset);
                let mut file = fs::File::create(&path)?;
                file.write_all(&header)?;
                if options.fsync {
                    file.sync_data()?;
                    sync_dir(dir)?;
                }
                let mut segments = recovered.segments.clone();
                segments.push(SegmentInfo {
                    path: path.clone(),
                    first_offset: next_offset,
                    records: 0,
                    len: header.len() as u64,
                });
                (path, header.len() as u64, segments)
            }
        };
        let active = fs::OpenOptions::new().append(true).open(&active_path)?;
        write_checkpoint(dir, next_offset)?;

        let shared = Arc::new(Shared {
            committed: AtomicU64::new(next_offset),
            appended: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            tail: Mutex::new(VecDeque::with_capacity(options.tail_capacity)),
            commit_signal: Condvar::new(),
            metrics,
        });
        let (tx, rx) = mpsc::sync_channel(options.channel_capacity.max(1));
        let writer_state = Writer {
            dir: dir.to_path_buf(),
            active,
            active_len,
            segments,
            next_offset,
            options,
            shared: Arc::clone(&shared),
        };
        let writer = thread::Builder::new()
            .name("cm-audit-writer".into())
            .spawn(move || writer_state.run(rx))
            .map_err(|e| io::Error::other(format!("spawn audit writer: {e}")))?;

        Ok((
            AuditLog {
                shared,
                tx,
                writer: Mutex::new(Some(writer)),
                dir: dir.to_path_buf(),
            },
            report,
        ))
    }

    /// Queue one record for durable append. Never blocks: a full
    /// channel drops the record and counts it under `audit.dropped`.
    pub fn append(&self, record: AuditRecord) {
        match self.tx.try_send(Cmd::Record(Box::new(record))) {
            Ok(()) => {
                self.shared.appended.fetch_add(1, Ordering::Relaxed);
                if let Some(metrics) = &self.shared.metrics {
                    metrics.audit.increment("appended");
                }
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                if let Some(metrics) = &self.shared.metrics {
                    metrics.audit.increment("dropped");
                }
            }
        }
    }

    /// Durability barrier: block until every record appended before
    /// this call is fsynced (or was dropped at the channel).
    ///
    /// # Errors
    ///
    /// If the writer thread is gone.
    pub fn flush(&self) -> io::Result<()> {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        self.tx
            .send(Cmd::Flush(ack_tx))
            .map_err(|_| io::Error::other("audit writer is gone"))?;
        ack_rx
            .recv()
            .map_err(|_| io::Error::other("audit writer died before ack"))
    }

    /// Offset of the next record to commit == records committed so far
    /// (including those recovered at open).
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.shared.committed.load(Ordering::Acquire)
    }

    /// Records accepted into the append channel by this handle's log.
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.shared.appended.load(Ordering::Relaxed)
    }

    /// Records dropped because the channel was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Group-commit write errors.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.shared.write_errors.load(Ordering::Relaxed)
    }

    /// The log directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Flush everything queued, stop the writer thread, and write the
    /// final checkpoint. Idempotent; also runs on drop. After close,
    /// `append` counts every record as dropped.
    pub fn close(&mut self) {
        if let Some(handle) = plock(&self.writer).take() {
            let (ack_tx, ack_rx) = mpsc::sync_channel(1);
            if self.tx.send(Cmd::Flush(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
            // Disconnect the channel so the writer's recv() returns
            // Err and it exits; then join for the final checkpoint.
            let (dummy_tx, _) = mpsc::sync_channel(1);
            drop(std::mem::replace(&mut self.tx, dummy_tx));
            let _ = handle.join();
        }
    }
}

impl Drop for AuditLog {
    fn drop(&mut self) {
        self.close();
    }
}

/// The writer thread's exclusive state.
struct Writer {
    dir: PathBuf,
    active: fs::File,
    active_len: u64,
    segments: Vec<SegmentInfo>,
    next_offset: u64,
    options: AuditLogOptions,
    shared: Arc<Shared>,
}

impl Writer {
    fn run(mut self, rx: Receiver<Cmd>) {
        let mut batch: Vec<Box<AuditRecord>> = Vec::with_capacity(self.options.group_max);
        let mut acks: Vec<mpsc::SyncSender<()>> = Vec::new();
        loop {
            // Block for the first command of the group…
            let first = match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            };
            batch.clear();
            acks.clear();
            match first {
                Cmd::Record(record) => batch.push(record),
                Cmd::Flush(ack) => acks.push(ack),
            }
            // …then opportunistically drain up to group_max records.
            while batch.len() < self.options.group_max {
                match rx.try_recv() {
                    Ok(Cmd::Record(record)) => batch.push(record),
                    Ok(Cmd::Flush(ack)) => acks.push(ack),
                    Err(_) => break,
                }
            }
            self.commit_group(&batch);
            for ack in acks.drain(..) {
                let _ = ack.send(());
            }
        }
        // Channel closed: final checkpoint for a clean shutdown.
        let _ = self.active.sync_data();
        let _ = write_checkpoint(&self.dir, self.next_offset);
    }

    /// One group commit: serialize, single write, single fsync, then
    /// publish.
    fn commit_group(&mut self, batch: &[Box<AuditRecord>]) {
        if batch.is_empty() {
            return;
        }
        let started = Instant::now();
        let mut buf = Vec::with_capacity(batch.len() * 256);
        for record in batch {
            encode_frame(&encode_record(record), &mut buf);
        }
        // Brownout step ≥ 3 downgrades durability to flush-on-rotation:
        // the group is written (ordered, recoverable up to the last
        // page the kernel flushed) but the per-group fsync is skipped.
        let relaxed = self.options.fsync
            && self
                .options
                .durability_signal
                .as_ref()
                .is_some_and(|signal| signal.audit_relaxed());
        if relaxed {
            if let Some(metrics) = &self.shared.metrics {
                metrics.audit.increment("relaxed_commits");
            }
        }
        let written = self
            .active
            .write_all(&buf)
            .and_then(|()| {
                if self.options.fsync && !relaxed {
                    self.active.sync_data()
                } else {
                    Ok(())
                }
            })
            .is_ok();
        if !written {
            // The group may be torn on disk; recovery will truncate
            // it. Surface the failure and carry on — the monitor's
            // serve path must survive a full disk.
            self.shared.write_errors.fetch_add(1, Ordering::Relaxed);
            if let Some(metrics) = &self.shared.metrics {
                metrics.audit.increment("write_errors");
            }
            return;
        }
        self.active_len += buf.len() as u64;
        if let Some(last) = self.segments.last_mut() {
            last.records += batch.len() as u64;
            last.len = self.active_len;
        }

        // Publish: watermark, tail ring, commit signal, metrics.
        {
            let mut tail = plock(&self.shared.tail);
            for record in batch {
                let offset = self.next_offset;
                self.next_offset += 1;
                if tail.len() == self.options.tail_capacity.max(1) {
                    tail.pop_front();
                }
                tail.push_back((offset, record.summary_json(offset)));
            }
            self.shared
                .committed
                .store(self.next_offset, Ordering::Release);
        }
        self.shared.commit_signal.notify_all();
        if let Some(metrics) = &self.shared.metrics {
            metrics.audit.increment("commits");
            metrics.audit_commit.record(started.elapsed());
        }

        if self.active_len >= self.options.segment_max_bytes {
            if let Err(err) = self.rotate() {
                self.shared.write_errors.fetch_add(1, Ordering::Relaxed);
                if let Some(metrics) = &self.shared.metrics {
                    metrics.audit.increment("write_errors");
                }
                let _ = err;
            }
        }
    }

    /// Seal the active segment, start a new one, checkpoint, and apply
    /// retention.
    fn rotate(&mut self) -> io::Result<()> {
        self.active.sync_data()?;
        let path = self.dir.join(segment_file_name(self.next_offset));
        let header = segment_header(self.next_offset);
        let mut file = fs::File::create(&path)?;
        file.write_all(&header)?;
        if self.options.fsync {
            file.sync_data()?;
            sync_dir(&self.dir)?;
        }
        write_checkpoint(&self.dir, self.next_offset)?;
        self.active = fs::OpenOptions::new().append(true).open(&path)?;
        self.active_len = header.len() as u64;
        self.segments.push(SegmentInfo {
            path,
            first_offset: self.next_offset,
            records: 0,
            len: self.active_len,
        });
        if let Some(metrics) = &self.shared.metrics {
            metrics.audit.increment("rotations");
        }
        while self.segments.len() > self.options.max_segments.max(1) {
            let oldest = self.segments.remove(0);
            fs::remove_file(&oldest.path)?;
        }
        // Age-based retention: drop sealed segments whose last write is
        // older than `max_age`. The just-created active segment is
        // `segments.last()` and is never considered.
        if let Some(max_age) = self.options.max_age {
            let mut expired = 0_u64;
            while self.segments.len() > 1 && segment_expired(&self.segments[0].path, max_age) {
                let oldest = self.segments.remove(0);
                fs::remove_file(&oldest.path)?;
                expired += 1;
            }
            if expired > 0 {
                if let Some(metrics) = &self.shared.metrics {
                    metrics
                        .audit
                        .counter("expired_segments")
                        .fetch_add(expired, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }
}

/// Whether the (sealed) segment at `path` is older than `max_age`,
/// judged by its file modification time — i.e. its final write before
/// sealing. Unreadable metadata reads as *not* expired: retention must
/// never delete what it cannot date.
fn segment_expired(path: &Path, max_age: Duration) -> bool {
    fs::metadata(path)
        .and_then(|meta| meta.modified())
        .ok()
        .and_then(|sealed| sealed.elapsed().ok())
        .is_some_and(|age| age > max_age)
}

impl TailStream for AuditLog {
    fn tail_from(&self, from: u64, max: usize, wait_ms: u64) -> StreamBatch {
        let deadline = Instant::now() + Duration::from_millis(wait_ms);
        let mut tail = plock(&self.shared.tail);
        loop {
            let end = self.shared.committed.load(Ordering::Acquire);
            if from < end || wait_ms == 0 {
                let tail_base = end - tail.len() as u64;
                let from = from.min(end);
                let start = from.max(tail_base);
                let lagged = start - from;
                let skip = usize::try_from(start - tail_base).unwrap_or(usize::MAX);
                let records: Vec<Json> = tail
                    .iter()
                    .skip(skip)
                    .take(max)
                    .map(|(_, summary)| summary.clone())
                    .collect();
                if lagged > 0 {
                    if let Some(metrics) = &self.shared.metrics {
                        metrics
                            .audit
                            .counter("stream_lagged")
                            .fetch_add(lagged, Ordering::Relaxed);
                    }
                }
                return StreamBatch {
                    start,
                    next: start + records.len() as u64,
                    lagged,
                    end,
                    records,
                };
            }
            let timeout = deadline.saturating_duration_since(Instant::now());
            if timeout.is_zero() {
                return StreamBatch {
                    start: from.min(end),
                    next: from.min(end),
                    lagged: 0,
                    end,
                    records: Vec::new(),
                };
            }
            let (guard, _) = self
                .shared
                .commit_signal
                .wait_timeout(tail, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            tail = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EnvProvenance, EnvSnapshot, MonitorMode, ReplayContext, VerdictCode};
    use crate::recover::{read_records, recover};

    fn record(i: u64) -> AuditRecord {
        AuditRecord {
            seq: i,
            ts_nanos: i,
            method: "PUT".into(),
            path: format!("/v3/1/volumes/{i}"),
            route: Some("/v3/{project_id}/volumes/{volume_id}".into()),
            trigger: Some(("PUT".into(), "volume".into())),
            mode: MonitorMode::Enforce,
            degraded_policy: "fail-closed".into(),
            verdict: VerdictCode::Pass,
            requirements: vec!["1.1".into()],
            status: 200,
            diagnostics: String::new(),
            context: ReplayContext::Checked {
                pre_env: EnvSnapshot::default(),
                post_env: None,
                post_partial: false,
                probe_denials: vec![],
                forwarded: true,
                cloud_status: Some(200),
                provenance: EnvProvenance::default(),
            },
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cm-audit-log-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_options() -> AuditLogOptions {
        AuditLogOptions {
            segment_max_bytes: 4096,
            max_segments: 3,
            channel_capacity: 64,
            group_max: 8,
            tail_capacity: 16,
            fsync: true,
            ..AuditLogOptions::default()
        }
    }

    #[test]
    fn append_flush_reopen_round_trips() {
        let dir = tmp("roundtrip");
        {
            let (log, report) = AuditLog::open(&dir, small_options(), None).unwrap();
            assert_eq!(report.next_offset, 0);
            for i in 0..20 {
                log.append(record(i));
            }
            log.flush().unwrap();
            assert_eq!(log.committed(), 20);
            assert_eq!(log.dropped(), 0);
        }
        // Reopen: recovery sees all 20, watermark continues.
        let (log, report) = AuditLog::open(&dir, small_options(), None).unwrap();
        assert_eq!(report.records, 20);
        assert_eq!(report.next_offset, 20);
        assert_eq!(report.lost_committed, 0);
        log.append(record(20));
        log.flush().unwrap();
        assert_eq!(log.committed(), 21);
        drop(log);
        let records = read_records(&dir).unwrap();
        assert_eq!(records.len(), 21);
        assert_eq!(records.last().unwrap().seq, 20);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_retention_bound_disk() {
        let dir = tmp("rotate");
        let options = AuditLogOptions {
            segment_max_bytes: 600,
            max_segments: 2,
            ..small_options()
        };
        let (log, _) = AuditLog::open(&dir, options, None).unwrap();
        for i in 0..60 {
            log.append(record(i));
            // Flush per record to force many small groups → rotations.
            log.flush().unwrap();
        }
        drop(log);
        let segment_count = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("segment-") && name.ends_with(".log")
            })
            .count();
        assert!(
            segment_count <= 3,
            "retention kept {segment_count} segments"
        );
        // The retained suffix recovers cleanly with the right offsets.
        let (records, recovered) = recover(&dir).unwrap();
        assert_eq!(recovered.report.next_offset, 60);
        let last = records.last().unwrap();
        assert_eq!(last.seq, 59);
        // Checkpoint may predate the final records (it advances on
        // rotation), so no loss is reported.
        assert_eq!(recovered.report.lost_committed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_channel_drops_instead_of_blocking() {
        let dir = tmp("drops");
        let options = AuditLogOptions {
            channel_capacity: 2,
            group_max: 2,
            ..small_options()
        };
        let (log, _) = AuditLog::open(&dir, options, None).unwrap();
        // Flood far beyond capacity without flushing; some must drop,
        // none may block (the test completing at all checks that).
        for i in 0..500 {
            log.append(record(i));
        }
        log.flush().unwrap();
        assert_eq!(log.appended() + log.dropped(), 500);
        assert_eq!(log.committed(), log.appended());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_stream_serves_and_reports_lag() {
        let dir = tmp("tail");
        let options = AuditLogOptions {
            tail_capacity: 4,
            ..small_options()
        };
        let (log, _) = AuditLog::open(&dir, options, None).unwrap();
        for i in 0..10 {
            log.append(record(i));
        }
        log.flush().unwrap();
        // From 0, but only the last 4 are in the ring: lag reported.
        let batch = log.tail_from(0, 100, 0);
        assert_eq!(batch.end, 10);
        assert_eq!(batch.start, 6);
        assert_eq!(batch.lagged, 6);
        assert_eq!(batch.records.len(), 4);
        assert_eq!(batch.next, 10);
        // Caught-up consumer with zero wait: empty batch, no lag.
        let batch = log.tail_from(10, 100, 0);
        assert!(batch.records.is_empty());
        assert_eq!(batch.lagged, 0);
        // A caught-up consumer with a wait budget times out cleanly
        // when nothing commits (wake-on-commit is covered by the
        // streaming integration test).
        let started = Instant::now();
        let batch = log.tail_from(10, 100, 50);
        assert!(batch.records.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(45));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn summaries_in_tail_match_offsets() {
        let dir = tmp("summaries");
        let (log, _) = AuditLog::open(&dir, small_options(), None).unwrap();
        for i in 0..5 {
            log.append(record(i));
        }
        log.flush().unwrap();
        let batch = log.tail_from(2, 2, 0);
        assert_eq!(batch.start, 2);
        assert_eq!(batch.records.len(), 2);
        assert_eq!(batch.records[0].get("offset").unwrap().as_int(), Some(2));
        assert_eq!(batch.records[1].get("seq").unwrap().as_int(), Some(3));
        assert_eq!(batch.next, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    fn segment_files(dir: &Path) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.starts_with("segment-") && name.ends_with(".log"))
            .collect();
        names.sort();
        names
    }

    #[test]
    fn max_age_retention_expires_old_segments_at_rotation() {
        let dir = tmp("max-age");
        let options = AuditLogOptions {
            segment_max_bytes: 600,
            max_segments: 64, // count-based retention out of the way
            max_age: Some(Duration::from_millis(80)),
            ..small_options()
        };
        let (log, _) = AuditLog::open(&dir, options, None).unwrap();
        // First burst seals a few segments…
        for i in 0..20 {
            log.append(record(i));
            log.flush().unwrap();
        }
        let before = segment_files(&dir).len();
        assert!(before >= 3, "need several sealed segments, got {before}");
        // …which age past max_age while the log idles…
        thread::sleep(Duration::from_millis(120));
        // …so the rotations driven by a second burst expire them.
        for i in 20..40 {
            log.append(record(i));
            log.flush().unwrap();
        }
        drop(log);
        let after = segment_files(&dir);
        // Everything left on disk is younger than the idle gap: the
        // aged first-burst segments are gone, and the survivors still
        // recover cleanly to the full offset.
        assert!(
            after.len() < before + 4,
            "expected first-burst segments expired, kept {after:?}"
        );
        assert!(
            !after.contains(&"segment-00000000000000000000.log".to_string()),
            "the oldest segment must have expired"
        );
        let (_, recovered) = recover(&dir).unwrap();
        assert_eq!(recovered.report.next_offset, 40);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn huge_max_age_keeps_every_segment() {
        let dir = tmp("max-age-keep");
        let options = AuditLogOptions {
            segment_max_bytes: 600,
            max_segments: 64,
            max_age: Some(Duration::from_secs(3600)),
            ..small_options()
        };
        let (log, _) = AuditLog::open(&dir, options, None).unwrap();
        for i in 0..40 {
            log.append(record(i));
            log.flush().unwrap();
        }
        drop(log);
        // Nothing is old enough: only count-based retention (idle here)
        // may delete, so the first segment is still present.
        assert!(segment_files(&dir).contains(&"segment-00000000000000000000.log".to_string()));
        let (records, _) = recover(&dir).unwrap();
        assert_eq!(records.len(), 40);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn brownout_signal_relaxes_group_fsync_but_commits_every_record() {
        let dir = tmp("relaxed");
        let signal = Arc::new(BrownoutSignal::new());
        let metrics = Arc::new(MetricsRegistry::new());
        let options = AuditLogOptions {
            durability_signal: Some(Arc::clone(&signal)),
            ..small_options()
        };
        let (log, _) = AuditLog::open(&dir, options, Some(Arc::clone(&metrics))).unwrap();
        for i in 0..5 {
            log.append(record(i));
        }
        log.flush().unwrap();
        assert_eq!(metrics.audit.get("relaxed_commits"), 0);
        // Step 3: commits keep flowing, fsync per group is skipped.
        signal.set_step(3);
        for i in 5..10 {
            log.append(record(i));
            log.flush().unwrap();
        }
        assert_eq!(log.committed(), 10);
        assert!(metrics.audit.get("relaxed_commits") >= 1);
        // Stepping back down restores the per-group sync.
        signal.set_step(0);
        let relaxed = metrics.audit.get("relaxed_commits");
        log.append(record(10));
        log.flush().unwrap();
        assert_eq!(metrics.audit.get("relaxed_commits"), relaxed);
        drop(log);
        // Every record — relaxed or not — is on disk after shutdown.
        let records = read_records(&dir).unwrap();
        assert_eq!(records.len(), 11);
        let _ = fs::remove_dir_all(&dir);
    }
}
