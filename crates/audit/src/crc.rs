//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over byte slices.
//!
//! The audit log frames every record with a CRC so that torn writes and
//! media corruption are *detected* rather than misparsed: a frame whose
//! checksum does not match terminates recovery at the last good byte.
//! The implementation is the standard reflected table-driven one; the
//! 256-entry table is computed at `const` time so the crate stays
//! dependency-free.

/// Reflected polynomial of CRC-32/ISO-HDLC (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, one step of the shift register per bit.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The catalogue check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"audit record payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&data), clean);
    }
}
