//! Offline, dependency-free subset of the `criterion` API.
//!
//! See `vendor/README.md`. Each benchmark runs a short warm-up, then a
//! timed measurement window, and prints mean ns/iter to stdout — enough
//! to compare the relative cost of code paths without any registry
//! dependency. Statistical machinery (outlier analysis, HTML reports)
//! is intentionally absent.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement entry point; handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirror of criterion's CLI bootstrap; accepts and ignores args.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", id, None, f);
        self
    }
}

/// A named benchmark group.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.throughput, f);
        self
    }

    /// Benchmark a closure with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter value alone.
    #[must_use]
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Identify a benchmark by function name and parameter.
    #[must_use]
    pub fn new(function: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{function}/{param}"))
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Runs the measured closure.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over a warm-up then a measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: up to 20 iterations or 20 ms, whichever first.
        let warm_start = Instant::now();
        for _ in 0..20 {
            std::hint::black_box(f());
            if warm_start.elapsed() > Duration::from_millis(20) {
                break;
            }
        }
        // Measurement: until 100 ms or 100k iterations.
        let start = Instant::now();
        let mut iters: u64 = 0;
        while iters < 100_000 {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed() > Duration::from_millis(100) {
                break;
            }
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.iters_done == 0 {
        println!("{label:<52} (no iterations)");
        return;
    }
    let ns_per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters_done);
    let mut line = format!(
        "{label:<52} {ns_per_iter:>10} ns/iter ({} iters)",
        bencher.iters_done
    );
    if let Some(tp) = throughput {
        let (units, what) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if units > 0 && ns_per_iter > 0 {
            let per_unit = ns_per_iter / u128::from(units);
            line.push_str(&format!(", {per_unit} ns/{what}"));
        }
    }
    println!("{line}");
}

/// Group benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_compiles_and_runs() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4));
        group.bench_function("add", |b| b.iter(|| std::hint::black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, n| {
            b.iter(|| std::hint::black_box(n * 2))
        });
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| ()));
    }

    criterion_group!(smoke_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn group_macro_works() {
        smoke_group();
    }
}
