//! Offline, dependency-free subset of the `proptest` API.
//!
//! See `vendor/README.md` for why this exists. The subset is exactly
//! what `tests/proptests.rs` uses: deterministic pseudo-random value
//! generation through a [`Strategy`] trait with `prop_map`,
//! `prop_filter` and `prop_recursive` combinators, `prop_oneof!`,
//! `any::<T>()`, `Just`, integer-range and regex-lite string
//! strategies, `prop::collection::{vec, hash_set}`, and the
//! [`proptest!`] macro. No shrinking: a failing case panics with the
//! generated inputs in the assertion message.

use std::rc::Rc;

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::{any, prop, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

// ---------- deterministic RNG ------------------------------------------

/// xorshift64* generator; deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary label (the test function name).
    #[must_use]
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a, never zero.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------- Strategy ----------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
    }

    /// Keep only values passing `pred` (rejection sampling).
    fn prop_filter<R, F>(self, _reason: R, pred: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| {
            for _ in 0..1000 {
                let v = inner.generate(rng);
                if pred(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        })
    }

    /// Build recursive values: `self` is the leaf strategy, `f` lifts a
    /// strategy for depth `d` into one for depth `d + 1`.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = f(strat.clone()).boxed();
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| inner.generate(rng))
    }
}

/// A type-erased strategy (`Rc`-shared, cheaply clonable).
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> BoxedStrategy<T> {
    fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always produce a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// `any::<T>()`.

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// Tuples of strategies.
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

// ---------- regex-lite string strategies --------------------------------

/// `&str` is a strategy: the string is a regex-lite pattern — a sequence
/// of char classes `[a-z0-9_]`, escapes (`\x41`, `\PC` for printable),
/// and literal chars, each optionally repeated `{m}` / `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min_rep
                + usize::try_from(
                    rng.below(u64::try_from(atom.max_rep - atom.min_rep + 1).unwrap()),
                )
                .unwrap();
            for _ in 0..n {
                out.push(atom.class.sample(rng));
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let leaked: &str = self.as_str();
        // Same generation as `&str`, without requiring 'static.
        let atoms = parse_pattern(leaked);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min_rep
                + usize::try_from(
                    rng.below(u64::try_from(atom.max_rep - atom.min_rep + 1).unwrap()),
                )
                .unwrap();
            for _ in 0..n {
                out.push(atom.class.sample(rng));
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
struct CharClass {
    /// Inclusive `(lo, hi)` char ranges.
    ranges: Vec<(char, char)>,
}

impl CharClass {
    fn single(c: char) -> Self {
        CharClass {
            ranges: vec![(c, c)],
        }
    }
    fn printable() -> Self {
        // `\PC` in proptest is "not a control character"; ASCII printable
        // is a safe deterministic subset.
        CharClass {
            ranges: vec![(' ', '~')],
        }
    }
    fn sample(&self, rng: &mut TestRng) -> char {
        let total: u64 = self
            .ranges
            .iter()
            .map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1)
            .sum();
        let mut pick = rng.below(total.max(1));
        for (lo, hi) in &self.ranges {
            let span = u64::from(*hi) - u64::from(*lo) + 1;
            if pick < span {
                return char::from_u32(*lo as u32 + u32::try_from(pick).unwrap()).unwrap();
            }
            pick -= span;
        }
        self.ranges[0].0
    }
}

#[derive(Debug, Clone)]
struct Atom {
    class: CharClass,
    min_rep: usize,
    max_rep: usize,
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = match chars[i] {
            '[' => {
                let end = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated class in `{pat}`"));
                let class = parse_class(&chars[i + 1..end], pat);
                i = end + 1;
                class
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in `{pat}`"));
                i += 2;
                match c {
                    'P' | 'p' => {
                        // Unicode category escape, e.g. `\PC`; one more char.
                        i += 1;
                        CharClass::printable()
                    }
                    'x' => {
                        let hex: String = chars[i..i + 2].iter().collect();
                        i += 2;
                        let v = u32::from_str_radix(&hex, 16).expect("hex escape");
                        CharClass::single(char::from_u32(v).expect("valid char"))
                    }
                    other => CharClass::single(other),
                }
            }
            '.' => {
                i += 1;
                CharClass::printable()
            }
            c => {
                i += 1;
                CharClass::single(c)
            }
        };
        // Optional `{m}` / `{m,n}` quantifier.
        let (min_rep, max_rep) = if chars.get(i) == Some(&'{') {
            let end = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in `{pat}`"));
            let body: String = chars[i + 1..end].iter().collect();
            i = end + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom {
            class,
            min_rep,
            max_rep,
        });
    }
    atoms
}

fn parse_class(body: &[char], pat: &str) -> CharClass {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let lo = if body[i] == '\\' {
            let c = *body
                .get(i + 1)
                .unwrap_or_else(|| panic!("dangling escape in `{pat}`"));
            if c == 'x' {
                let hex: String = body[i + 2..i + 4].iter().collect();
                i += 4;
                char::from_u32(u32::from_str_radix(&hex, 16).expect("hex escape")).expect("char")
            } else {
                i += 2;
                c
            }
        } else {
            let c = body[i];
            i += 1;
            c
        };
        if body.get(i) == Some(&'-') && i + 1 < body.len() {
            let hi = if body[i + 1] == '\\' && body.get(i + 2) == Some(&'x') {
                let hex: String = body[i + 3..i + 5].iter().collect();
                i += 5 + 1;
                char::from_u32(u32::from_str_radix(&hex, 16).expect("hex escape")).expect("char")
            } else {
                let c = body[i + 1];
                i += 2;
                c
            };
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(!ranges.is_empty(), "empty char class in `{pat}`");
    CharClass { ranges }
}

// ---------- collections -------------------------------------------------

pub mod prop {
    //! The `prop::` namespace (`prop::collection`, `prop::oneof` lives in
    //! the macro).
    pub mod collection {
        //! Collection strategies.
        use crate::{Strategy, TestRng};
        use std::collections::HashSet;
        use std::hash::Hash;
        use std::ops::Range;

        /// Accepted size specifications: a fixed `usize` or a `Range`.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }
        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }
        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        /// Vectors of `element`-generated values.
        pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy for `Vec<T>`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.max - self.size.min + 1;
                let n = self.size.min
                    + usize::try_from(rng.below(u64::try_from(span).unwrap())).unwrap();
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Hash sets of `element`-generated values (distinct).
        pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
            HashSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy for `HashSet<T>`.
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for HashSetStrategy<S>
        where
            S::Value: Hash + Eq,
        {
            type Value = HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let span = self.size.max - self.size.min + 1;
                let n = self.size.min
                    + usize::try_from(rng.below(u64::try_from(span).unwrap())).unwrap();
                let mut out = HashSet::new();
                let mut attempts = 0;
                while out.len() < n && attempts < 1000 {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                assert!(
                    out.len() >= self.size.min,
                    "hash_set strategy could not reach the minimum size"
                );
                out
            }
        }
    }
}

// ---------- config + macros ---------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Choose uniformly between the given strategies (all must generate the
/// same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms = vec![$($crate::Strategy::boxed($strat)),+];
        $crate::one_of(arms)
    }};
}

/// Runtime support for [`prop_oneof!`].
#[must_use]
pub fn one_of<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty());
    BoxedStrategy::from_fn(move |rng| {
        let idx = usize::try_from(rng.below(arms.len() as u64)).unwrap();
        arms[idx].generate(rng)
    })
}

/// Assert inside a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `config.cases` cases with a
/// deterministic per-test RNG. Attributes (including `#[test]`) are
/// passed through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (10i64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let u = (0usize..3).generate(&mut rng);
            assert!(u < 3);
            let n = (-5i64..50).generate(&mut rng);
            assert!((-5..50).contains(&n));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..500 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let p = "\\PC{0,6}".generate(&mut rng);
            assert!(p.len() <= 6);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)), "{p:?}");
            let hex = "[\\x20-\\x7e]{0,12}".generate(&mut rng);
            assert!(hex.chars().all(|c| (' '..='~').contains(&c)), "{hex:?}");
            let path = "/{0,1}[a-z]{1,3}".generate(&mut rng);
            assert!(path.len() <= 4, "{path:?}");
        }
    }

    #[test]
    fn oneof_filter_map_recursive_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = prop_oneof![Just(1i64), (5i64..10), Just(42i64)]
            .prop_filter("nonzero", |v| *v != 42)
            .prop_map(|v| v * 2);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 2 || (10..20).contains(&v), "{v}");
        }
        // Recursive nesting terminates.
        let nested = Just(0u32).prop_recursive(3, 8, 2, |inner| {
            (inner, Just(1u32)).prop_map(|(a, b)| a + b)
        });
        for _ in 0..50 {
            assert!(nested.generate(&mut rng) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(v in 0i64..100, flag in any::<bool>()) {
            prop_assert!(v >= 0);
            prop_assert_eq!(flag || !flag, true);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::deterministic("coll");
        for _ in 0..200 {
            let v = prop::collection::vec(any::<bool>(), 4).generate(&mut rng);
            assert_eq!(v.len(), 4);
            let r = prop::collection::vec(0i64..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&r.len()));
            let s = prop::collection::hash_set("[a-z]{1,8}", 1..6).generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 5);
        }
    }
}
