#!/usr/bin/env bash
# Hermetic CI for the cloud-monitor reproduction. Every step runs with
# --offline: the workspace must build from the checkout alone (vendored
# shims under vendor/, no registry access). Run locally before pushing.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --offline --release --workspace

step "cargo test"
cargo test --offline --workspace -q

step "cargo doc"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q

step "feature check: proptest suite compiles"
cargo test --offline --features proptest --test proptests --no-run -q

step "feature check: criterion benches compile"
cargo build --offline -p cm-bench --benches --features bench-criterion -q

printf '\nci: all checks passed\n'
