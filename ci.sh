#!/usr/bin/env bash
# Hermetic CI for the cloud-monitor reproduction. Every step runs with
# --offline: the workspace must build from the checkout alone (vendored
# shims under vendor/, no registry access). Run locally before pushing.
#
# `./ci.sh --stress` additionally runs the concurrency soak battery in
# both profiles: debug (shard invariants live via debug_assert!) and
# release (the timing-sensitive profile the servers actually run in).
#
# `./ci.sh --chaos` runs the transport-chaos battery: the seeded
# fault-injection soak (no injected wire fault may surface as a contract
# verdict, no semantic mutant may hide as Degraded) plus the
# chaos-recovery bench smoke (breaker flap: shed, then recover through
# one half-open probe).
set -euo pipefail
cd "$(dirname "$0")"

STRESS=0
CHAOS=0
for arg in "$@"; do
  case "$arg" in
    --stress) STRESS=1 ;;
    --chaos) CHAOS=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --offline --release --workspace

step "cargo test"
cargo test --offline --workspace -q

step "cargo doc"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q

step "feature check: proptest suite compiles"
cargo test --offline --features proptest --test proptests --no-run -q

step "feature check: criterion benches compile"
cargo build --offline -p cm-bench --benches --features bench-criterion -q

step "bench smoke: contract_eval (parity assertions, no artifact)"
cargo run --offline --release -p cm-bench --bin contract_eval -q -- --smoke

step "bench smoke: proxy_throughput (response parity over live TCP, no artifact)"
cargo run --offline --release -p cm-bench --bin proxy_throughput -q -- --smoke

if [ "$STRESS" = 1 ]; then
  step "stress: concurrency soak (debug, shard debug_asserts active)"
  cargo test --offline --test concurrent_monitor -q

  step "stress: concurrency soak (release)"
  cargo test --offline --release --test concurrent_monitor -q

  step "stress: determinism property (disjoint projects)"
  cargo test --offline --features proptest --test proptests -q \
    concurrent_disjoint_projects_match_serial
fi

if [ "$CHAOS" = 1 ]; then
  step "chaos: seeded transport fault-injection soak (release)"
  cargo test --offline --release --test chaos_transport -q

  step "chaos: backend-flap ledger (release)"
  cargo test --offline --release --test concurrent_monitor -q \
    backend_flap_yields_exact_degraded_and_pass_counts

  step "bench smoke: chaos_recovery (breaker flap, no artifact)"
  cargo run --offline --release -p cm-bench --bin chaos_recovery -q -- --smoke
fi

printf '\nci: all checks passed\n'
