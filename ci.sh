#!/usr/bin/env bash
# Hermetic CI for the cloud-monitor reproduction. Every step runs with
# --offline: the workspace must build from the checkout alone (vendored
# shims under vendor/, no registry access). Run locally before pushing.
#
# Stages are individually addressable: `./ci.sh test`, `./ci.sh chaos`,
# `./ci.sh campaign` run exactly that stage. With no arguments the core
# battery runs (fmt clippy build test docs features smoke). The legacy
# flag spellings remain as aliases for core-plus-stage:
#
#   ./ci.sh --stress     core + concurrency soak battery (debug: shard
#                        invariants live via debug_assert!; release: the
#                        timing-sensitive profile the servers run in)
#   ./ci.sh --chaos      core + transport-chaos battery (seeded fault
#                        injection, breaker-flap ledger, recovery smoke)
#   ./ci.sh --campaign   core + the kill-matrix campaign: full mutant
#                        catalog vs the committed KILL_MATRIX_BASELINE.json
#                        (any baseline-detected mutant now missed fails
#                        the build) plus the static RBAC policy lint
set -euo pipefail
cd "$(dirname "$0")"

CORE_STAGES="fmt clippy build test docs features smoke"

usage() {
  cat <<EOF
usage: ./ci.sh [STAGE ...] [--stress] [--chaos] [--campaign] [--help]

stages (run exactly what is named, in the order given, deduplicated):
  core       all of: $CORE_STAGES
  fmt        cargo fmt --check
  clippy     cargo clippy, warnings denied
  build      cargo build --release, whole workspace
  test       cargo test, whole workspace
  docs       cargo doc, warnings denied
  features   feature-gated targets compile (proptest suite, criterion benches)
  smoke      bench binaries in --smoke mode (writes BENCH_*.smoke.json)
  stress     concurrency soak battery (debug + release + determinism property)
  transport  reactor lifecycle/pipelining battery, speculative-read parity,
             proxy smoke with response parity across both engines
  chaos      transport-chaos battery (fault soak, flap ledger, recovery smoke)
  campaign   kill-matrix campaign vs committed baseline + static RBAC lint
  audit      durable-log battery (SIGKILL crash recovery, proptest framing
             corruption, differential replay, streaming tail)
  replica    shadow-replica battery (drift detection, anti-entropy chaos,
             replica/scoped differential property, bench smoke)
  overload   overload-control battery (shed storm, admin-lane immunity,
             brownout ladder, overload x chaos interleaving, bench smoke)

flags (aliases kept for compatibility; each means core + that stage):
  --stress --chaos --campaign

With no arguments, core runs. Repeated stages and flags are deduplicated.
EOF
}

WANT=""

add_stage() {
  local s
  for s in $WANT; do
    [ "$s" = "$1" ] && return 0
  done
  WANT="$WANT $1"
}

add_core() {
  local s
  for s in $CORE_STAGES; do add_stage "$s"; done
}

for arg in "$@"; do
  case "$arg" in
    --help|-h|help) usage; exit 0 ;;
    --stress) add_core; add_stage stress ;;
    --chaos) add_core; add_stage chaos ;;
    --campaign) add_core; add_stage campaign ;;
    core) add_core ;;
    fmt|clippy|build|test|docs|features|smoke|stress|transport|chaos|campaign|audit|replica|overload)
      add_stage "$arg" ;;
    *) echo "unknown option: $arg" >&2; echo >&2; usage >&2; exit 2 ;;
  esac
done
[ -n "$WANT" ] || add_core

step() { printf '\n==> %s\n' "$*"; }

stage_fmt() {
  step "cargo fmt --check"
  cargo fmt --all -- --check
}

stage_clippy() {
  step "cargo clippy (deny warnings)"
  cargo clippy --offline --workspace --all-targets -- -D warnings
}

stage_build() {
  step "cargo build --release"
  cargo build --offline --release --workspace
}

stage_test() {
  step "cargo test"
  cargo test --offline --workspace -q
}

stage_docs() {
  step "cargo doc"
  RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q
}

stage_features() {
  step "feature check: proptest suite compiles"
  cargo test --offline --features proptest --test proptests --no-run -q

  step "feature check: criterion benches compile"
  cargo build --offline -p cm-bench --benches --features bench-criterion -q
}

stage_smoke() {
  step "bench smoke: contract_eval (parity assertions, smoke artifact)"
  cargo run --offline --release -p cm-bench --bin contract_eval -q -- --smoke

  step "bench smoke: proxy_throughput (response parity over live TCP, smoke artifact)"
  cargo run --offline --release -p cm-bench --bin proxy_throughput -q -- --smoke
}

stage_stress() {
  step "stress: concurrency soak (debug, shard debug_asserts active)"
  cargo test --offline --test concurrent_monitor -q

  step "stress: concurrency soak (release)"
  cargo test --offline --release --test concurrent_monitor -q

  step "stress: determinism property (disjoint projects)"
  cargo test --offline --features proptest --test proptests -q \
    concurrent_disjoint_projects_match_serial
}

stage_transport() {
  step "transport: reactor lifecycle + pipelining battery (release)"
  cargo test --offline --release -p cm-httpkit --test reactor -q

  step "transport: engine-agnostic transport battery + unit suite"
  cargo test --offline -p cm-httpkit -q

  step "transport: speculative-read parity (cm-core)"
  cargo test --offline --release -p cm-core -q speculative

  step "bench smoke: proxy_throughput (parity across worker pool and reactor)"
  cargo run --offline --release -p cm-bench --bin proxy_throughput -q -- --smoke
}

stage_chaos() {
  step "chaos: seeded transport fault-injection soak (release)"
  cargo test --offline --release --test chaos_transport -q

  step "chaos: backend-flap ledger (release)"
  cargo test --offline --release --test concurrent_monitor -q \
    backend_flap_yields_exact_degraded_and_pass_counts

  step "bench smoke: chaos_recovery (breaker flap, smoke artifact)"
  cargo run --offline --release -p cm-bench --bin chaos_recovery -q -- --smoke
}

stage_campaign() {
  step "campaign: kill matrix vs committed baseline"
  cargo run --offline --release -p cm-cli --bin cmcli -q -- \
    mutate campaign --out KILL_MATRIX.json --baseline KILL_MATRIX_BASELINE.json

  step "campaign: static RBAC policy lint (built-in Table I policy)"
  cargo run --offline --release -p cm-cli --bin cmcli -q -- rbac lint

  step "campaign: mutation + rbac suites (release)"
  cargo test --offline --release -q -p cm-mutation -p cm-rbac

  step "campaign: static-analysis/runtime agreement property"
  cargo test --offline --features proptest --test proptests -q rbac_
}

stage_audit() {
  step "audit: SIGKILL crash-injection recovery battery (release)"
  cargo test --offline --release --test audit_recovery -q

  step "audit: framing corruption battery (proptest)"
  cargo test --offline --features proptest --test audit_corruption -q

  step "audit: differential replay against current and mutated contracts"
  cargo test --offline --test audit_replay -q

  step "audit: streaming tail (bounded lag, resume cursor)"
  cargo test --offline --test audit_stream -q

  step "audit: cm-audit unit suite"
  cargo test --offline -p cm-audit -q
}

stage_replica() {
  step "replica: drift detection + anti-entropy chaos battery (release)"
  cargo test --offline --release --test replica -q

  step "replica: cm-core replica state-machine unit suite"
  cargo test --offline -p cm-core -q replica

  step "replica: replica/scoped differential property"
  cargo test --offline --features proptest --test proptests -q \
    replica_matches_scoped_snapshots

  step "bench smoke: contract_eval (replica parity + zero-probe assertions)"
  cargo run --offline --release -p cm-bench --bin contract_eval -q -- --smoke
}

stage_overload() {
  step "overload: shed storm, admin immunity, differential safety, slow-loris (release)"
  cargo test --offline --release --test overload -q

  step "overload: overload x chaos interleaving (release)"
  cargo test --offline --release --test chaos_transport -q \
    overload_sheds_interleaved_with_chaos_never_become_violations

  step "overload: brownout ladder + shed provenance unit suites"
  cargo test --offline -p cm-core -q brownout
  cargo test --offline -p cm-obs -q
  cargo test --offline -p cm-audit -q brownout_signal_relaxes_group_fsync

  step "bench smoke: proxy_throughput (overload sweep rides along)"
  cargo run --offline --release -p cm-bench --bin proxy_throughput -q -- --smoke
}

SUMMARY=""
for stage in $WANT; do
  stage_start=$SECONDS
  "stage_$stage"
  SUMMARY="$SUMMARY$(printf '  %-10s %4ds' "$stage" $((SECONDS - stage_start)))
"
done

printf '\nci: all requested stages passed\n'
printf 'stage wall-clock:\n%s' "$SUMMARY"
